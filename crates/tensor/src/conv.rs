//! 2-D convolution: forward, input-gradient and weight-gradient passes.
//!
//! These are exactly the three dataflows the unified eNODE NN core executes
//! (§VI): the forward conv broadcasts input-channel packets to the PE array;
//! the backward (adjoint) conv reuses the same PEs with flipped kernels and
//! the channel roles swapped; the weight-gradient pass reuses the same PEs
//! once more.
//!
//! Neural-ODE embedded networks must preserve the state shape, so the
//! convolutions here use stride 1 and "same" zero padding.
//!
//! # Execution
//!
//! All three passes run on the workspace pool ([`crate::parallel`]),
//! splitting across the batch dimension when it is wide enough and across
//! output (forward, weight-grad) or input (input-grad) channels otherwise —
//! the same two axes the eNODE PE array unrolls. The forward pass is a
//! direct register-blocked convolution over a zero-padded arena copy of
//! each sample (`pad_sample` / `conv_direct_rows`, with an AVX body
//! behind `crate::simd`); the weight-gradient pass keeps the im2col
//! lowering. All kernel scratch comes from the per-thread arena
//! ([`crate::parallel::with_scratch_f32`]), so repeated solver
//! evaluations do not touch the allocator. Every decomposition performs
//! the serial arithmetic in the serial order (reductions combine
//! per-sample partials in sample order), so outputs are bit-identical
//! for any thread count (up to the sign of zero; see DESIGN.md §8).

use crate::activation::Activation;
use crate::init;
use crate::norm::GroupNorm;
use crate::parallel;
use crate::sanitize;
use crate::tensor::Tensor;

/// A 2-D convolution layer with "same" zero padding and stride 1.
///
/// Weights are stored `[M, C, K, K]` (output channels, input channels,
/// kernel height, kernel width); bias is `[M]`.
///
/// # Example
///
/// ```
/// use enode_tensor::{Tensor, conv::Conv2d};
/// let conv = Conv2d::new_seeded(3, 8, 3, 42);
/// let x = Tensor::ones(&[2, 3, 6, 6]);
/// let y = conv.forward(&x);
/// assert_eq!(y.shape(), &[2, 8, 6, 6]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Conv2d {
    weight: Tensor,
    bias: Tensor,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
}

impl Conv2d {
    /// Creates a convolution from explicit weights `[M, C, K, K]` and bias
    /// `[M]`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are inconsistent or the kernel size is even
    /// ("same" padding requires an odd kernel).
    pub fn from_parts(weight: Tensor, bias: Tensor) -> Self {
        assert_eq!(weight.shape().len(), 4, "weight must be [M, C, K, K]");
        let (m, c, kh, kw) = weight.shape_obj().nchw();
        assert_eq!(kh, kw, "only square kernels are supported");
        assert_eq!(kh % 2, 1, "\"same\" padding requires an odd kernel size");
        assert_eq!(bias.shape(), &[m], "bias must be [M]");
        Conv2d {
            weight,
            bias,
            in_channels: c,
            out_channels: m,
            kernel: kh,
        }
    }

    /// Creates a convolution with Kaiming-uniform weights from a seed.
    pub fn new_seeded(in_channels: usize, out_channels: usize, kernel: usize, seed: u64) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let weight =
            init::kaiming_uniform(&[out_channels, in_channels, kernel, kernel], fan_in, seed);
        let bias = Tensor::zeros(&[out_channels]);
        Conv2d::from_parts(weight, bias)
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Kernel size (K for a K×K kernel).
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// The weight tensor `[M, C, K, K]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The bias tensor `[M]`.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Mutable access to the weights (for optimizer updates).
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.weight
    }

    /// Mutable access to the bias.
    pub fn bias_mut(&mut self) -> &mut Tensor {
        &mut self.bias
    }

    /// Simultaneous mutable access to weight and bias (split borrow).
    pub fn params_mut(&mut self) -> (&mut Tensor, &mut Tensor) {
        (&mut self.weight, &mut self.bias)
    }

    /// Number of multiply-accumulate operations in one forward pass over
    /// `[n, C, H, W]` input (used by the hardware cost models).
    pub fn macs(&self, n: usize, h: usize, w: usize) -> u64 {
        n as u64
            * self.out_channels as u64
            * self.in_channels as u64
            * h as u64
            * w as u64
            * (self.kernel * self.kernel) as u64
    }

    /// Forward convolution `y = W * x + b`.
    ///
    /// Uses a direct register-blocked convolution over a zero-padded copy
    /// of each sample (`conv_direct_rows`): the padded plane lives in
    /// per-thread arena scratch and stays L1-resident, so no im2col matrix
    /// is ever materialized. Parallel across the batch — or across output
    /// channels when the batch underfills the pool. Per output element the
    /// accumulation is `bias` then `+= w·x` over taps in `(c, kh, kw)`
    /// order — the exact chain of the im2col + gemm lowering (padding taps
    /// contribute the identical `+ w·0.0` adds), so the result is bitwise
    /// equal to [`crate::matmul::gemm_bias`] over im2col columns and independent
    /// of the split.
    ///
    /// # Panics
    ///
    /// Panics if the input is not `[N, C, H, W]` with `C` matching
    /// [`Conv2d::in_channels`].
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let _kernel = sanitize::kernel_scope("conv2d.forward");
        let (n, c, h, w) = x.shape_obj().nchw();
        assert_eq!(c, self.in_channels, "input channel mismatch");
        let k = self.kernel;
        let m = self.out_channels;
        let ckk = c * k * k;
        let hw = h * w;
        let pad = k / 2;
        let xpad_len = c * (h + 2 * pad) * (w + 2 * pad);
        let wmat = self.weight.data();
        let bias = self.bias.data();
        let mut y = Tensor::zeros(&[n, m, h, w]);
        let ydata = y.data_mut();
        if n >= parallel::current_threads() || m == 1 {
            // Batch split: each lane pads its own samples into per-thread
            // arena scratch and runs the direct kernel over all output
            // channels.
            parallel::parallel_for_disjoint(ydata, n, 1, |range, slab| {
                parallel::with_scratch_f32(xpad_len, |xpad| {
                    for (local, ni) in range.enumerate() {
                        pad_sample(x, ni, pad, xpad);
                        let ys = &mut slab[local * m * hw..(local + 1) * m * hw];
                        conv_direct_rows(xpad, wmat, bias, 0..m, ys, h, w, c, k);
                    }
                });
            });
        } else {
            // Few samples: pad once per sample, split output channels; the
            // padded plane is a shared read. The split is bit-identical by
            // the kernel's per-element reduction-order contract.
            parallel::with_scratch_f32(xpad_len, |xpad| {
                for ni in 0..n {
                    pad_sample(x, ni, pad, xpad);
                    let xpad_ref: &[f32] = xpad;
                    let ys = &mut ydata[ni * m * hw..(ni + 1) * m * hw];
                    let grain = parallel::grain_for(ckk * hw);
                    parallel::parallel_for_disjoint(ys, m, grain, |rows, yrows| {
                        conv_direct_rows(xpad_ref, wmat, bias, rows, yrows, h, w, c, k);
                    });
                }
            });
        }
        y
    }

    /// Fused conv→GroupNorm→activation forward: one batch-split kernel
    /// whose per-sample pipeline is zero-pad → direct register-blocked
    /// conv into arena scratch → normalize+scale+activate streamed into
    /// the output. The intermediate conv map never round-trips an NCHW
    /// tensor — it lives only in the per-thread arena — which is the
    /// eNODE-style producer/consumer fusion of the NN core's
    /// conv → norm → activation dataflow.
    ///
    /// Bit-compatibility: the result equals the unfused
    /// `act(gn.forward(conv.forward(x)))` composition bit-for-bit, because
    /// each stage runs the identical kernel arithmetic on identical
    /// per-sample inputs (the conv is the same `conv_direct_rows`
    /// kernel, and the normalize epilogue shares `GroupNorm`'s statistics
    /// helper). The batch split is bit-identical across thread counts like
    /// every other kernel here (each sample's chain is serial).
    ///
    /// Tiny batches run serial automatically: the grain comes from
    /// [`parallel::grain_for_sized`], so below the work floor the split
    /// planner collapses to one chunk.
    ///
    /// # Panics
    ///
    /// Panics if the input is not `[N, C, H, W]` with `C` matching
    /// [`Conv2d::in_channels`], or if `gn`'s channel count differs from
    /// [`Conv2d::out_channels`].
    pub fn forward_fused(
        &self,
        x: &Tensor,
        gn: Option<&GroupNorm>,
        act: Option<Activation>,
    ) -> Tensor {
        let _kernel = sanitize::kernel_scope("conv2d.fused_forward");
        let (n, c, h, w) = x.shape_obj().nchw();
        assert_eq!(c, self.in_channels, "input channel mismatch");
        let k = self.kernel;
        let m = self.out_channels;
        if let Some(g) = gn {
            assert_eq!(
                g.channels(),
                m,
                "GroupNorm channels must match conv output channels"
            );
        }
        let hw = h * w;
        let pad = k / 2;
        let xpad_len = c * (h + 2 * pad) * (w + 2 * pad);
        let wmat = self.weight.data();
        let bias = self.bias.data();
        let mut y = Tensor::zeros(&[n, m, h, w]);
        let ydata = y.data_mut();
        let flops = fused_flops_per_item(c, m, k, hw, gn.is_some(), act.is_some());
        let grain = parallel::grain_for_sized(n, flops);
        parallel::parallel_for_disjoint(ydata, n, grain, |range, slab| {
            parallel::with_scratch_f32(xpad_len, |xpad| {
                for (local, ni) in range.enumerate() {
                    pad_sample(x, ni, pad, xpad);
                    let ys = &mut slab[local * m * hw..(local + 1) * m * hw];
                    match gn {
                        Some(g) => {
                            // The conv output exists only in arena
                            // scratch; the epilogue streams it into `y`.
                            parallel::with_scratch_f32(m * hw, |tmp| {
                                conv_direct_rows(xpad, wmat, bias, 0..m, tmp, h, w, c, k);
                                g.normalize_into(tmp, ys, hw, act);
                            });
                        }
                        None => {
                            conv_direct_rows(xpad, wmat, bias, 0..m, ys, h, w, c, k);
                            if let Some(a) = act {
                                a.apply_slice(ys);
                            }
                        }
                    }
                }
            });
        });
        y
    }

    /// Direct (loop-nest) forward convolution — the verification oracle
    /// for the im2col fast path.
    pub fn forward_reference(&self, x: &Tensor) -> Tensor {
        let (n, c, h, w) = x.shape_obj().nchw();
        assert_eq!(c, self.in_channels, "input channel mismatch");
        let k = self.kernel;
        let pad = (k / 2) as isize;
        let m = self.out_channels;
        let mut y = Tensor::zeros(&[n, m, h, w]);
        for ni in 0..n {
            for mi in 0..m {
                let b = self.bias.data()[mi];
                for ci in 0..c {
                    for oh in 0..h {
                        for ow in 0..w {
                            let mut acc = 0.0f32;
                            for kh in 0..k {
                                for kw in 0..k {
                                    let ih = oh as isize + kh as isize - pad;
                                    let iw = ow as isize + kw as isize - pad;
                                    if ih >= 0 && iw >= 0 && (ih as usize) < h && (iw as usize) < w
                                    {
                                        acc += x.at4(ni, ci, ih as usize, iw as usize)
                                            * self.weight.at4(mi, ci, kh, kw);
                                    }
                                }
                            }
                            *y.at4_mut(ni, mi, oh, ow) += acc;
                        }
                    }
                }
                if b != 0.0 {
                    for oh in 0..h {
                        for ow in 0..w {
                            *y.at4_mut(ni, mi, oh, ow) += b;
                        }
                    }
                }
            }
        }
        y
    }

    /// Input gradient: given `dy = ∂L/∂y`, returns `dx = ∂L/∂x`.
    ///
    /// This is convolution in the backward direction — the same pipeline as
    /// [`Conv2d::forward`] with the kernel flipped and input/output channel
    /// roles swapped, matching the eNODE unified core (§VI, Fig 9c).
    /// Parallel across the batch, or across input channels when the batch
    /// underfills the pool.
    pub fn backward_input(&self, dy: &Tensor) -> Tensor {
        let _kernel = sanitize::kernel_scope("conv2d.backward_input");
        let (n, m, h, w) = dy.shape_obj().nchw();
        assert_eq!(m, self.out_channels, "grad channel mismatch");
        let c = self.in_channels;
        let hw = h * w;
        let mut dx = Tensor::zeros(&[n, c, h, w]);
        let dxdata = dx.data_mut();
        if n >= parallel::current_threads() || c == 1 {
            parallel::parallel_for_disjoint(dxdata, n, 1, |range, slab| {
                for (local, ni) in range.enumerate() {
                    let s = &mut slab[local * c * hw..(local + 1) * c * hw];
                    self.backward_input_channels(dy, ni, 0..c, s);
                }
            });
        } else {
            let grain = parallel::grain_for(m * hw * self.kernel * self.kernel);
            for ni in 0..n {
                let slab = &mut dxdata[ni * c * hw..(ni + 1) * c * hw];
                parallel::parallel_for_disjoint(slab, c, grain, |crange, cslab| {
                    self.backward_input_channels(dy, ni, crange, cslab);
                });
            }
        }
        dx
    }

    /// The input-gradient loop nest for one sample's channel range,
    /// writing into `out = dx[ni, crange, :, :]`. Shared by both parallel
    /// decompositions so the arithmetic (and its order) is identical.
    fn backward_input_channels(
        &self,
        dy: &Tensor,
        ni: usize,
        crange: std::ops::Range<usize>,
        out: &mut [f32],
    ) {
        let (_, m, h, w) = dy.shape_obj().nchw();
        let k = self.kernel;
        let pad = (k / 2) as isize;
        for ci in crange.clone() {
            let base = (ci - crange.start) * h * w;
            for mi in 0..m {
                for ih in 0..h {
                    for iw in 0..w {
                        let mut acc = 0.0f32;
                        for kh in 0..k {
                            for kw in 0..k {
                                // dx[ih,iw] accumulates dy[oh,ow]*wflip;
                                // oh = ih - (kh - pad) inverted:
                                let oh = ih as isize - (kh as isize - pad);
                                let ow = iw as isize - (kw as isize - pad);
                                if oh >= 0 && ow >= 0 && (oh as usize) < h && (ow as usize) < w {
                                    acc += dy.at4(ni, mi, oh as usize, ow as usize)
                                        * self.weight.at4(mi, ci, kh, kw);
                                }
                            }
                        }
                        out[base + ih * w + iw] += acc;
                    }
                }
            }
        }
    }

    /// Weight and bias gradients: given the cached forward input `x` and
    /// `dy = ∂L/∂y`, returns `(dW, db)`.
    ///
    /// Uses the im2col lowering: `dW[m, q] = Σ_p dy[m, p] · cols[q, p]`.
    /// The batch reduction combines per-sample partials in sample order (a
    /// fixed tree), so the result does not depend on the thread count.
    pub fn backward_params(&self, x: &Tensor, dy: &Tensor) -> (Tensor, Tensor) {
        let _kernel = sanitize::kernel_scope("conv2d.backward_params");
        let (n, c, h, w) = x.shape_obj().nchw();
        let (n2, m, h2, w2) = dy.shape_obj().nchw();
        assert_eq!((n, h, w), (n2, h2, w2), "x/dy spatial mismatch");
        assert_eq!(c, self.in_channels);
        assert_eq!(m, self.out_channels);
        let k = self.kernel;
        let ckk = c * k * k;
        let hw = h * w;
        let mut dw = Tensor::zeros(&[m, c, k, k]);
        let mut db = Tensor::zeros(&[m]);
        if n >= parallel::current_threads() || m == 1 {
            // Batch split: per-sample partial (dW, db) buffers, combined
            // serially in sample order below.
            let psize = m * ckk + m;
            parallel::with_scratch_f32(n * psize, |partials| {
                parallel::parallel_for_disjoint(partials, n, 1, |range, slab| {
                    parallel::with_scratch_f32(ckk * hw, |cols| {
                        for (local, ni) in range.enumerate() {
                            im2col(x, ni, k, cols);
                            let part = &mut slab[local * psize..(local + 1) * psize];
                            part.fill(0.0);
                            let (dwp, dbp) = part.split_at_mut(m * ckk);
                            accumulate_param_rows(dy, ni, cols, 0..m, dwp, dbp);
                        }
                    });
                });
                let dwd = dw.data_mut();
                for ni in 0..n {
                    let part = &partials[ni * psize..(ni + 1) * psize];
                    for (v, &p) in dwd.iter_mut().zip(&part[..m * ckk]) {
                        *v += p;
                    }
                    for (v, &p) in db.data_mut().iter_mut().zip(&part[m * ckk..]) {
                        *v += p;
                    }
                }
            });
        } else {
            // Few samples: lower once per sample, split output rows (dW
            // rows and db entries are disjoint per output channel).
            parallel::with_scratch_f32(ckk * hw, |cols| {
                for ni in 0..n {
                    im2col(x, ni, k, cols);
                    let cols_ref: &[f32] = cols;
                    let grain = parallel::grain_for(ckk * hw);
                    parallel::parallel_for_disjoint2(
                        dw.data_mut(),
                        db.data_mut(),
                        m,
                        grain,
                        |mrange, dwrows, dbrows| {
                            accumulate_param_rows(dy, ni, cols_ref, mrange, dwrows, dbrows);
                        },
                    );
                }
            });
        }
        (dw, db)
    }
}

/// Accumulates `dW[mrange, :] += dy[ni, mrange, :] · colsᵀ` and
/// `db[mrange] += Σ dy[ni, mrange, :]` into row slices local to `mrange`.
/// Shared by both weight-gradient decompositions so the arithmetic (and
/// its order) is identical.
fn accumulate_param_rows(
    dy: &Tensor,
    ni: usize,
    cols: &[f32],
    mrange: std::ops::Range<usize>,
    dwrows: &mut [f32],
    dbrows: &mut [f32],
) {
    let (_, m, h, w) = dy.shape_obj().nchw();
    let hw = h * w;
    let ckk = dwrows.len() / mrange.len().max(1);
    let dydata = dy.data();
    let dybase = ni * m * hw;
    for mi in mrange.clone() {
        let local = mi - mrange.start;
        let dyrow = &dydata[dybase + mi * hw..dybase + (mi + 1) * hw];
        dbrows[local] += dyrow.iter().sum::<f32>();
        let dwrow = &mut dwrows[local * ckk..(local + 1) * ckk];
        for (q, dwv) in dwrow.iter_mut().enumerate() {
            let crow = &cols[q * hw..(q + 1) * hw];
            let mut acc = 0.0f32;
            for (&g, &cv) in dyrow.iter().zip(crow) {
                acc += g * cv;
            }
            *dwv += acc;
        }
    }
}

/// Unfolds sample `ni` of `x` into the `[C·K·K, H·W]` column matrix with
/// "same" zero padding (row `q = (c·K + kh)·K + kw`).
fn im2col(x: &Tensor, ni: usize, k: usize, cols: &mut [f32]) {
    let (_, c, h, w) = x.shape_obj().nchw();
    let pad = (k / 2) as isize;
    let hw = h * w;
    debug_assert_eq!(cols.len(), c * k * k * hw);
    let xdata = x.data();
    for ci in 0..c {
        let xbase = (ni * c + ci) * hw;
        for kh in 0..k {
            let dh = kh as isize - pad;
            for kw in 0..k {
                let dw_ = kw as isize - pad;
                let q = (ci * k + kh) * k + kw;
                let out = &mut cols[q * hw..(q + 1) * hw];
                for oh in 0..h {
                    let ih = oh as isize + dh;
                    let orow = &mut out[oh * w..(oh + 1) * w];
                    if ih < 0 || ih >= h as isize {
                        orow.fill(0.0);
                        continue;
                    }
                    let xrow = &xdata[xbase + ih as usize * w..xbase + (ih as usize + 1) * w];
                    for (ow, ov) in orow.iter_mut().enumerate() {
                        let iw = ow as isize + dw_;
                        *ov = if iw >= 0 && (iw as usize) < w {
                            xrow[iw as usize]
                        } else {
                            0.0
                        };
                    }
                }
            }
        }
    }
}

/// Zero-pads sample `ni` of `x` into `dst = [C][H+2·pad][W+2·pad]`.
/// The whole plane is cleared first (arena scratch is reused dirty), then
/// each input row is one contiguous copy into the interior.
fn pad_sample(x: &Tensor, ni: usize, pad: usize, dst: &mut [f32]) {
    let (_, c, h, w) = x.shape_obj().nchw();
    let ph = h + 2 * pad;
    let pw = w + 2 * pad;
    debug_assert_eq!(dst.len(), c * ph * pw);
    dst.fill(0.0);
    let xdata = x.data();
    for ci in 0..c {
        let xch = &xdata[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w];
        let dch = &mut dst[ci * ph * pw..(ci + 1) * ph * pw];
        for ih in 0..h {
            let base = (ih + pad) * pw + pad;
            dch[base..base + w].copy_from_slice(&xch[ih * w..(ih + 1) * w]);
        }
    }
}

/// Direct "same"-padding convolution of one zero-padded sample
/// (`xpad = [C][H+2·pad][W+2·pad]`, see [`pad_sample`]) over the output-
/// channel range `mrange`, writing `out = y[ni, mrange, :, :]`.
///
/// Per output element the chain is `bias` then `+= w·x` over taps in
/// ascending `(c, kh, kw)` order. That is exactly the im2col + gemm
/// lowering's per-element chain — a padding tap here multiplies an
/// explicit zero from the padded border, where im2col would have stored
/// the same zero in the column matrix — so the result is bitwise equal
/// to [`crate::matmul::gemm_bias`] over im2col columns, independent of
/// both the split and the SIMD dispatch below.
#[allow(clippy::too_many_arguments)] // geometry of one padded sample, passed flat
fn conv_direct_rows(
    xpad: &[f32],
    wmat: &[f32],
    bias: &[f32],
    mrange: std::ops::Range<usize>,
    out: &mut [f32],
    h: usize,
    w: usize,
    c: usize,
    k: usize,
) {
    let pad = k / 2;
    let ph = h + 2 * pad;
    let pw = w + 2 * pad;
    debug_assert_eq!(xpad.len(), c * ph * pw);
    debug_assert_eq!(out.len(), mrange.len() * h * w);
    #[cfg(target_arch = "x86_64")]
    if w.is_multiple_of(8) && crate::simd::avx() {
        // SAFETY: AVX is present (runtime check); the slice bounds are
        // asserted above and the kernel stays inside them.
        unsafe { conv_direct_rows_avx(xpad, wmat, bias, mrange, out, h, w, c, k) };
        return;
    }
    conv_direct_rows_portable(xpad, wmat, bias, mrange, out, h, w, c, k);
}

/// Portable body of [`conv_direct_rows`]: per output row, initialize to
/// bias and sweep taps in `(c, kh, kw)` order, each tap a contiguous
/// row-by-row multiply-accumulate the autovectorizer handles.
#[allow(clippy::too_many_arguments)] // geometry of one padded sample, passed flat
fn conv_direct_rows_portable(
    xpad: &[f32],
    wmat: &[f32],
    bias: &[f32],
    mrange: std::ops::Range<usize>,
    out: &mut [f32],
    h: usize,
    w: usize,
    c: usize,
    k: usize,
) {
    let pad = k / 2;
    let ph = h + 2 * pad;
    let pw = w + 2 * pad;
    let ckk = c * k * k;
    for (local, mi) in mrange.enumerate() {
        let wrow = &wmat[mi * ckk..(mi + 1) * ckk];
        let b = bias[mi];
        for oh in 0..h {
            let orow = &mut out[(local * h + oh) * w..(local * h + oh + 1) * w];
            orow.fill(b);
            for ci in 0..c {
                for kh in 0..k {
                    let xrow = &xpad[ci * ph * pw + (oh + kh) * pw..][..pw];
                    for kw in 0..k {
                        let tap = wrow[(ci * k + kh) * k + kw];
                        for (ov, &xv) in orow.iter_mut().zip(&xrow[kw..kw + w]) {
                            *ov += tap * xv;
                        }
                    }
                }
            }
        }
    }
}

/// AVX body of [`conv_direct_rows`] (`w % 8 == 0`): the output plane is
/// tiled into 8-wide blocks, processed four at a time so four independent
/// accumulator chains hide the vector-add latency. Each lane still runs
/// the scalar chain — bias, then mul+add per tap in `(c, kh, kw)` order,
/// never FMA — so the result is bitwise identical to the portable body.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
#[allow(clippy::too_many_arguments)] // geometry of one padded sample, passed flat
unsafe fn conv_direct_rows_avx(
    xpad: &[f32],
    wmat: &[f32],
    bias: &[f32],
    mrange: std::ops::Range<usize>,
    out: &mut [f32],
    h: usize,
    w: usize,
    c: usize,
    k: usize,
) {
    use std::arch::x86_64::*;
    let pad = k / 2;
    let ph = h + 2 * pad;
    let pw = w + 2 * pad;
    let phpw = ph * pw;
    let ckk = c * k * k;
    let wblocks = w / 8; // caller guarantees w % 8 == 0
    let blocks = h * wblocks;
    let xp = xpad.as_ptr();
    for (local, mi) in mrange.enumerate() {
        let wrow = wmat.as_ptr().add(mi * ckk);
        let b8 = _mm256_broadcast_ss(&bias[mi]);
        let oplane = out.as_mut_ptr().add(local * h * w);
        let mut j = 0;
        while j + 4 <= blocks {
            // Padded-plane offset of each block's lane 0 (kh = kw = 0).
            let mut off = [0usize; 4];
            for (t, o) in off.iter_mut().enumerate() {
                let bj = j + t;
                *o = (bj / wblocks) * pw + (bj % wblocks) * 8;
            }
            let mut acc0 = b8;
            let mut acc1 = b8;
            let mut acc2 = b8;
            let mut acc3 = b8;
            let mut q = wrow;
            for ci in 0..c {
                let xc = xp.add(ci * phpw);
                for kh in 0..k {
                    let xr = xc.add(kh * pw);
                    for kw in 0..k {
                        let tap = _mm256_broadcast_ss(&*q);
                        q = q.add(1);
                        let xrk = xr.add(kw);
                        acc0 = _mm256_add_ps(
                            acc0,
                            _mm256_mul_ps(tap, _mm256_loadu_ps(xrk.add(off[0]))),
                        );
                        acc1 = _mm256_add_ps(
                            acc1,
                            _mm256_mul_ps(tap, _mm256_loadu_ps(xrk.add(off[1]))),
                        );
                        acc2 = _mm256_add_ps(
                            acc2,
                            _mm256_mul_ps(tap, _mm256_loadu_ps(xrk.add(off[2]))),
                        );
                        acc3 = _mm256_add_ps(
                            acc3,
                            _mm256_mul_ps(tap, _mm256_loadu_ps(xrk.add(off[3]))),
                        );
                    }
                }
            }
            // Blocks tile the row-major plane exactly, so block j's
            // output starts at element j·8.
            _mm256_storeu_ps(oplane.add(j * 8), acc0);
            _mm256_storeu_ps(oplane.add((j + 1) * 8), acc1);
            _mm256_storeu_ps(oplane.add((j + 2) * 8), acc2);
            _mm256_storeu_ps(oplane.add((j + 3) * 8), acc3);
            j += 4;
        }
        while j < blocks {
            let off = (j / wblocks) * pw + (j % wblocks) * 8;
            let mut acc = b8;
            let mut q = wrow;
            for ci in 0..c {
                let xc = xp.add(ci * phpw);
                for kh in 0..k {
                    let xr = xc.add(kh * pw + off);
                    for kw in 0..k {
                        let tap = _mm256_broadcast_ss(&*q);
                        q = q.add(1);
                        acc = _mm256_add_ps(acc, _mm256_mul_ps(tap, _mm256_loadu_ps(xr.add(kw))));
                    }
                }
            }
            _mm256_storeu_ps(oplane.add(j * 8), acc);
            j += 1;
        }
    }
}

/// Per-item (per-sample) flop estimate of the fused
/// conv→GroupNorm→activation kernel. Shared by the live grain computation
/// in [`Conv2d::forward_fused`] and the registered access summary, so the
/// registry-parity test sees identical planning inputs.
pub fn fused_flops_per_item(
    c: usize,
    m: usize,
    k: usize,
    hw: usize,
    with_gn: bool,
    with_act: bool,
) -> usize {
    let mut flops = m * c * k * k * hw;
    if with_gn {
        // Two accumulates per element for the moments, one normalize
        // multiply-add, one affine multiply-add.
        flops += 5 * m * hw;
    }
    if with_act {
        flops += m * hw;
    }
    flops
}

// ---------------------------------------------------------------------------
// Affine access summaries (one per `parallel_for_disjoint*` call above)
// ---------------------------------------------------------------------------

use crate::access::{AccessKind, KernelAccessSummary, RegionDecl, ScratchDecl, StridedAccess};

/// Per-sample padded-plane scratch of the direct conv kernel
/// (`[C][H+2·pad][W+2·pad]`). Shared by the live kernels and the access
/// summaries below so the registry describes the real allocation.
pub fn padded_plane_len(c: usize, k: usize, h: usize, w: usize) -> usize {
    let pad = k / 2;
    c * (h + 2 * pad) * (w + 2 * pad)
}

/// Access summary of the batch split in [`Conv2d::forward`]: item `ni`
/// writes `y[ni, :, :, :]`, reads `x[ni, :, :, :]`, and every item reads
/// the resident weights and bias; the zero-padded input plane is a
/// per-thread arena.
pub fn forward_batch_access(
    n: usize,
    c: usize,
    m: usize,
    k: usize,
    h: usize,
    w: usize,
) -> KernelAccessSummary {
    let ckk = c * k * k;
    let hw = h * w;
    KernelAccessSummary {
        kernel: "conv2d.forward (batch split)",
        items: n,
        grain: 1,
        flops_per_item: m * ckk * hw,
        regions: vec![
            RegionDecl::output("y", n * m * hw),
            RegionDecl::input("x", n * c * hw),
            RegionDecl::input("w", m * ckk),
            RegionDecl::input("bias", m),
        ],
        accesses: vec![
            StridedAccess::contiguous("y", AccessKind::Write, m * hw),
            StridedAccess::contiguous("x", AccessKind::Read, c * hw),
            StridedAccess::broadcast_read("w", m * ckk),
            StridedAccess::broadcast_read("bias", m),
        ],
        scratch: vec![ScratchDecl::arena("xpad", padded_plane_len(c, k, h, w))],
    }
}

/// Access summary of the batch split in [`Conv2d::forward_fused`]
/// (conv→GroupNorm→activation, the shape the NODE embedded networks
/// execute): item `ni` writes `y[ni, :, :, :]`, reads `x[ni, :, :, :]`
/// and the resident weights/bias/γ/β; the conv output panel exists only
/// in per-thread arena scratch.
pub fn fused_forward_access(
    n: usize,
    c: usize,
    m: usize,
    k: usize,
    h: usize,
    w: usize,
) -> KernelAccessSummary {
    let ckk = c * k * k;
    let hw = h * w;
    let flops = fused_flops_per_item(c, m, k, hw, true, true);
    KernelAccessSummary {
        kernel: "conv2d.fused_forward (batch split)",
        items: n,
        grain: parallel::grain_for_sized(n, flops),
        flops_per_item: flops,
        regions: vec![
            RegionDecl::output("y", n * m * hw),
            RegionDecl::input("x", n * c * hw),
            RegionDecl::input("w", m * ckk),
            RegionDecl::input("bias", m),
            RegionDecl::input("gamma", m),
            RegionDecl::input("beta", m),
        ],
        accesses: vec![
            StridedAccess::contiguous("y", AccessKind::Write, m * hw),
            StridedAccess::contiguous("x", AccessKind::Read, c * hw),
            StridedAccess::broadcast_read("w", m * ckk),
            StridedAccess::broadcast_read("bias", m),
            StridedAccess::broadcast_read("gamma", m),
            StridedAccess::broadcast_read("beta", m),
        ],
        scratch: vec![
            ScratchDecl::arena("xpad", padded_plane_len(c, k, h, w)),
            ScratchDecl::arena("conv_out", m * hw),
        ],
    }
}

/// Access summary of the row split in [`Conv2d::forward`] (batch
/// underfills the pool): item `mi` writes one sample's output row
/// `ys[mi·hw ..]` and reads its own weight row; the shared zero-padded
/// input plane is a broadcast read (padded serially before the split).
pub fn forward_rows_access(
    c: usize,
    m: usize,
    k: usize,
    h: usize,
    w: usize,
) -> KernelAccessSummary {
    let ckk = c * k * k;
    let hw = h * w;
    let xpad_len = padded_plane_len(c, k, h, w);
    KernelAccessSummary {
        kernel: "conv2d.forward (row split)",
        items: m,
        grain: parallel::grain_for(ckk * hw),
        flops_per_item: ckk * hw,
        regions: vec![
            RegionDecl::output("ys", m * hw),
            RegionDecl::input("w", m * ckk),
            RegionDecl::input("bias", m),
            RegionDecl::input("xpad", xpad_len),
        ],
        accesses: vec![
            StridedAccess::contiguous("ys", AccessKind::Write, hw),
            StridedAccess::contiguous("w", AccessKind::Read, ckk),
            StridedAccess {
                region: "bias",
                kind: AccessKind::Read,
                offset: 0,
                stride_per_item: 1,
                elem_stride: 1,
                count: 1,
            },
            StridedAccess::broadcast_read("xpad", xpad_len),
        ],
        scratch: vec![ScratchDecl::arena("xpad", xpad_len)],
    }
}

/// Access summary of the batch split in [`Conv2d::backward_input`]:
/// item `ni` writes `dx[ni, :, :, :]` and reads `dy[ni, :, :, :]` plus
/// the resident (flipped) weights.
pub fn backward_input_batch_access(
    n: usize,
    c: usize,
    m: usize,
    k: usize,
    hw: usize,
) -> KernelAccessSummary {
    KernelAccessSummary {
        kernel: "conv2d.backward_input (batch split)",
        items: n,
        grain: 1,
        flops_per_item: c * k * k * m * hw,
        regions: vec![
            RegionDecl::output("dx", n * c * hw),
            RegionDecl::input("dy", n * m * hw),
            RegionDecl::input("w", m * c * k * k),
        ],
        accesses: vec![
            StridedAccess::contiguous("dx", AccessKind::Write, c * hw),
            StridedAccess::contiguous("dy", AccessKind::Read, m * hw),
            StridedAccess::broadcast_read("w", m * c * k * k),
        ],
        scratch: vec![],
    }
}

/// Access summary of the channel split in [`Conv2d::backward_input`]
/// (batch underfills the pool): item `ci` writes one sample's channel
/// plane `dxs[ci·hw ..]`; `dy` and the weights are shared reads (the
/// weight column walk per channel is modeled as a broadcast).
pub fn backward_input_channels_access(
    c: usize,
    m: usize,
    k: usize,
    hw: usize,
) -> KernelAccessSummary {
    KernelAccessSummary {
        kernel: "conv2d.backward_input (channel split)",
        items: c,
        grain: parallel::grain_for(m * hw * k * k),
        flops_per_item: m * hw * k * k,
        regions: vec![
            RegionDecl::output("dxs", c * hw),
            RegionDecl::input("dys", m * hw),
            RegionDecl::input("w", m * c * k * k),
        ],
        accesses: vec![
            StridedAccess::contiguous("dxs", AccessKind::Write, hw),
            StridedAccess::broadcast_read("dys", m * hw),
            StridedAccess::broadcast_read("w", m * c * k * k),
        ],
        scratch: vec![],
    }
}

/// Access summary of the batch split in [`Conv2d::backward_params`]:
/// item `ni` writes its own `(dW, db)` partial stride of the scratch
/// partials buffer; the serial sample-order fold happens after the join
/// and is outside the parallel phase.
pub fn backward_params_batch_access(
    n: usize,
    c: usize,
    m: usize,
    k: usize,
    hw: usize,
) -> KernelAccessSummary {
    let ckk = c * k * k;
    let psize = m * ckk + m;
    KernelAccessSummary {
        kernel: "conv2d.backward_params (batch split)",
        items: n,
        grain: 1,
        flops_per_item: m * ckk * hw,
        regions: vec![
            RegionDecl::partials("partials", n * psize),
            RegionDecl::input("x", n * c * hw),
            RegionDecl::input("dy", n * m * hw),
        ],
        accesses: vec![
            StridedAccess::contiguous("partials", AccessKind::Write, psize),
            StridedAccess::contiguous("x", AccessKind::Read, c * hw),
            StridedAccess::contiguous("dy", AccessKind::Read, m * hw),
        ],
        scratch: vec![
            ScratchDecl::arena("partials", n * psize),
            ScratchDecl::arena("cols", ckk * hw),
        ],
    }
}

/// Access summary of the row split in [`Conv2d::backward_params`]
/// (batch underfills the pool): item `mi` owns `dW[mi, :]` and `db[mi]`
/// (a `parallel_for_disjoint2` over both), accumulating one sample per
/// parallel region; `dy` and the shared im2col columns are broadcasts.
pub fn backward_params_rows_access(
    n: usize,
    c: usize,
    m: usize,
    k: usize,
    hw: usize,
) -> KernelAccessSummary {
    let ckk = c * k * k;
    KernelAccessSummary {
        kernel: "conv2d.backward_params (row split)",
        items: m,
        grain: parallel::grain_for(ckk * hw),
        flops_per_item: ckk * hw,
        regions: vec![
            RegionDecl::output("dw", m * ckk),
            RegionDecl::output("db", m),
            RegionDecl::input("dy", n * m * hw),
            RegionDecl::input("cols", ckk * hw),
        ],
        accesses: vec![
            StridedAccess::contiguous("dw", AccessKind::Write, ckk),
            StridedAccess {
                region: "db",
                kind: AccessKind::Write,
                offset: 0,
                stride_per_item: 1,
                elem_stride: 1,
                count: 1,
            },
            StridedAccess::broadcast_read("dy", n * m * hw),
            StridedAccess::broadcast_read("cols", ckk * hw),
        ],
        scratch: vec![ScratchDecl::arena("cols", ckk * hw)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Identity kernel: 1 in the center, zero elsewhere.
    fn identity_conv(channels: usize) -> Conv2d {
        let mut w = Tensor::zeros(&[channels, channels, 3, 3]);
        for c in 0..channels {
            *w.at4_mut(c, c, 1, 1) = 1.0;
        }
        Conv2d::from_parts(w, Tensor::zeros(&[channels]))
    }

    #[test]
    fn identity_kernel_passes_through() {
        let conv = identity_conv(2);
        let x = Tensor::from_vec((0..32).map(|v| v as f32).collect(), &[1, 2, 4, 4]);
        let y = conv.forward(&x);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn box_kernel_interior_sum() {
        // All-ones 3x3 kernel on all-ones input: interior outputs are 9,
        // edges 6, corners 4 (zero padding).
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let conv = Conv2d::from_parts(w, Tensor::zeros(&[1]));
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let y = conv.forward(&x);
        assert_eq!(y.at4(0, 0, 1, 1), 9.0);
        assert_eq!(y.at4(0, 0, 0, 1), 6.0);
        assert_eq!(y.at4(0, 0, 0, 0), 4.0);
    }

    #[test]
    fn bias_added_per_channel() {
        let w = Tensor::zeros(&[2, 1, 3, 3]);
        let bias = Tensor::from_vec(vec![1.0, -2.0], &[2]);
        let conv = Conv2d::from_parts(w, bias);
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let y = conv.forward(&x);
        assert_eq!(y.at4(0, 0, 0, 0), 1.0);
        assert_eq!(y.at4(0, 1, 1, 1), -2.0);
    }

    #[test]
    fn adjoint_identity() {
        // <conv(x), y> == <x, conv^T(y)> for bias-free conv: the defining
        // property of backward_input being the true adjoint.
        let conv = Conv2d::new_seeded(3, 5, 3, 7);
        let conv = Conv2d::from_parts(conv.weight().clone(), Tensor::zeros(&[5]));
        let x = init::uniform(&[2, 3, 6, 6], -1.0, 1.0, 11);
        let y = init::uniform(&[2, 5, 6, 6], -1.0, 1.0, 13);
        let lhs = conv.forward(&x).dot(&y);
        let rhs = x.dot(&conv.backward_input(&y));
        assert!(
            (lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0),
            "adjoint mismatch: {lhs} vs {rhs}"
        );
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut conv = Conv2d::new_seeded(2, 2, 3, 3);
        let x = init::uniform(&[1, 2, 4, 4], -1.0, 1.0, 5);
        // Loss = sum(conv(x)); dy = ones.
        let dy = Tensor::ones(&[1, 2, 4, 4]);
        let (dw, db) = conv.backward_params(&x, &dy);
        let eps = 1e-3;
        // Check a handful of weight entries.
        for &idx in &[0usize, 7, 17, 35] {
            let orig = conv.weight().data()[idx];
            conv.weight_mut().data_mut()[idx] = orig + eps;
            let lp = conv.forward(&x).sum();
            conv.weight_mut().data_mut()[idx] = orig - eps;
            let lm = conv.forward(&x).sum();
            conv.weight_mut().data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - dw.data()[idx]).abs() < 1e-2 * fd.abs().max(1.0),
                "dW[{idx}]: fd {fd} vs analytic {}",
                dw.data()[idx]
            );
        }
        // Bias gradient for loss=sum is just the number of output pixels.
        assert!((db.data()[0] - 16.0).abs() < 1e-4);
    }

    #[test]
    fn im2col_forward_matches_reference() {
        for (c, m, hh, ww, seed) in [
            (3usize, 5usize, 6usize, 7usize, 1u64),
            (8, 8, 4, 4, 2),
            (1, 2, 9, 3, 3),
        ] {
            let conv = Conv2d::new_seeded(c, m, 3, seed);
            let mut conv = conv;
            // Non-zero bias to exercise the bias path.
            conv.bias_mut()
                .data_mut()
                .iter_mut()
                .enumerate()
                .for_each(|(i, b)| *b = i as f32 * 0.1);
            let x = init::uniform(&[2, c, hh, ww], -1.0, 1.0, seed + 10);
            let fast = conv.forward(&x);
            let slow = conv.forward_reference(&x);
            let diff = (&fast - &slow).norm_inf();
            assert!(diff < 1e-4, "im2col deviates by {diff} for c={c} m={m}");
        }
    }

    #[test]
    fn direct_forward_matches_im2col_gemm_bitwise() {
        // The direct padded kernel must reproduce the im2col + packed-gemm
        // lowering bit-for-bit: same per-element tap chain, with padding
        // taps as explicit `w·0` adds.
        use crate::matmul::gemm_bias;
        for (c, m, hh, ww, k, seed) in [
            (3usize, 5usize, 6usize, 7usize, 3usize, 1u64),
            (8, 8, 4, 4, 3, 2),
            (4, 4, 8, 8, 3, 3),
            (2, 3, 5, 16, 5, 4),
        ] {
            let mut conv = Conv2d::new_seeded(c, m, k, seed);
            conv.bias_mut()
                .data_mut()
                .iter_mut()
                .enumerate()
                .for_each(|(i, b)| *b = (i as f32 - 1.0) * 0.3);
            let x = init::uniform(&[2, c, hh, ww], -1.0, 1.0, seed + 40);
            let y = conv.forward(&x);
            let ckk = c * k * k;
            let hw = hh * ww;
            let mut cols = vec![0.0f32; ckk * hw];
            for ni in 0..2 {
                im2col(&x, ni, k, &mut cols);
                let mut yref = vec![0.0f32; m * hw];
                gemm_bias(
                    &mut yref,
                    conv.weight().data(),
                    conv.bias().data(),
                    &cols,
                    ckk,
                    hw,
                );
                assert_eq!(
                    &y.data()[ni * m * hw..(ni + 1) * m * hw],
                    &yref[..],
                    "ni={ni} w={ww} k={k}"
                );
            }
        }
    }

    #[test]
    fn direct_conv_avx_and_portable_agree_bitwise() {
        // Dispatch transparency: whatever body `conv_direct_rows` picks on
        // this host must agree with the portable loop bit-for-bit
        // (trivially true on non-AVX hosts, a real check with AVX).
        for (c, m, hh, ww, k) in [(4usize, 4usize, 8usize, 8usize, 3usize), (3, 5, 2, 16, 5)] {
            let mut conv = Conv2d::new_seeded(c, m, k, 31);
            conv.bias_mut()
                .data_mut()
                .iter_mut()
                .enumerate()
                .for_each(|(i, b)| *b = 0.7 - i as f32 * 0.2);
            let x = init::uniform(&[1, c, hh, ww], -1.0, 1.0, 37);
            let mut xpad = vec![0.0f32; padded_plane_len(c, k, hh, ww)];
            pad_sample(&x, 0, k / 2, &mut xpad);
            let wd = conv.weight().data();
            let bd = conv.bias().data();
            let mut portable = vec![0.0f32; m * hh * ww];
            conv_direct_rows_portable(&xpad, wd, bd, 0..m, &mut portable, hh, ww, c, k);
            let mut dispatched = vec![1.0f32; m * hh * ww];
            conv_direct_rows(&xpad, wd, bd, 0..m, &mut dispatched, hh, ww, c, k);
            assert_eq!(portable, dispatched, "w={ww} k={k}");
        }
    }

    #[test]
    fn fused_forward_matches_unfused_composition_bitwise() {
        use crate::norm::GroupNorm;
        let conv = Conv2d::new_seeded(3, 4, 3, 9);
        let gn = GroupNorm::new(4, 2);
        let x = init::uniform(&[5, 3, 6, 6], -1.0, 1.0, 19);
        for act in [None, Some(Activation::Relu), Some(Activation::Tanh)] {
            let fused = conv.forward_fused(&x, Some(&gn), act);
            let (normed, _) = gn.forward(&conv.forward(&x));
            let unfused = match act {
                Some(a) => a.forward(&normed),
                None => normed,
            };
            assert_eq!(fused.data(), unfused.data(), "act={act:?}");
        }
    }

    #[test]
    fn fused_forward_without_norm_applies_activation_bitwise() {
        let conv = Conv2d::new_seeded(2, 3, 3, 23);
        let x = init::uniform(&[3, 2, 4, 4], -1.0, 1.0, 29);
        let fused = conv.forward_fused(&x, None, Some(Activation::Relu));
        let unfused = Activation::Relu.forward(&conv.forward(&x));
        assert_eq!(fused.data(), unfused.data());
        let plain = conv.forward_fused(&x, None, None);
        assert_eq!(plain.data(), conv.forward(&x).data());
    }

    #[test]
    fn macs_count() {
        let conv = Conv2d::new_seeded(8, 8, 3, 0);
        assert_eq!(conv.macs(1, 64, 64), 8 * 8 * 64 * 64 * 9);
    }

    #[test]
    #[should_panic(expected = "odd kernel")]
    fn even_kernel_rejected() {
        let w = Tensor::zeros(&[1, 1, 2, 2]);
        let _ = Conv2d::from_parts(w, Tensor::zeros(&[1]));
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn wrong_input_channels_rejected() {
        let conv = Conv2d::new_seeded(3, 4, 3, 0);
        let x = Tensor::ones(&[1, 2, 4, 4]);
        let _ = conv.forward(&x);
    }
}
