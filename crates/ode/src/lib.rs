//! Runge–Kutta numerical integration for the eNODE reproduction.
//!
//! Implements the ODE-solving substrate the paper builds on:
//!
//! * [`tableau`] — generic Butcher tableaux: Euler, Midpoint, Heun, the
//!   RK23 (Bogacki–Shampine) pair the paper uses throughout, classic RK4,
//!   RKF45 and DOPRI5.
//! * [`step`] — one Runge–Kutta step over any [`StateOps`] state, with
//!   embedded error estimation and FSAL reuse.
//! * [`solver`] — fixed-step and adaptive initial-value-problem solvers with
//!   full search statistics (evaluation points, trials, function
//!   evaluations) as profiled in paper §II.
//! * [`controller`] — iterative stepsize-search controllers: the classic
//!   Press–Teukolsky accept/reject search (§II-B) and eNODE's
//!   **slope-adaptive stepsize search** (§VII-A).
//! * [`ddg`] — the data-dependency graph of a **depth-first integrator**
//!   (§IV, Fig 6a): integral states `k_i`, factored partial states
//!   `p_{i,j}` and error partials `e_i`, with lifetime analysis used by the
//!   hardware buffer models.
//!
//! # Example: adaptive RK23 on exponential decay
//!
//! ```
//! use enode_ode::{solver::{solve_adaptive, AdaptiveOptions}, tableau::ButcherTableau};
//! use enode_ode::controller::ClassicController;
//!
//! let tableau = ButcherTableau::rk23_bogacki_shampine();
//! let mut controller = ClassicController::new(tableau.error_order());
//! let opts = AdaptiveOptions::new(1e-8);
//! let sol = solve_adaptive(
//!     |_, y: &Vec<f64>| vec![-y[0]],
//!     0.0,
//!     1.0,
//!     vec![1.0],
//!     &tableau,
//!     &mut controller,
//!     &opts,
//! ).unwrap();
//! let exact = (-1.0f64).exp();
//! assert!((sol.final_state()[0] - exact).abs() < 1e-6);
//! ```

pub mod controller;
pub mod ddg;
pub mod problems;
pub mod solver;
pub mod state;
pub mod step;
pub mod stiffness;
pub mod tableau;
pub mod verify;

pub use controller::{
    ClassicController, ConventionalSearchController, PiController, SlopeAdaptiveController,
    StepController,
};
pub use solver::{solve_adaptive, solve_fixed, AdaptiveOptions, Solution};
pub use state::StateOps;
pub use tableau::ButcherTableau;
