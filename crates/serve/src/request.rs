//! The request lifecycle: what a client submits, what comes back, and the
//! explicit ways the runtime refuses work.

use enode_node::inference::NodeError;
use enode_tensor::syncmodel::trace;
use enode_tensor::Tensor;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// The accuracy class a request is admitted under. Requests of different
/// classes never share a batch (the stepsize search runs per sample, but
/// the solver options are per batch), and each class maps to a base
/// tolerance the degradation tiers scale up from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ToleranceClass {
    /// ε = 1e-6 — the paper's experimental setting.
    Strict,
    /// ε = 1e-4 — the throughput/accuracy middle ground.
    Standard,
    /// ε = 1e-2 — always-on streaming workloads (keyword spotting).
    Relaxed,
}

impl ToleranceClass {
    /// The base error tolerance of the class (tier 0 serves at this ε).
    pub fn tolerance(self) -> f64 {
        match self {
            ToleranceClass::Strict => 1e-6,
            ToleranceClass::Standard => 1e-4,
            ToleranceClass::Relaxed => 1e-2,
        }
    }

    /// Stable textual form (metrics snapshots, bench rows).
    pub fn as_str(self) -> &'static str {
        match self {
            ToleranceClass::Strict => "strict",
            ToleranceClass::Standard => "standard",
            ToleranceClass::Relaxed => "relaxed",
        }
    }
}

/// Scheduling weight inside the ingress queue: high-priority requests are
/// batched ahead of normal ones that arrived earlier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Served in arrival order.
    Normal,
    /// Jumps ahead of `Normal` requests at batch formation.
    High,
}

/// One inference request.
#[derive(Clone, Debug)]
pub struct Request {
    /// A single sample, shape `[1, ...]` matching the served model.
    pub input: Tensor,
    /// Absolute deadline (µs in the server's clock domain). Work not
    /// dispatched by this time is shed; work with thin slack degrades.
    pub deadline_us: u64,
    /// The accuracy class (batching key and base tolerance).
    pub tolerance_class: ToleranceClass,
    /// Queue priority.
    pub priority: Priority,
}

/// Why the runtime refused (or failed) a request. Every variant is an
/// explicit, observable outcome — nothing is silently dropped.
#[derive(Clone, Debug, PartialEq)]
pub enum Rejected {
    /// Admission control: the bounded ingress queue was full. The caller
    /// owns backpressure (retry, downsample, or shed upstream).
    QueueFull {
        /// The configured queue capacity that was exhausted.
        capacity: usize,
    },
    /// Load shedding: the deadline expired before dispatch.
    DeadlineExpired {
        /// The request's absolute deadline.
        deadline_us: u64,
        /// The time the shed decision was made.
        now_us: u64,
    },
    /// The worker thread executing the batch panicked (e.g. a malformed
    /// input). The batch fails; the queue and the other workers live on.
    WorkerPanic,
    /// The solver failed (stepsize underflow / non-finite state).
    SolveFailed(NodeError),
    /// The server is shutting down and no longer accepts or serves work.
    ShuttingDown,
    /// Fleet admission control: no reachable instance holds the published
    /// model version in its weight SRAM (rolling publish or
    /// post-rebalance warm-up gap). The caller retries after warm-up.
    NotResident {
        /// The model the tenant is bound to.
        model: String,
        /// The published version no instance has warmed.
        version: u32,
    },
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull { capacity } => {
                write!(f, "ingress queue full (capacity {capacity})")
            }
            Rejected::DeadlineExpired {
                deadline_us,
                now_us,
            } => write!(f, "deadline {deadline_us}µs expired at {now_us}µs"),
            Rejected::WorkerPanic => write!(f, "batch worker panicked"),
            Rejected::SolveFailed(e) => write!(f, "solver failed: {e}"),
            Rejected::ShuttingDown => write!(f, "server shutting down"),
            Rejected::NotResident { model, version } => {
                write!(f, "model {model} v{version} not resident on any instance")
            }
        }
    }
}

impl std::error::Error for Rejected {}

/// A served response.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// The model output for the request's sample (`[1, ...]`).
    pub output: Tensor,
    /// The degradation tier that served the request: 0 is full quality,
    /// higher tiers are cheaper solver configurations.
    pub tier: usize,
    /// How many requests shared the dispatched batch.
    pub batch_size: usize,
    /// When the request was admitted (µs, server clock).
    pub submitted_us: u64,
    /// When the response was delivered (µs, server clock).
    pub completed_us: u64,
}

impl Response {
    /// Queueing + service latency in microseconds.
    pub fn latency_us(&self) -> u64 {
        self.completed_us.saturating_sub(self.submitted_us)
    }
}

/// The outcome a [`Ticket`] resolves to.
pub type ServeResult = Result<Response, Rejected>;

#[derive(Debug)]
pub(crate) struct TicketInner {
    slot: Mutex<Option<ServeResult>>,
    ready: Condvar,
}

impl TicketInner {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(TicketInner {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    /// Delivers the outcome (first write wins; duplicates are ignored so
    /// shutdown can sweep already-failed tickets without panicking).
    pub(crate) fn fill(&self, result: ServeResult) {
        let mut slot = self
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let _t = trace::lock_acquired("ticket.slot");
        if slot.is_none() {
            *slot = Some(result);
            trace::notify_event("ticket.ready");
            self.ready.notify_all();
        }
    }
}

/// The client's handle to an in-flight request: a one-shot receiver the
/// runtime resolves exactly once.
#[derive(Debug)]
pub struct Ticket {
    pub(crate) inner: Arc<TicketInner>,
}

impl Ticket {
    /// Blocks until the outcome is delivered.
    pub fn wait(self) -> ServeResult {
        let mut slot = self
            .inner
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let _t = trace::lock_acquired("ticket.slot");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            trace::wait_event("ticket.ready");
            slot = self
                .inner
                .ready
                .wait(slot)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Takes the outcome if it is already delivered (non-blocking).
    pub fn try_take(&self) -> Option<ServeResult> {
        let mut slot = self
            .inner
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let _t = trace::lock_acquired("ticket.slot");
        slot.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_classes_are_ordered_cheapest_last() {
        assert!(ToleranceClass::Strict.tolerance() < ToleranceClass::Standard.tolerance());
        assert!(ToleranceClass::Standard.tolerance() < ToleranceClass::Relaxed.tolerance());
        assert_eq!(ToleranceClass::Relaxed.as_str(), "relaxed");
    }

    #[test]
    fn ticket_resolves_once_and_duplicates_are_ignored() {
        let inner = TicketInner::new();
        let ticket = Ticket {
            inner: Arc::clone(&inner),
        };
        assert!(ticket.try_take().is_none());
        inner.fill(Err(Rejected::WorkerPanic));
        inner.fill(Err(Rejected::ShuttingDown)); // ignored
        assert_eq!(ticket.wait(), Err(Rejected::WorkerPanic));
    }

    #[test]
    fn ticket_wait_blocks_until_fill() {
        let inner = TicketInner::new();
        let ticket = Ticket {
            inner: Arc::clone(&inner),
        };
        let h = std::thread::spawn(move || ticket.wait());
        std::thread::sleep(std::time::Duration::from_millis(10));
        inner.fill(Err(Rejected::ShuttingDown));
        assert_eq!(h.join().unwrap(), Err(Rejected::ShuttingDown));
    }

    #[test]
    fn rejections_render() {
        let r = Rejected::QueueFull { capacity: 8 };
        assert!(r.to_string().contains("capacity 8"));
        let r = Rejected::DeadlineExpired {
            deadline_us: 10,
            now_us: 20,
        };
        assert!(r.to_string().contains("expired"));
        let r = Rejected::NotResident {
            model: "edge_default".to_string(),
            version: 3,
        };
        assert!(r.to_string().contains("edge_default v3 not resident"));
    }
}
