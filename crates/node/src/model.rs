//! The Neural-ODE model: integration layers, embedded networks and heads.

use enode_tensor::dense::Dense;
use enode_tensor::network::{Network, Op};
use enode_tensor::Tensor;

/// A classification head: global average pooling over the spatial
/// dimensions followed by a dense layer to class logits. (Rank-2 states
/// skip the pooling.)
#[derive(Clone, Debug)]
pub struct ClassifierHead {
    dense: Dense,
}

/// Cache from the head's forward pass.
#[derive(Clone, Debug)]
pub struct HeadCache {
    pooled: Tensor,
    in_shape: Vec<usize>,
}

impl ClassifierHead {
    /// Creates a head mapping `features` to `classes` logits.
    pub fn new_seeded(features: usize, classes: usize, seed: u64) -> Self {
        ClassifierHead {
            dense: Dense::new_seeded(features, classes, seed),
        }
    }

    /// The dense readout layer.
    pub fn dense(&self) -> &Dense {
        &self.dense
    }

    /// Mutable access to the readout layer.
    pub fn dense_mut(&mut self) -> &mut Dense {
        &mut self.dense
    }

    /// Forward pass: `[N, C, H, W] → GAP → [N, C] → logits [N, K]`, or
    /// `[N, D] → logits` directly.
    pub fn forward(&self, x: &Tensor) -> (Tensor, HeadCache) {
        let pooled = match x.shape().len() {
            4 => global_avg_pool(x),
            2 => x.clone(),
            r => panic!("classifier head takes rank 2 or 4 input, got rank {r}"),
        };
        let logits = self.dense.forward(&pooled);
        (
            logits,
            HeadCache {
                pooled,
                in_shape: x.shape().to_vec(),
            },
        )
    }

    /// Backward pass: returns `(dx, dweight, dbias)`.
    pub fn backward(&self, cache: &HeadCache, dlogits: &Tensor) -> (Tensor, Tensor, Tensor) {
        let (dw, db) = self.dense.backward_params(&cache.pooled, dlogits);
        let dpooled = self.dense.backward_input(dlogits);
        let dx = match cache.in_shape.len() {
            4 => global_avg_pool_backward(&dpooled, &cache.in_shape),
            _ => dpooled,
        };
        (dx, dw, db)
    }
}

fn global_avg_pool(x: &Tensor) -> Tensor {
    let (n, c, h, w) = x.shape_obj().nchw();
    let mut out = Tensor::zeros(&[n, c]);
    let inv = 1.0 / (h * w) as f32;
    for ni in 0..n {
        for ci in 0..c {
            let mut acc = 0.0;
            for hi in 0..h {
                for wi in 0..w {
                    acc += x.at4(ni, ci, hi, wi);
                }
            }
            out.data_mut()[ni * c + ci] = acc * inv;
        }
    }
    out
}

fn global_avg_pool_backward(dpooled: &Tensor, in_shape: &[usize]) -> Tensor {
    let (n, c, h, w) = (in_shape[0], in_shape[1], in_shape[2], in_shape[3]);
    let inv = 1.0 / (h * w) as f32;
    let mut dx = Tensor::zeros(in_shape);
    for ni in 0..n {
        for ci in 0..c {
            let g = dpooled.data()[ni * c + ci] * inv;
            for hi in 0..h {
                for wi in 0..w {
                    *dx.at4_mut(ni, ci, hi, wi) = g;
                }
            }
        }
    }
    dx
}

/// A Neural-ODE model: `N` integration layers (each an IVP over the same
/// time span with its own embedded network) and an optional classifier
/// head.
///
/// # Example
///
/// ```
/// use enode_node::model::NodeModel;
/// use enode_tensor::network::{Network, Op};
/// use enode_tensor::dense::Dense;
/// let f = Network::new(vec![Op::dense(Dense::new_seeded(2, 2, 0))]);
/// let model = NodeModel::new(vec![f.clone(), f], (0.0, 1.0));
/// assert_eq!(model.num_layers(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct NodeModel {
    layers: Vec<Network>,
    t_span: (f64, f64),
    head: Option<ClassifierHead>,
    augment: usize,
}

impl NodeModel {
    /// Creates a model from per-layer embedded networks and the per-layer
    /// integration span `[t0, t1]`.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or the span is not increasing.
    pub fn new(layers: Vec<Network>, t_span: (f64, f64)) -> Self {
        assert!(
            !layers.is_empty(),
            "a NODE needs at least one integration layer"
        );
        assert!(t_span.1 > t_span.0, "integration span must be increasing");
        NodeModel {
            layers,
            t_span,
            head: None,
            augment: 0,
        }
    }

    /// Attaches a classifier head.
    pub fn with_head(mut self, head: ClassifierHead) -> Self {
        self.head = Some(head);
        self
    }

    /// Turns the model into an Augmented NODE (ANODE \[7\]): `extra` zero
    /// channels/features are appended to the input state before the first
    /// integration layer and dropped from the prediction. The embedded
    /// networks must be built for the augmented width.
    pub fn with_augmentation(mut self, extra: usize) -> Self {
        self.augment = extra;
        self
    }

    /// Extra augmented dimensions (0 for a plain NODE).
    pub fn augment_dims(&self) -> usize {
        self.augment
    }

    /// Number of integration layers (`N` of the paper).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The embedded networks, one per integration layer.
    pub fn layers(&self) -> &[Network] {
        &self.layers
    }

    /// Mutable access to the embedded networks.
    pub fn layers_mut(&mut self) -> &mut [Network] {
        &mut self.layers
    }

    /// The per-layer time span.
    pub fn t_span(&self) -> (f64, f64) {
        self.t_span
    }

    /// The classifier head, if any.
    pub fn head(&self) -> Option<&ClassifierHead> {
        self.head.as_ref()
    }

    /// Mutable access to the head.
    pub fn head_mut(&mut self) -> Option<&mut ClassifierHead> {
        self.head.as_mut()
    }

    /// Mutable references to every trainable parameter: each layer's
    /// network parameters in order, then the head's weight and bias. The
    /// trainer's gradient vector is aligned with this order.
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        let mut out = Vec::new();
        for f in &mut self.layers {
            out.extend(f.params_mut());
        }
        if let Some(head) = &mut self.head {
            let (w, b) = head.dense.params_mut();
            out.push(w);
            out.push(b);
        }
        out
    }

    /// Total scalar parameter count (embedded networks + head).
    pub fn scalar_param_count(&self) -> usize {
        let mut n: usize = self.layers.iter().map(Network::scalar_param_count).sum();
        if let Some(h) = &self.head {
            n += h.dense().weight().len() + h.dense().bias().len();
        }
        n
    }

    /// Builds the standard dynamic-system NODE used by the Three-Body /
    /// Lotka–Volterra experiments: `num_layers` integration layers, each an
    /// MLP `dim → hidden → dim` with tanh and time injection.
    pub fn dynamic_system(dim: usize, hidden: usize, num_layers: usize, seed: u64) -> Self {
        let layers = (0..num_layers)
            .map(|l| {
                Network::new(vec![
                    Op::ConcatTime,
                    Op::dense(Dense::new_seeded(dim + 1, hidden, seed + 10 * l as u64)),
                    Op::tanh(),
                    Op::dense(Dense::new_seeded(hidden, dim, seed + 10 * l as u64 + 1)),
                ])
            })
            .collect();
        NodeModel::new(layers, (0.0, 1.0))
    }

    /// Builds an augmented dynamic-system NODE (ANODE): the flow runs in
    /// `dim + extra` dimensions; predictions project back to `dim`.
    pub fn dynamic_system_augmented(
        dim: usize,
        extra: usize,
        hidden: usize,
        num_layers: usize,
        seed: u64,
    ) -> Self {
        Self::dynamic_system(dim + extra, hidden, num_layers, seed).with_augmentation(extra)
    }

    /// Like [`NodeModel::image_classifier`] but with GroupNorm between the
    /// convolutions — the Norm layers the eNODE NN core's pre-/post-
    /// processing unit computes (§VI), and the standard NODE-classifier
    /// recipe (batch statistics would make `f` batch-dependent).
    pub fn image_classifier_normed(
        channels: usize,
        n_conv: usize,
        num_layers: usize,
        classes: usize,
        groups: usize,
        seed: u64,
    ) -> Self {
        use enode_tensor::conv::Conv2d;
        use enode_tensor::norm::GroupNorm;
        let layers: Vec<Network> = (0..num_layers)
            .map(|l| {
                let mut ops = Vec::new();
                for k in 0..n_conv {
                    ops.push(Op::conv2d(Conv2d::new_seeded(
                        channels,
                        channels,
                        3,
                        seed + (l * n_conv + k) as u64,
                    )));
                    ops.push(Op::group_norm(GroupNorm::new(channels, groups)));
                    if k + 1 < n_conv {
                        ops.push(Op::relu());
                    }
                }
                ops.push(Op::tanh());
                Network::new(ops)
            })
            .collect();
        NodeModel::new(layers, (0.0, 1.0)).with_head(ClassifierHead::new_seeded(
            channels,
            classes,
            seed + 999,
        ))
    }

    /// Builds the image-classification NODE of the paper's profiling setup
    /// (§II-D): `num_layers` integration layers whose embedded network is a
    /// stack of `n_conv` 3×3 convolutions with ReLU between them, plus a
    /// classifier head.
    pub fn image_classifier(
        channels: usize,
        n_conv: usize,
        num_layers: usize,
        classes: usize,
        seed: u64,
    ) -> Self {
        use enode_tensor::conv::Conv2d;
        let layers: Vec<Network> = (0..num_layers)
            .map(|l| {
                let mut ops = Vec::new();
                for k in 0..n_conv {
                    ops.push(Op::conv2d(Conv2d::new_seeded(
                        channels,
                        channels,
                        3,
                        seed + (l * n_conv + k) as u64,
                    )));
                    if k + 1 < n_conv {
                        ops.push(Op::relu());
                    }
                }
                // tanh keeps the ODE field bounded, as NODE classifiers do.
                ops.push(Op::tanh());
                Network::new(ops)
            })
            .collect();
        NodeModel::new(layers, (0.0, 1.0)).with_head(ClassifierHead::new_seeded(
            channels,
            classes,
            seed + 999,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enode_tensor::init;

    #[test]
    fn gap_averages() {
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[1, 2, 2, 2]);
        let p = global_avg_pool(&x);
        assert_eq!(p.data(), &[1.5, 5.5]);
    }

    #[test]
    fn gap_backward_distributes() {
        let d = Tensor::from_vec(vec![4.0, 8.0], &[1, 2]);
        let dx = global_avg_pool_backward(&d, &[1, 2, 2, 2]);
        assert_eq!(dx.at4(0, 0, 0, 0), 1.0);
        assert_eq!(dx.at4(0, 1, 1, 1), 2.0);
    }

    #[test]
    fn head_forward_shapes() {
        let head = ClassifierHead::new_seeded(4, 10, 1);
        let x = Tensor::ones(&[2, 4, 3, 3]);
        let (logits, _) = head.forward(&x);
        assert_eq!(logits.shape(), &[2, 10]);
    }

    #[test]
    fn head_gradient_matches_fd() {
        let head = ClassifierHead::new_seeded(3, 2, 5);
        let mut x = init::uniform(&[1, 3, 2, 2], -1.0, 1.0, 6);
        let v = init::uniform(&[1, 2], -1.0, 1.0, 7);
        let (_, cache) = head.forward(&x);
        let (dx, _, _) = head.backward(&cache, &v);
        let eps = 1e-3;
        for idx in [0usize, 5, 11] {
            let orig = x.data()[idx];
            x.data_mut()[idx] = orig + eps;
            let lp = head.forward(&x).0.dot(&v);
            x.data_mut()[idx] = orig - eps;
            let lm = head.forward(&x).0.dot(&v);
            x.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - dx.data()[idx]).abs() < 1e-2 * fd.abs().max(1.0));
        }
    }

    #[test]
    fn dynamic_system_builder() {
        let m = NodeModel::dynamic_system(3, 16, 4, 0);
        assert_eq!(m.num_layers(), 4);
        assert!(m.head().is_none());
        let y = m.layers()[0].eval(0.5, &Tensor::ones(&[1, 3]));
        assert_eq!(y.shape(), &[1, 3]);
    }

    #[test]
    fn image_classifier_builder() {
        let m = NodeModel::image_classifier(4, 2, 2, 10, 0);
        assert_eq!(m.num_layers(), 2);
        assert!(m.head().is_some());
        let y = m.layers()[0].eval(0.0, &Tensor::ones(&[1, 4, 5, 5]));
        assert_eq!(y.shape(), &[1, 4, 5, 5]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_model_rejected() {
        let _ = NodeModel::new(vec![], (0.0, 1.0));
    }
}
