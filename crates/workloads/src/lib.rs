//! Evaluation workloads of the eNODE paper (§VIII): the Three-Body
//! equations, the Lotka–Volterra equations, image-classification stand-ins
//! for CIFAR-10 / MNIST, and ResNet reference profiles.
//!
//! "These are the most common benchmarks used by the NODE algorithm
//! community" — the dynamic systems exercise adaptive integration on
//! genuinely stiff-ish trajectories; the image workloads exercise the
//! feature-map (conv) path. The real CIFAR-10/MNIST datasets are not
//! available offline, so [`images`] generates deterministic synthetic
//! class-prototype datasets with the same tensor shapes and separability
//! structure (see DESIGN.md's substitution table).

pub mod datasets;
pub mod images;
pub mod lotka_volterra;
pub mod resnet;
pub mod three_body;
pub mod van_der_pol;

pub use datasets::{trajectory_accuracy, Dataset};
