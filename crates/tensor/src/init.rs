//! Deterministic parameter initializers.
//!
//! All initializers take an explicit seed so that every experiment in the
//! reproduction is bit-for-bit repeatable.

use crate::rng::Rng64;
use crate::tensor::Tensor;

/// Uniform initialization over `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform(dims: &[usize], lo: f32, hi: f32, seed: u64) -> Tensor {
    assert!(lo < hi, "uniform: lo must be < hi");
    let mut rng = Rng64::seed_from_u64(seed);
    let n: usize = dims.iter().product();
    let data: Vec<f32> = (0..n).map(|_| rng.gen_range_f32(lo, hi)).collect();
    Tensor::from_vec(data, dims)
}

/// Standard-normal initialization scaled by `std`.
pub fn normal(dims: &[usize], std: f32, seed: u64) -> Tensor {
    let mut rng = Rng64::seed_from_u64(seed);
    let n: usize = dims.iter().product();
    // Box-Muller transform; avoids a distribution dependency.
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.gen_range_f32(f32::EPSILON, 1.0);
        let u2: f32 = rng.gen_f32();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < n {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::from_vec(data, dims)
}

/// Kaiming (He) uniform initialization: `U(-b, b)` with
/// `b = sqrt(6 / fan_in)` — the standard choice for ReLU networks.
pub fn kaiming_uniform(dims: &[usize], fan_in: usize, seed: u64) -> Tensor {
    let bound = (6.0 / fan_in as f32).sqrt();
    uniform(dims, -bound, bound, seed)
}

/// Xavier (Glorot) uniform initialization:
/// `b = sqrt(6 / (fan_in + fan_out))` — the standard choice for tanh
/// networks (the embedded NNs of dynamic-system NODEs use tanh).
pub fn xavier_uniform(dims: &[usize], fan_in: usize, fan_out: usize, seed: u64) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(dims, -bound, bound, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = uniform(&[100], -1.0, 1.0, 9);
        let b = uniform(&[100], -1.0, 1.0, 9);
        let c = uniform(&[100], -1.0, 1.0, 10);
        assert_eq!(a.data(), b.data());
        assert_ne!(a.data(), c.data());
    }

    #[test]
    fn uniform_in_range() {
        let t = uniform(&[1000], -0.5, 0.5, 1);
        assert!(t.data().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn normal_moments() {
        let t = normal(&[20000], 2.0, 3);
        let mean = t.mean();
        let var = t.data().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / t.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn kaiming_bound() {
        let t = kaiming_uniform(&[64, 64], 64, 0);
        let bound = (6.0f32 / 64.0).sqrt();
        assert!(t.norm_inf() <= bound);
        assert!(t.norm_inf() > bound * 0.9, "should fill the range");
    }

    #[test]
    fn xavier_bound() {
        let t = xavier_uniform(&[32, 16], 16, 32, 0);
        let bound = (6.0f32 / 48.0).sqrt();
        assert!(t.norm_inf() <= bound);
    }
}
