//! A single Runge–Kutta integration step.

use crate::state::StateOps;
use crate::tableau::ButcherTableau;

/// The result of one Runge–Kutta step (one "integration trial" in the
/// paper's stepsize-search terminology).
#[derive(Clone, Debug)]
pub struct StepOutcome<S> {
    /// The advanced state `h(t + Δt)`.
    pub y_next: S,
    /// The embedded error state `e` (absent for fixed-order methods).
    pub error: Option<S>,
    /// The integral states `k_1..k_s` (kept so FSAL methods can reuse the
    /// last stage, and so the adjoint pass can replay intermediate states).
    pub stages: Vec<S>,
    /// Function evaluations performed in this step.
    pub nfe: usize,
}

impl<S: StateOps> StepOutcome<S> {
    /// L2 norm of the error state (the `‖e‖₂` compared against ε in the
    /// stepsize search).
    ///
    /// # Panics
    ///
    /// Panics if the method has no embedded error estimate.
    pub fn error_norm(&self) -> f64 {
        self.error
            .as_ref()
            .expect("error_norm requires an adaptive (embedded-pair) method")
            .norm_l2()
    }
}

/// A pool of reusable state buffers threaded through [`rk_step_with`],
/// eliminating the per-trial `y_next`/partial/error allocations of the
/// stepsize-search inner loop (the paper's integration trials dominate
/// solver time, and each used to clone the full state two or three
/// times).
///
/// Callers keep one `StepScratch` alive across a solve and feed rejected
/// trials' states back via [`StepScratch::recycle`]. All pooled buffers
/// must share the solve's state shape — `copy_from` rebuilds a pooled
/// buffer element-wise before any read, which is exactly what `clone`
/// produces, so pooling is bit-invisible. Call [`StepScratch::clear`]
/// before reusing a pool for a solve with a different state shape.
#[derive(Debug)]
pub struct StepScratch<S> {
    pool: Vec<S>,
}

impl<S> Default for StepScratch<S> {
    fn default() -> Self {
        StepScratch::new()
    }
}

impl<S> StepScratch<S> {
    /// An empty pool.
    pub fn new() -> Self {
        StepScratch { pool: Vec::new() }
    }

    /// Returns retired states (a rejected trial's `y_next`, error state,
    /// or spent stages) to the pool for reuse by later steps.
    pub fn recycle(&mut self, states: impl IntoIterator<Item = S>) {
        self.pool.extend(states);
    }

    /// Number of buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Drops every pooled buffer (required before switching state shapes).
    pub fn clear(&mut self) {
        self.pool.clear();
    }
}

impl<S: StateOps> StepScratch<S> {
    /// A buffer holding a copy of `src`: a pooled buffer rebuilt with
    /// `copy_from` when available, a fresh `clone` otherwise.
    fn take_copy_of(&mut self, src: &S) -> S {
        match self.pool.pop() {
            Some(mut s) => {
                s.copy_from(src);
                s
            }
            None => src.clone(),
        }
    }
}

/// Performs one explicit Runge–Kutta step `y(t) → y(t + h)`.
///
/// `k1` may carry the previous step's FSAL stage to save one `f`
/// evaluation; pass `None` to evaluate from scratch.
///
/// Allocates fresh state buffers per step; the solver loops use
/// [`rk_step_with`] with a shared [`StepScratch`] instead.
///
/// # Panics
///
/// Panics if `h` is not positive and finite.
pub fn rk_step<S: StateOps>(
    tableau: &ButcherTableau,
    f: &mut impl FnMut(f64, &S) -> S,
    t: f64,
    h: f64,
    y: &S,
    k1: Option<S>,
) -> StepOutcome<S> {
    rk_step_with(tableau, f, t, h, y, k1, &mut StepScratch::new())
}

/// [`rk_step`] drawing every temporary state from `scratch` instead of
/// allocating. Bit-identical to [`rk_step`]: pooled buffers are rebuilt
/// with `copy_from` before use and the arithmetic is unchanged.
pub fn rk_step_with<S: StateOps>(
    tableau: &ButcherTableau,
    f: &mut impl FnMut(f64, &S) -> S,
    t: f64,
    h: f64,
    y: &S,
    mut k1: Option<S>,
    scratch: &mut StepScratch<S>,
) -> StepOutcome<S> {
    assert!(
        h > 0.0 && h.is_finite(),
        "stepsize must be positive, got {h}"
    );
    debug_assert!(t.is_finite(), "integration time must be finite, got {t}");
    debug_assert!(
        y.norm_l2().is_finite(),
        "state contains NaN/Inf entering rk_step at t = {t}"
    );
    let s = tableau.stages();
    let mut stages: Vec<S> = Vec::with_capacity(s);
    let mut nfe = 0;

    // One reusable partial-state buffer across all stages (instead of a
    // fresh clone per stage): `p` is rebuilt from `y` by copy_from.
    let mut partial: Option<S> = None;
    for i in 0..s {
        if i == 0 {
            if let Some(k) = k1.take() {
                stages.push(k);
                continue;
            }
            // fall through to evaluate k1
        }
        // Partial state p_i = y + h * sum_{j<i} a[i][j] * k_j  (the paper's
        // p_{i,j} chain, fully accumulated).
        let p = match partial.as_mut() {
            Some(p) => {
                p.copy_from(y);
                p
            }
            None => partial.insert(scratch.take_copy_of(y)),
        };
        for (j, &aij) in tableau.a()[i].iter().enumerate() {
            if aij != 0.0 {
                p.axpy(h * aij, &stages[j]);
            }
        }
        stages.push(f(t + tableau.c()[i] * h, p));
        nfe += 1;
    }
    if let Some(p) = partial {
        scratch.pool.push(p);
    }

    // y_next = y + h * sum b_i k_i.
    let mut y_next = scratch.take_copy_of(y);
    for (i, &bi) in tableau.b().iter().enumerate() {
        if bi != 0.0 {
            y_next.axpy(h * bi, &stages[i]);
        }
    }

    // e = h * sum d_i k_i — seeded by scaling the first contributing
    // stage rather than axpy-ing onto a zero state, saving the per-step
    // zeros allocation. (`0.0 + x` and `x` agree bitwise except on the
    // sign of a zero, which `==` cannot observe.)
    let error = tableau.error_weights().map(|d| {
        let mut e: Option<S> = None;
        for (i, &di) in d.iter().enumerate() {
            if di != 0.0 {
                match e.as_mut() {
                    Some(e) => e.axpy(h * di, &stages[i]),
                    None => {
                        let mut first = scratch.take_copy_of(&stages[i]);
                        first.scale_mut(h * di);
                        e = Some(first);
                    }
                }
            }
        }
        e.unwrap_or_else(|| y.zeros_like())
    });

    StepOutcome {
        y_next,
        error,
        stages,
        nfe,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tableau::all_tableaux;

    /// dy/dt = -y, y(0) = 1: exact solution e^{-t}.
    fn decay(_t: f64, y: &Vec<f64>) -> Vec<f64> {
        vec![-y[0]]
    }

    #[test]
    fn euler_step_exact_formula() {
        let tab = ButcherTableau::euler();
        let out = rk_step(&tab, &mut decay, 0.0, 0.1, &vec![1.0], None);
        assert!((out.y_next[0] - 0.9).abs() < 1e-15);
        assert_eq!(out.nfe, 1);
        assert!(out.error.is_none());
    }

    #[test]
    fn rk4_one_step_accuracy() {
        let tab = ButcherTableau::rk4();
        let out = rk_step(&tab, &mut decay, 0.0, 0.1, &vec![1.0], None);
        let exact = (-0.1f64).exp();
        // RK4 local truncation error is O(h^5): ~1e-7 at h = 0.1.
        assert!((out.y_next[0] - exact).abs() < 2e-7);
    }

    #[test]
    fn convergence_orders() {
        // Halving h must reduce the one-step error by ~2^(order+1)
        // (local truncation error is O(h^{p+1})).
        for tab in all_tableaux() {
            let err_at = |h: f64| {
                let out = rk_step(&tab, &mut decay, 0.0, h, &vec![1.0], None);
                (out.y_next[0] - (-h).exp()).abs()
            };
            let e1 = err_at(0.2);
            let e2 = err_at(0.1);
            if e2 < 1e-13 {
                continue; // high-order methods hit roundoff on this problem
            }
            let observed = (e1 / e2).log2();
            let expected = (tab.order() + 1) as f64;
            assert!(
                observed > expected - 0.7,
                "{}: observed order {observed:.2}, expected ≈{expected}",
                tab.name()
            );
        }
    }

    #[test]
    fn fsal_reuse_saves_one_nfe() {
        let tab = ButcherTableau::rk23_bogacki_shampine();
        let first = rk_step(&tab, &mut decay, 0.0, 0.1, &vec![1.0], None);
        assert_eq!(first.nfe, 4);
        let k1 = first.stages.last().unwrap().clone();
        let second = rk_step(&tab, &mut decay, 0.1, 0.1, &first.y_next, Some(k1));
        assert_eq!(second.nfe, 3);
        // Reused k1 must give the same result as computing from scratch.
        let scratch = rk_step(&tab, &mut decay, 0.1, 0.1, &first.y_next, None);
        assert!((second.y_next[0] - scratch.y_next[0]).abs() < 1e-14);
    }

    #[test]
    fn error_estimate_tracks_true_error() {
        let tab = ButcherTableau::rk23_bogacki_shampine();
        let out = rk_step(&tab, &mut decay, 0.0, 0.2, &vec![1.0], None);
        let true_err = (out.y_next[0] - (-0.2f64).exp()).abs();
        let est = out.error_norm();
        // Same order of magnitude.
        assert!(
            est > true_err * 0.05 && est < true_err * 50.0,
            "estimate {est} vs true {true_err}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nonpositive_stepsize_rejected() {
        let tab = ButcherTableau::euler();
        let _ = rk_step(&tab, &mut decay, 0.0, 0.0, &vec![1.0], None);
    }

    #[test]
    fn pooled_scratch_is_bit_identical_and_reuses_buffers() {
        let tab = ButcherTableau::rk23_bogacki_shampine();
        let mut scratch = StepScratch::new();
        let mut y = vec![1.0, -0.5];
        let f = |_t: f64, s: &Vec<f64>| vec![-s[0], 0.5 * s[1]];
        let mut t = 0.0;
        for _ in 0..8 {
            let pooled = rk_step_with(&tab, &mut f.clone(), t, 0.1, &y, None, &mut scratch);
            let fresh = rk_step(&tab, &mut f.clone(), t, 0.1, &y, None);
            assert_eq!(pooled.y_next, fresh.y_next);
            assert_eq!(pooled.error, fresh.error);
            assert_eq!(pooled.stages, fresh.stages);
            t += 0.1;
            y = pooled.y_next;
            // Retire the spent states the way the solver loops do.
            scratch.recycle(pooled.stages);
            scratch.recycle(pooled.error);
        }
        // After the first couple of steps the pool satisfies every
        // checkout; the steady state allocates nothing.
        assert!(
            scratch.pooled() >= 3,
            "pool should accumulate retired states"
        );
    }
}
