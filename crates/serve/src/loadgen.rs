//! Deterministic load generation: a discrete-event simulation of the
//! serving runtime under open- and closed-loop workloads.
//!
//! The simulation drives a pump-mode [`Server`] (`workers == 0`) on a
//! virtual clock. Batches really run through the solver — outputs and
//! per-sample NFE counts are the true deterministic values — but
//! *service time* is charged by a [`CostModel`] instead of measured, so
//! the entire latency distribution in `BENCH_serve.json` is
//! bit-reproducible: same seed, same policy, same lane count ⇒ the same
//! bytes, on any host.
//!
//! # Arrival processes
//!
//! * **Open loop** ([`LoadSpec::open_loop`]): arrivals are independent
//!   of completions. Inter-arrival gaps are jittered-uniform —
//!   `base × (0.5 + u)` with `u ∈ [0, 1)` from [`Rng64`] — which keeps
//!   the mean gap exactly `1/rate` without transcendental functions
//!   whose last bit could differ across libm builds.
//! * **Closed loop** ([`LoadSpec::closed_loop`]): a fixed population of
//!   clients, each submitting its next request the moment its previous
//!   one resolves. Offered load adapts to service capacity, so the queue
//!   never grows without bound — the classic saturation benchmark.

use crate::clock::Clock;
use crate::metrics::MetricsSnapshot;
use crate::policies::ServeConfig;
use crate::request::{Priority, Request, ToleranceClass};
use crate::server::{Server, SolvedBatch};
use enode_node::inference::NodeSolveOptions;
use enode_node::model::NodeModel;
use enode_tensor::rng::Rng64;
use enode_tensor::{init, parallel};

/// Converts a solved batch's function-evaluation counts into simulated
/// service time, mirroring how [`enode_tensor::parallel::parallel_map`]
/// actually schedules the per-sample solves: samples are split into
/// balanced contiguous chunks across `lanes`, and the batch takes as long
/// as its slowest lane (the makespan), plus a fixed dispatch overhead.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Simulated cost of one function evaluation (µs).
    pub per_nfe_us: f64,
    /// Fixed per-batch dispatch cost (µs).
    pub dispatch_overhead_us: u64,
    /// Parallel lanes the batch solve fans out over.
    pub lanes: usize,
}

impl CostModel {
    /// The default model: 2 µs per NFE, 150 µs dispatch overhead, lanes
    /// from the ambient pool width (`ENODE_THREADS`).
    pub fn default_for_pool() -> Self {
        CostModel {
            per_nfe_us: 2.0,
            dispatch_overhead_us: 150,
            lanes: parallel::default_threads(),
        }
    }

    /// Simulated service time (µs) for a batch with the given per-sample
    /// NFE counts: dispatch overhead plus the slowest-lane makespan under
    /// the pool's balanced contiguous decomposition.
    pub fn service_us(&self, per_sample_nfe: &[u64]) -> u64 {
        let n = per_sample_nfe.len();
        if n == 0 {
            return self.dispatch_overhead_us;
        }
        let ways = self.lanes.max(1).min(n);
        let mut makespan = 0u64;
        // Same split as parallel.rs `chunk`: sizes differ by at most one,
        // earlier lanes take the remainder.
        let (base, rem) = (n / ways, n % ways);
        let mut start = 0;
        for lane in 0..ways {
            let len = base + usize::from(lane < rem);
            let lane_nfe: u64 = per_sample_nfe[start..start + len].iter().sum();
            let lane_us = (lane_nfe as f64 * self.per_nfe_us).ceil() as u64;
            makespan = makespan.max(lane_us);
            start += len;
        }
        self.dispatch_overhead_us + makespan
    }
}

/// How the workload offers requests to the server.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Arrivals {
    /// Fixed-rate arrivals (requests/s) with jittered-uniform gaps.
    OpenLoop {
        /// Offered load in requests per second.
        rate_rps: f64,
    },
    /// A fixed client population, each one-request-outstanding.
    ClosedLoop {
        /// Number of concurrent clients.
        clients: usize,
    },
}

/// A complete workload description. All randomness derives from `seed`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoadSpec {
    /// Total requests to offer.
    pub requests: usize,
    /// The arrival process.
    pub arrivals: Arrivals,
    /// Relative deadline stamped on each request (µs after submission).
    pub deadline_us: u64,
    /// Tolerance class of every request.
    pub class: ToleranceClass,
    /// Model input feature dimension (inputs are `[1, dim]` uniform
    /// samples in `[-1, 1]`).
    pub input_dim: usize,
    /// Master seed for arrival jitter and request inputs.
    pub seed: u64,
}

impl LoadSpec {
    /// An open-loop spec at `rate_rps` requests/s.
    pub fn open_loop(requests: usize, rate_rps: f64, deadline_us: u64) -> Self {
        LoadSpec {
            requests,
            arrivals: Arrivals::OpenLoop { rate_rps },
            deadline_us,
            class: ToleranceClass::Standard,
            input_dim: 2,
            seed: 0x5EED,
        }
    }

    /// A closed-loop spec with `clients` concurrent clients.
    pub fn closed_loop(requests: usize, clients: usize, deadline_us: u64) -> Self {
        LoadSpec {
            requests,
            arrivals: Arrivals::ClosedLoop { clients },
            deadline_us,
            class: ToleranceClass::Standard,
            input_dim: 2,
            seed: 0x5EED,
        }
    }
}

/// The outcome of one simulated run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunResult {
    /// The policy's batch window during the run (µs).
    pub batch_window_us: u64,
    /// Offered load (requests/s) for open loop; `0.0` for closed loop.
    pub offered_rps: f64,
    /// Closed-loop client count; `0` for open loop.
    pub clients: usize,
    /// Requests offered (submitted + rejected at the door).
    pub offered: u64,
    /// Final metrics snapshot (drained: the identity holds exactly).
    pub metrics: MetricsSnapshot,
    /// Completed requests per degradation tier (index = tier).
    pub tier_counts: Vec<u64>,
    /// Virtual time at which the last event resolved (µs).
    pub makespan_us: u64,
}

/// Simulates `spec` against `policy`, returning drained metrics.
///
/// # Panics
///
/// Panics if the spec offers zero requests or the policy is invalid.
pub fn simulate(
    model: &NodeModel,
    base_opts: &NodeSolveOptions,
    policy: &ServeConfig,
    spec: &LoadSpec,
    cost: &CostModel,
) -> RunResult {
    assert!(
        spec.requests > 0,
        "load spec must offer at least one request"
    );
    let clock = Clock::virtual_at(0);
    let mut policy = policy.clone();
    policy.workers = 0; // pump mode: the event loop is the executor
    let server = Server::new(model.clone(), *base_opts, policy.clone(), clock.clone());

    let mut rng = Rng64::seed_from_u64(spec.seed);
    let mut input_rng = rng.fork();
    // Arrival schedule for the open loop; the closed loop generates
    // arrivals from completions instead.
    let mut arrival_times: Vec<u64> = Vec::new();
    let mut closed_clients = 0usize;
    match spec.arrivals {
        Arrivals::OpenLoop { rate_rps } => {
            assert!(rate_rps > 0.0, "open loop needs a positive rate");
            let base_gap_us = 1.0e6 / rate_rps;
            let mut t = 0.0f64;
            for _ in 0..spec.requests {
                t += base_gap_us * (0.5 + rng.gen_f64());
                arrival_times.push(t as u64);
            }
        }
        Arrivals::ClosedLoop { clients } => {
            assert!(clients > 0, "closed loop needs at least one client");
            closed_clients = clients.min(spec.requests);
            // Every client submits its first request at t = 0.
            arrival_times.extend((0..closed_clients).map(|_| 0u64));
        }
    }

    let mut next_input_seed = move || input_rng.next_u64();
    let make_request = |seed: u64, now: u64, spec: &LoadSpec| Request {
        input: init::uniform(&[1, spec.input_dim], -1.0, 1.0, seed),
        deadline_us: now + spec.deadline_us,
        tolerance_class: spec.class,
        priority: Priority::Normal,
    };

    let mut offered = 0u64;
    let mut submitted_total = 0usize; // offered to the queue (incl. rejected)
    let mut arrival_idx = 0usize;
    let mut busy_until: Option<u64> = None;
    let mut in_service: Option<SolvedBatch> = None;
    let mut tier_counts = vec![0u64; policy.tiers.len()];
    let mut makespan_us = 0u64;

    loop {
        // Next event: arrival, completion, or window expiry (the latter
        // only matters when the executor is free to act on it). Once the
        // full request budget is offered, leftover closed-loop refill
        // slots are dead entries — ignore them or the loop never ends.
        let next_arrival = if submitted_total < spec.requests {
            arrival_times.get(arrival_idx).copied()
        } else {
            None
        };
        let completion = busy_until;
        let window = if busy_until.is_none() {
            server.next_window_expiry_us()
        } else {
            None
        };
        let now_t = [next_arrival, completion, window]
            .into_iter()
            .flatten()
            .min();
        let Some(event_us) = now_t else {
            break; // no arrivals left, nothing in flight, queue empty
        };
        let event_us = event_us.max(clock.now_us());
        clock.set_us(event_us);
        makespan_us = event_us;

        // 1. Resolve a completed batch (and, closed loop, refill clients).
        if busy_until == Some(event_us) {
            let solved = in_service.take().expect("busy implies a batch in service");
            let tier = solved.tier();
            let completed = solved.per_sample_nfe().len() as u64;
            tier_counts[tier] += completed;
            server.deliver_batch(solved);
            busy_until = None;
            if closed_clients > 0 {
                for _ in 0..completed {
                    if submitted_total < spec.requests {
                        arrival_times.push(event_us);
                    }
                }
            }
        }

        // 2. Admit every arrival scheduled at or before this instant.
        while arrival_times
            .get(arrival_idx)
            .is_some_and(|&t| t <= event_us)
            && submitted_total < spec.requests
        {
            arrival_idx += 1;
            submitted_total += 1;
            offered += 1;
            let req = make_request(next_input_seed(), event_us, spec);
            let _ = server.submit(req); // QueueFull is recorded in metrics
        }

        // 3. If the executor is idle, try to dispatch.
        if busy_until.is_none() {
            if let Some(batch) = server.form_batch(false) {
                let solved = server.solve_batch(batch);
                let service = cost.service_us(solved.per_sample_nfe());
                busy_until = Some(event_us + service);
                in_service = Some(solved);
            }
        }
    }

    let metrics = server.snapshot();
    debug_assert!(metrics.reconciles(), "drained run must reconcile exactly");
    let (offered_rps, clients) = match spec.arrivals {
        Arrivals::OpenLoop { rate_rps } => (rate_rps, 0),
        Arrivals::ClosedLoop { clients } => (0.0, clients),
    };
    RunResult {
        batch_window_us: policy.batch_window_us,
        offered_rps,
        clients,
        offered,
        metrics,
        tier_counts,
        makespan_us,
    }
}

/// Sweeps offered load × batch window for one policy: the grid behind
/// `BENCH_serve.json`. Each cell reruns [`simulate`] with the policy's
/// window overridden.
pub fn sweep(
    model: &NodeModel,
    base_opts: &NodeSolveOptions,
    policy: &ServeConfig,
    rates_rps: &[f64],
    windows_us: &[u64],
    spec: &LoadSpec,
    cost: &CostModel,
) -> Vec<RunResult> {
    let mut rows = Vec::with_capacity(rates_rps.len() * windows_us.len());
    for &window in windows_us {
        for &rate in rates_rps {
            let mut p = policy.clone();
            p.batch_window_us = window;
            let run_spec = LoadSpec {
                arrivals: Arrivals::OpenLoop { rate_rps: rate },
                ..*spec
            };
            rows.push(simulate(model, base_opts, &p, &run_spec, cost));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (NodeModel, NodeSolveOptions, ServeConfig, CostModel) {
        let model = NodeModel::dynamic_system(2, 8, 1, 7);
        let opts = NodeSolveOptions::new(1e-4);
        let policy = ServeConfig::edge_default();
        let cost = CostModel {
            per_nfe_us: 2.0,
            dispatch_overhead_us: 150,
            lanes: 4,
        };
        (model, opts, policy, cost)
    }

    #[test]
    fn cost_model_makespan_matches_chunking() {
        let cost = CostModel {
            per_nfe_us: 1.0,
            dispatch_overhead_us: 10,
            lanes: 2,
        };
        // 3 samples over 2 lanes: chunks [0..2] and [2..3].
        assert_eq!(cost.service_us(&[5, 5, 7]), 10 + 10);
        // One lane dominates.
        assert_eq!(cost.service_us(&[100, 1, 1]), 10 + 101);
        // Empty batch is just overhead.
        assert_eq!(cost.service_us(&[]), 10);
    }

    #[test]
    fn open_loop_run_reconciles_and_is_deterministic() {
        let (model, opts, policy, cost) = setup();
        let spec = LoadSpec::open_loop(40, 400.0, 100_000);
        let a = simulate(&model, &opts, &policy, &spec, &cost);
        let b = simulate(&model, &opts, &policy, &spec, &cost);
        assert_eq!(a, b, "same seed must reproduce the run exactly");
        assert!(a.metrics.reconciles());
        assert_eq!(a.offered, 40);
        assert!(a.metrics.completed > 0);
        assert_eq!(
            a.tier_counts.iter().sum::<u64>(),
            a.metrics.completed,
            "every completed request is attributed to a tier"
        );
    }

    #[test]
    fn closed_loop_self_paces() {
        let (model, opts, policy, cost) = setup();
        let spec = LoadSpec::closed_loop(24, 4, 200_000);
        let r = simulate(&model, &opts, &policy, &spec, &cost);
        assert!(r.metrics.reconciles());
        assert_eq!(r.offered, 24);
        // Closed loop never overruns the queue: nothing is rejected.
        assert_eq!(r.metrics.rejected_full, 0);
        assert_eq!(r.metrics.completed + r.metrics.shed, 24);
    }

    #[test]
    fn overload_sheds_or_rejects_instead_of_collapsing() {
        let (model, opts, mut policy, mut cost) = setup();
        policy.queue_capacity = 8;
        // An expensive solve makes the offered load unserviceable.
        cost.per_nfe_us = 200.0;
        // Offer far beyond capacity with tight deadlines.
        let spec = LoadSpec {
            deadline_us: 30_000,
            ..LoadSpec::open_loop(60, 20_000.0, 30_000)
        };
        let r = simulate(&model, &opts, &policy, &spec, &cost);
        assert!(r.metrics.reconciles());
        assert!(
            r.metrics.rejected_full > 0 || r.metrics.shed > 0,
            "overload must be refused explicitly, not absorbed silently"
        );
        // Thin slack forces degraded tiers for whatever does complete.
        assert!(r.metrics.degraded <= r.metrics.completed);
    }

    #[test]
    fn sweep_covers_the_grid() {
        let (model, opts, policy, cost) = setup();
        let spec = LoadSpec::open_loop(12, 300.0, 100_000);
        let rows = sweep(
            &model,
            &opts,
            &policy,
            &[200.0, 800.0],
            &[0, 2_000],
            &spec,
            &cost,
        );
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.metrics.reconciles()));
        assert_eq!(rows[0].batch_window_us, 0);
        assert_eq!(rows[3].offered_rps, 800.0);
    }
}
