//! Workload drivers: train/evaluate a NODE on each of the paper's four
//! benchmarks under a chosen stepsize-search configuration, and collect
//! the algorithm-level counts the figures plot.

use enode_analysis::hwcheck::lint_parallel_split;
use enode_hw::config::WorkloadRun;
use enode_node::inference::{forward_model, NodeSolveOptions};
use enode_node::loss::cross_entropy_logits;
use enode_node::model::NodeModel;
use enode_node::profile::IterationProfile;
use enode_node::train::trainer::Target;
use enode_node::train::Trainer;
use enode_tensor::parallel;
use enode_tensor::Tensor;
use enode_workloads::datasets::{trajectory_accuracy, Dataset};
use enode_workloads::images::SyntheticImages;
use enode_workloads::lotka_volterra::LotkaVolterra;
use enode_workloads::three_body::ThreeBody;

/// The paper's four benchmarks (§VIII).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bench {
    /// Three-Body equations (planar, 12-D state).
    ThreeBody,
    /// Lotka–Volterra equations (2-D state).
    LotkaVolterra,
    /// Synthetic MNIST stand-in (image classification).
    MnistLike,
    /// Synthetic CIFAR-10 stand-in (image classification).
    CifarLike,
}

impl Bench {
    /// All four, in the paper's order.
    pub fn all() -> [Bench; 4] {
        [
            Bench::CifarLike,
            Bench::MnistLike,
            Bench::ThreeBody,
            Bench::LotkaVolterra,
        ]
    }

    /// The two dynamic-system benchmarks (Figs 17/18a).
    pub fn dynamic() -> [Bench; 2] {
        [Bench::ThreeBody, Bench::LotkaVolterra]
    }

    /// Error tolerance ε used by the harnesses. The paper runs ε = 1e-6;
    /// with f32 states the L2 roundoff floor of the image workloads
    /// (≈2·10⁴ elements) sits near 1e-5, so the image benchmarks use 1e-4
    /// and the small-state dynamic systems 1e-5 (relative comparisons are
    /// tolerance-consistent within each figure; see EXPERIMENTS.md).
    pub fn tolerance(self) -> f64 {
        match self {
            Bench::ThreeBody | Bench::LotkaVolterra => 1e-5,
            Bench::MnistLike | Bench::CifarLike => 1e-4,
        }
    }

    /// Training iterations the harnesses budget per benchmark: the cheap
    /// dense-network dynamic systems train long enough to fit; the conv
    /// image workloads get a few iterations (their figures compare
    /// configurations at matched training, not absolute accuracy).
    pub fn default_train_iters(self) -> usize {
        match self {
            Bench::ThreeBody => 20,
            Bench::LotkaVolterra => 30,
            Bench::MnistLike | Bench::CifarLike => 3,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Bench::ThreeBody => "Three-Body",
            Bench::LotkaVolterra => "Lotka-Volterra",
            Bench::MnistLike => "MNIST(syn)",
            Bench::CifarLike => "CIFAR-10(syn)",
        }
    }

    fn build(self, seed: u64) -> (NodeModel, Dataset, Dataset) {
        match self {
            Bench::ThreeBody => {
                let tb = ThreeBody::default();
                let model = NodeModel::dynamic_system(12, 32, 4, seed);
                (
                    model,
                    tb.dataset(8, 1.0, seed),
                    tb.dataset(4, 1.0, seed + 1),
                )
            }
            Bench::LotkaVolterra => {
                let lv = LotkaVolterra::default();
                let model = NodeModel::dynamic_system(2, 16, 4, seed);
                (
                    model,
                    lv.dataset(12, 1.0, seed),
                    lv.dataset(6, 1.0, seed + 1),
                )
            }
            Bench::MnistLike => {
                let task = SyntheticImages::mnist_like(4, seed);
                let model = NodeModel::image_classifier(4, 2, 2, 10, seed);
                (model, task.batch(20, seed + 2), task.batch(20, seed + 3))
            }
            Bench::CifarLike => {
                let task = SyntheticImages::cifar_like(4, seed);
                let model = NodeModel::image_classifier(4, 2, 2, 10, seed);
                (model, task.batch(20, seed + 2), task.batch(20, seed + 3))
            }
        }
    }
}

/// The paper's conventional stepsize search (§II-B): re-initialized from
/// the constant `C` at every evaluation point, fixed 0.5 shrink.
pub fn conventional_opts(bench: Bench) -> NodeSolveOptions {
    use enode_node::inference::ControllerKind;
    NodeSolveOptions::new(bench.tolerance())
        .with_default_dt(0.1)
        .with_controller(ControllerKind::ConventionalConstantInit { shrink: 0.5 })
}

/// eNODE's expedited algorithms (§VII): slope-adaptive search with the
/// given thresholds, plus priority processing when `window` is set.
pub fn expedited_opts(
    bench: Bench,
    s_acc: u32,
    s_rej: u32,
    window: Option<usize>,
) -> NodeSolveOptions {
    use enode_node::inference::ControllerKind;
    let mut opts = NodeSolveOptions::new(bench.tolerance())
        .with_default_dt(0.1)
        .with_controller(ControllerKind::SlopeAdaptive { s_acc, s_rej });
    if let Some(w) = window {
        opts = opts.with_priority(w);
    }
    opts
}

/// The measured outcome of running a benchmark under one configuration.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Mean stepsize-search trials per integration layer (y-axis of
    /// Figs 11/13).
    pub trials_per_layer: f64,
    /// Task accuracy in percent (classification accuracy, or trajectory
    /// accuracy for the dynamic systems).
    pub accuracy: f64,
    /// Profile of the final training iteration.
    pub profile: IterationProfile,
    /// Training workload mapped for the hardware simulators.
    pub train_run: WorkloadRun,
    /// Inference workload mapped for the hardware simulators.
    pub infer_run: WorkloadRun,
}

/// Trains a NODE on `bench` for `train_iters` Adam steps under the given
/// solve options, then evaluates accuracy and collects workload counts.
///
/// # Panics
///
/// Panics if the forward pass fails (stepsize underflow etc.) — the
/// harness configurations are chosen to avoid that.
pub fn run_bench(
    bench: Bench,
    opts: &NodeSolveOptions,
    train_iters: usize,
    seed: u64,
) -> BenchResult {
    let (model, train, test) = bench.build(seed);
    preflight_parallel(bench, train.inputs.shape()[0]);
    let target = match (&train.labels, &train.targets) {
        (Some(l), _) => Target::Labels(l.clone()),
        (_, Some(t)) => Target::State(t.clone()),
        _ => unreachable!("dataset carries labels or targets"),
    };
    let mut trainer = Trainer::new(model, *opts, 0.02);
    let mut last_profile = IterationProfile::default();
    for _ in 0..train_iters {
        let r = trainer
            .step(&train.inputs, &target)
            .expect("training forward pass failed");
        last_profile = r.profile;
    }

    // Evaluate on the held-out set.
    let (output, trace) =
        forward_model(trainer.model(), &test.inputs, opts).expect("eval forward failed");
    let accuracy = match (&test.labels, &test.targets) {
        (Some(labels), _) => {
            let (_, _, acc) = cross_entropy_logits(&output, labels);
            acc as f64 * 100.0
        }
        (_, Some(t)) => trajectory_accuracy(&output, t),
        _ => unreachable!(),
    };

    let infer_run = WorkloadRun::from_trace(&trace);
    let train_run = WorkloadRun::from_profile(&last_profile);
    BenchResult {
        trials_per_layer: trace.trials_per_layer(),
        accuracy,
        profile: last_profile,
        train_run,
        infer_run,
    }
}

/// Evaluates inference only (no training) with a fresh seeded model —
/// used by experiments that compare controllers on identical weights.
pub fn run_inference_only(bench: Bench, opts: &NodeSolveOptions, seed: u64) -> BenchResult {
    let (model, _, test) = bench.build(seed);
    preflight_parallel(bench, test.inputs.shape()[0]);
    let (output, trace) = forward_model(&model, &test.inputs, opts).expect("forward failed");
    let accuracy = match (&test.labels, &test.targets) {
        (Some(labels), _) => {
            let (_, _, acc) = cross_entropy_logits(&output, labels);
            acc as f64 * 100.0
        }
        (_, Some(t)) => trajectory_accuracy(&output, t),
        _ => unreachable!(),
    };
    let infer_run = WorkloadRun::from_trace(&trace);
    BenchResult {
        trials_per_layer: trace.trials_per_layer(),
        accuracy,
        profile: IterationProfile::default(),
        train_run: infer_run,
        infer_run,
    }
}

/// W034 preflight: surface a driver run whose per-batch split cannot use
/// the live pool (see [`enode_analysis::hwcheck::lint_parallel_split`]).
/// Warnings go to stderr so figure output on stdout stays byte-stable.
fn preflight_parallel(bench: Bench, batch: usize) {
    let ds = lint_parallel_split(bench.name(), batch, parallel::current_threads());
    if !ds.is_empty() {
        eprint!("{}", ds.render());
    }
}

/// One unit of driver work for [`run_benches`]: a benchmark plus the
/// configuration to run it under.
#[derive(Clone, Debug)]
pub struct BenchJob {
    /// Which benchmark.
    pub bench: Bench,
    /// Solver/search configuration.
    pub opts: NodeSolveOptions,
    /// Adam steps to train for (0 = inference only on a fresh model).
    pub train_iters: usize,
    /// Seed for model init and datasets.
    pub seed: u64,
}

/// Runs independent bench jobs in parallel across the workspace pool
/// ([`enode_tensor::parallel`]), returning results in job order.
///
/// Each job is one coarse work item; nested kernel parallelism inside a
/// job degrades to serial on its worker, so every job computes exactly
/// what it computes in a serial loop — results are bit-identical for any
/// `ENODE_THREADS`.
pub fn run_benches(jobs: &[BenchJob]) -> Vec<BenchResult> {
    let _kernel = enode_tensor::sanitize::kernel_scope("bench.run_benches");
    parallel::parallel_map(jobs, |job| {
        if job.train_iters == 0 {
            run_inference_only(job.bench, &job.opts, job.seed)
        } else {
            run_bench(job.bench, &job.opts, job.train_iters, job.seed)
        }
    })
}

/// A reference forward state for accuracy-vs-exact comparisons: solves the
/// same model at a much tighter tolerance.
pub fn reference_output(bench: Bench, seed: u64) -> (Tensor, Tensor) {
    let (model, _, test) = bench.build(seed);
    let tight = NodeSolveOptions::new(1e-8).with_default_dt(0.02);
    let (output, _) = forward_model(&model, &test.inputs, &tight).expect("reference failed");
    (test.inputs.clone(), output)
}
