//! Static analysis for the eNODE stack.
//!
//! The crate is built around a small abstract-interpretation framework:
//! [`ir`] lowers a whole pipeline artifact (model, solver schedule, ACA
//! checkpoint plan, hardware mapping) into one typed dataflow program
//! graph, and [`engine`] runs lattice-valued passes over it to a worklist
//! fixpoint. Seven lint families report [`Diagnostic`]s with stable
//! codes:
//!
//! * [`tableau`] — Butcher-tableau consistency (`E001`–`E006`,
//!   `W001`–`W002`): row sums, explicitness, order conditions through
//!   order 4, embedded-pair order, FSAL flags.
//! * [`ddg`] — depth-first DDG schedules (`E010`–`E012`, `W010`): cycle
//!   detection, wave-pipeline edge legality, peak buffer liveness, the
//!   one-row-lag retirement bound.
//! * [`shape`] — embedded-network shapes and FP16 range (`E020`–`E022`,
//!   `W020`): NCHW shape inference and worst-case interval propagation
//!   against `F16::MAX`, run as forward passes on the engine.
//! * [`hwcheck`] — hardware-configuration feasibility (`E030`–`E033`,
//!   `W030`–`W033`): buffer provisioning, weight residency, DRAM and
//!   ring-link bandwidth, layer-to-core mapping.
//! * [`parallelcheck`] — parallel kernel-split decompositions
//!   (`E040`–`E042`, `W040`–`W043`): stride divisibility, scratch
//!   provisioning, reduction order, grain degeneracy, false sharing.
//! * [`precision`] — FP16 range and rounding-error accumulation across
//!   the unrolled solver schedule (`E050`–`E056`, `W050`–`W053`).
//! * [`consistency`] — cross-artifact agreement between the model, the
//!   solver plan, and the hardware configuration (`E060`–`E062`).
//! * [`servecheck`] — serving-policy feasibility (`E070`–`E072`,
//!   `W070`–`W071`): batch-window vs deadline arithmetic, full-queue
//!   starvation, degradation-ladder ordering.
//! * [`affine`] — affine access proofs for kernel splits (`E080`–`E082`,
//!   `W080`): lane write-set disjointness by stride congruence, exact
//!   output coverage by counting, scratch/output aliasing — discharged
//!   symbolically over the whole thread-count × grain envelope.
//! * [`cost`] — static roofline cost model (`W084`–`W085`): predicted
//!   serial-vs-parallel benefit from the proven access footprints,
//!   cross-checked against the committed `BENCH_kernels.json`.
//! * [`schedcheck`] — schedulability & energy-budget analysis
//!   (`E090`–`E096`, `W090`–`W093`): the serving pipeline lowered into
//!   the fixpoint IR, a backward demand pass computing worst-case
//!   response time per tolerance class under the simulator-calibrated
//!   `COST_TABLE.json`, plus per-request energy and sustained-power
//!   budgets and table-provenance checks.
//! * [`synccheck`] — concurrency skeleton proofs (`E100`–`E106`,
//!   `W100`–`W103`): the declared lock/condvar/atomic protocols of the
//!   serving runtime and the worker pool checked for lock-order
//!   acyclicity, lost wakeups, shutdown quiescence and atomic-ordering
//!   discipline, cross-checked at runtime by the `synctrace` tracer.
//! * [`fleetcheck`] — fleet registry & residency proofs (`E110`–`E114`,
//!   `W110`–`W111`): aggregate weight-SRAM residency per instance,
//!   rebalance feasibility under every single-node loss (a forward load
//!   pass on the fixpoint engine), tenant-SLA ladder coverage, and
//!   published-version fingerprint provenance.
//!
//! [`benchjson`] holds the shared line scanner both committed-artifact
//! ingests ([`cost`], [`schedcheck`]) parse with.
//!
//! [`registry`] carries a rustc-style long explanation for every code
//! (`enode-lint --explain CODE`, `docs/LINTS.md`).
//!
//! The `enode-lint` binary runs every family over the paper's shipped
//! tableaux, pipelines and Table I configurations and exits nonzero if
//! any error-severity diagnostic fires.

pub mod affine;
pub mod benchjson;
pub mod consistency;
pub mod cost;
pub mod ddg;
pub mod diag;
pub mod engine;
pub mod fleetcheck;
pub mod hwcheck;
pub mod ir;
pub mod parallelcheck;
pub mod precision;
pub mod registry;
pub mod schedcheck;
pub mod servecheck;
pub mod shape;
pub mod synccheck;
pub mod tableau;

pub use diag::{Code, Diagnostic, Diagnostics, Severity};
pub use ir::PipelineArtifact;

use enode_hw::config::HwConfig;
use enode_node::inference::NodeSolveOptions;
use enode_node::model::NodeModel;

/// The paper's representative pipeline artifacts: each bundles a model
/// with the state shape and worst-case input magnitude it is linted
/// against, its solver plan, and (for the edge-inference workloads) the
/// Table I hardware configuration it is mapped onto.
///
/// `van_der_pol` is the FP16-datapath exemplar: it stores solver state in
/// binary16 at a loose tolerance, exercising the full `E05x` rounding
/// model on an artifact that must stay clean.
pub fn paper_pipelines() -> Vec<PipelineArtifact> {
    vec![
        PipelineArtifact::new(
            "three_body dynamic_system(12, 32, 2)",
            NodeModel::dynamic_system(12, 32, 2, 5),
            vec![1, 12],
            4.0,
            NodeSolveOptions::new(1e-6),
            None,
        ),
        PipelineArtifact::new(
            "lotka_volterra dynamic_system(2, 24, 2)",
            NodeModel::dynamic_system(2, 24, 2, 7),
            vec![1, 2],
            4.0,
            NodeSolveOptions::new(1e-6),
            None,
        ),
        PipelineArtifact::new(
            "van_der_pol dynamic_system(2, 16, 2)",
            NodeModel::dynamic_system(2, 16, 2, 42),
            vec![1, 2],
            4.0,
            NodeSolveOptions::new(1e-2).with_fp16_storage(),
            None,
        ),
        PipelineArtifact::new(
            "edge image_classifier(4 ch, 2 conv)",
            NodeModel::image_classifier(4, 2, 2, 10, 9),
            vec![1, 4, 16, 16],
            1.0,
            NodeSolveOptions::new(1e-6),
            Some(HwConfig::config_a()),
        ),
        PipelineArtifact::new(
            "normed image_classifier(8 ch, 4 conv)",
            NodeModel::image_classifier_normed(8, 4, 2, 10, 4, 11),
            vec![1, 8, 16, 16],
            1.0,
            NodeSolveOptions::new(1e-6),
            Some(HwConfig::config_b()),
        ),
    ]
}

/// Nominal pool width the kernel-split lints model, fixed so the results
/// do not depend on the linting host's core count.
const NOMINAL_POOL: usize = 4;

/// Runs all lint families over everything the repository ships: the
/// tableau catalog, their depth-first DDGs, the paper's pipelines (shape,
/// precision and consistency passes), both Table I hardware
/// configurations, the registered parallel kernel splits, and the
/// shipped serving policies.
///
/// The result is sorted by `(code, artifact, message)` and deduplicated,
/// so the report is byte-identical regardless of pass registration order.
pub fn lint_everything() -> Diagnostics {
    let mut ds = Diagnostics::new();
    ds.extend(tableau::lint_all_tableaux());
    ds.extend(ddg::lint_all_ddgs());
    for artifact in paper_pipelines() {
        for (l, layer) in artifact.model.layers().iter().enumerate() {
            ds.extend(shape::lint_network(
                &format!("{} layer {l}", artifact.name),
                layer,
                &artifact.state_shape,
                artifact.input_bound,
            ));
        }
        ds.extend(precision::lint_precision(&artifact));
        ds.extend(consistency::lint_consistency(&artifact));
    }
    ds.extend(hwcheck::lint_paper_configs());
    ds.extend(parallelcheck::lint_registered_splits(NOMINAL_POOL));
    ds.extend(servecheck::lint_shipped_policies());
    ds.extend(schedcheck::lint_shipped_policies());
    ds.extend(affine::lint_registered_summaries());
    ds.extend(cost::lint_shipped_baseline());
    ds.extend(synccheck::lint_registered());
    ds.extend(fleetcheck::lint_shipped_fleet());
    ds.sort_and_dedup();
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everything_shipped_lints_clean() {
        // Zero errors, and the only warnings are the ones raised *by
        // design* on the committed artifacts: the W085 host-caveat
        // advisories from the 1-core bench baseline (see
        // `cost::lint_shipped_baseline`), the W044 serial-floor
        // records for the kernels the split planner deliberately keeps
        // serial at the registered shapes, and the two concurrency
        // decision records — W100 (metrics' relaxed admission counters)
        // and W102 (the batch window's timeout-bounded wait).
        let ds = lint_everything();
        assert_eq!(
            ds.error_count(),
            0,
            "shipped artifacts must lint error-clean:\n{}",
            ds.render()
        );
        assert!(
            ds.items()
                .iter()
                .all(|d| d.code == Code::W085CostFutileSplit
                    || d.code == Code::W044ParSerialFloorEngaged
                    || d.code == Code::W100SyncRelaxedCounter
                    || d.code == Code::W102SyncTimeoutWakeup),
            "only the by-design W085/W044/W100/W102 advisories may fire on shipped artifacts:\n{}",
            ds.render()
        );
        let floor: Vec<&str> = ds
            .items()
            .iter()
            .filter(|d| d.code == Code::W044ParSerialFloorEngaged)
            .map(|d| d.subject.as_str())
            .collect();
        assert_eq!(
            floor,
            ["dense.forward", "groupnorm.forward"],
            "{}",
            ds.render()
        );
        assert_eq!(ds.warning_count(), 8, "{}", ds.render());
    }

    #[test]
    fn lint_everything_is_sorted() {
        // Even on a clean run this must hold; check with a seeded defect.
        let mut ds = lint_everything();
        ds.push(Diagnostic::new(Code::E001TableauRowSum, "zz", "late"));
        ds.push(Diagnostic::new(Code::E001TableauRowSum, "aa", "early"));
        ds.sort_and_dedup();
        let keys: Vec<_> = ds
            .items()
            .iter()
            .map(|d| (d.code.as_str(), d.subject.clone(), d.message.clone()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }
}
