//! Fig 18(a): energy per inference / per training iteration of the
//! baseline, eNODE without the expedited algorithms, and full eNODE.

use crate::driver::{conventional_opts, expedited_opts, run_bench, Bench};
use crate::report;
use enode_hw::config::HwConfig;
use enode_hw::energy::EnergyModel;
use enode_hw::perf::{simulate_baseline, simulate_enode};

/// Runs the Fig 18(a) energy comparison.
pub fn run() {
    report::banner("Fig 18a", "energy per inference / training iteration");
    let cfg = HwConfig::config_a();
    let energy = EnergyModel::default();
    // Paper reference ratios vs baseline: (inference w/o EA, inference
    // w/ EA, training w/o EA, training w/ EA).
    let paper = [
        ("Three-Body", (2.1, 3.94, 3.12, 5.0)),
        ("Lotka-Volterra", (2.1, 5.0, 3.16, 6.59)),
    ];
    report::header(&[
        "benchmark",
        "mode",
        "baseline J",
        "eNODE J",
        "eNODE+EA J",
        "gains (ours)",
        "gains(paper)",
    ]);
    for (bench, (_, (pi0, pi1, pt0, pt1))) in Bench::dynamic().into_iter().zip(paper) {
        let base = run_bench(
            bench,
            &conventional_opts(bench),
            bench.default_train_iters(),
            61,
        );
        let ea = run_bench(
            bench,
            &expedited_opts(bench, 3, 3, Some(10)),
            bench.default_train_iters(),
            61,
        );
        for (mode, run_base, run_ea, p0, p1) in [
            ("inference", base.infer_run, ea.infer_run, pi0, pi1),
            ("training", base.train_run, ea.train_run, pt0, pt1),
        ] {
            let e_base = simulate_baseline(&cfg, &run_base, &energy).energy_j();
            // eNODE w/o EA: the same conventional-search workload on eNODE.
            let e_en = simulate_enode(&cfg, &run_base, &energy).energy_j();
            // full eNODE: expedited workload on eNODE.
            let e_ea = simulate_enode(&cfg, &run_ea, &energy).energy_j();
            report::row(&[
                bench.name(),
                mode,
                &report::f(e_base),
                &report::f(e_en),
                &report::f(e_ea),
                &format!(
                    "{} / {}",
                    report::ratio(e_base / e_en),
                    report::ratio(e_base / e_ea)
                ),
                &format!("{p0}x / {p1}x"),
            ]);
        }
    }
    println!();
    println!("gains column: baseline / eNODE-without-EA, baseline / full-eNODE");
    println!("paper headline: up to 6.59x lower training energy (Lotka-Volterra)");
}
