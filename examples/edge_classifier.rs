//! Train a convolutional Neural-ODE image classifier (the paper's
//! profiling workload family) on the synthetic CIFAR-10 stand-in, with
//! the expedited algorithms on, and report the priority early-stop
//! savings.
//!
//! ```sh
//! cargo run --release --example edge_classifier
//! ```

use enode::node::train::trainer::Target;
use enode::prelude::*;
use enode::workloads::images::SyntheticImages;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let task = SyntheticImages::cifar_like(4, 1);
    let train = task.batch(20, 2);
    let test = task.batch(20, 3);
    println!(
        "synthetic CIFAR-10 stand-in: {} classes, {}x{}x{} images",
        task.classes, task.channels, task.size, task.size
    );

    // 2 integration layers, 2-conv f, classifier head; slope-adaptive
    // search + priority window H = 8 (half the map).
    let model = NodeModel::image_classifier(4, 2, 2, 10, 9);
    let opts = NodeSolveOptions::new(1e-4)
        .with_controller(ControllerKind::SlopeAdaptive { s_acc: 3, s_rej: 3 })
        .with_priority(8);
    let mut trainer = Trainer::new(model, opts, 0.05);

    let target = Target::Labels(train.labels.clone().unwrap());
    for epoch in 0..6 {
        let r = trainer.step(&train.inputs, &target)?;
        let s = r.profile.forward;
        println!(
            "epoch {epoch}: loss {:.3}, train acc {:.0}%, trials {}, early stops {}, rows {:.0}%",
            r.loss,
            r.accuracy * 100.0,
            s.trials,
            s.early_stops,
            100.0 * s.rows_processed as f64 / s.rows_total.max(1) as f64
        );
    }

    let (loss, acc) =
        trainer.evaluate(&test.inputs, &Target::Labels(test.labels.clone().unwrap()))?;
    println!("held-out: loss {loss:.3}, accuracy {:.0}%", acc * 100.0);
    Ok(())
}
