//! Fig 15(c): area scalability of eNODE vs the ASIC baseline.

use crate::report;
use enode_hw::area::{breakdown, Design};
use enode_hw::config::{HwConfig, LayerDims};

/// Runs the Fig 15(c) layer-size sweep.
pub fn run() {
    report::banner("Fig 15c", "total area vs layer size (mm^2, 28 nm)");
    report::header(&["layer size", "baseline", "eNODE", "saving"]);
    let mut prev: Option<(f64, f64)> = None;
    let mut growth_note = String::new();
    for &s in &[32usize, 64, 128, 256, 512] {
        let cfg = HwConfig::for_layer(LayerDims::new(s, s, 64));
        let base = breakdown(&cfg, Design::Baseline).total_mm2();
        let enode = breakdown(&cfg, Design::Enode).total_mm2();
        report::row(&[
            &format!("{s}x{s}x64"),
            &format!("{base:.2}"),
            &format!("{enode:.2}"),
            &format!("{:.1}%", (1.0 - enode / base) * 100.0),
        ]);
        if let Some((pb, pe)) = prev {
            if s == 512 {
                growth_note = format!(
                    "256->512: baseline grows {:.2}x, eNODE grows {:.2}x",
                    base / pb,
                    enode / pe
                );
            }
        }
        prev = Some((base, enode));
    }
    println!();
    println!("paper: eNODE scales nearly linearly, baseline quadratically");
    println!("ours : {growth_note} (2x edge => 4x pixels)");
}
