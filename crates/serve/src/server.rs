//! The serving runtime: bounded ingress queue, dynamic batcher,
//! deadline-aware degradation, and worker threads.
//!
//! # Lifecycle of a request
//!
//! 1. **Admission** — [`Server::submit`] either enqueues the request and
//!    returns a [`Ticket`], or refuses it with
//!    [`Rejected::QueueFull`] / [`Rejected::ShuttingDown`]. The queue is
//!    strictly bounded; backpressure is the caller's problem, explicitly.
//! 2. **Shedding** — every batch-formation attempt first sheds requests
//!    whose deadline has already passed ([`Rejected::DeadlineExpired`]).
//!    A shed request never reaches the solver.
//! 3. **Batching** — the batcher anchors on the head request (highest
//!    priority, earliest arrival), picks its degradation tier from the
//!    remaining deadline slack, and coalesces queued requests with the
//!    same `(tolerance class, tier)` key up to `max_batch`. An underfull
//!    batch dispatches once the head has waited `batch_window_us`.
//! 4. **Dispatch** — the batch runs through
//!    [`enode_node::eval::forward_model_batched_with`] under the tier's
//!    [`SolveOverride`](enode_node::inference::SolveOverride). Per-sample solves are independent, so a
//!    response's bits depend only on `(input, class, tier)` — never on
//!    who shared the batch. That is the determinism contract the batcher
//!    tests pin down.
//! 5. **Delivery** — each ticket resolves exactly once; metrics record
//!    the outcome (`completed`/`degraded`/`shed`/`failed`/`cancelled`
//!    reconcile exactly with `submitted`).
//!
//! # Two execution modes
//!
//! With `config.workers > 0` the server spawns worker threads that pull
//! batches (the deployment mode; wall or virtual clock). With
//! `config.workers == 0` nothing runs until the owner pumps batches via
//! [`Server::form_batch`] / [`Server::solve_batch`] /
//! [`Server::deliver_batch`] — the discrete-event simulation mode the
//! load generator uses to produce bit-reproducible latency numbers.

use crate::clock::Clock;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::policies::ServeConfig;
use crate::request::{Priority, Rejected, Request, Response, Ticket, TicketInner, ToleranceClass};
use enode_node::eval::forward_model_batched_with;
use enode_node::inference::NodeSolveOptions;
use enode_node::model::NodeModel;
use enode_tensor::syncmodel::trace;
use enode_tensor::Tensor;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// An admitted request waiting in the ingress queue.
struct Pending {
    input: Tensor,
    deadline_us: u64,
    class: ToleranceClass,
    priority: Priority,
    submitted_us: u64,
    ticket: Arc<TicketInner>,
}

struct QueueState {
    queue: VecDeque<Pending>,
    /// Batches formed but not yet delivered.
    in_flight: usize,
    /// `drain()` is waiting: dispatch underfull batches immediately.
    draining: bool,
    /// `shutdown()` ran: no admissions, workers exit when idle.
    closed: bool,
}

struct Core {
    model: NodeModel,
    base_opts: NodeSolveOptions,
    config: ServeConfig,
    clock: Clock,
    metrics: Metrics,
    state: Mutex<QueueState>,
    /// Wakes workers: new work, drain, shutdown.
    work_cv: Condvar,
    /// Wakes `drain()`: queue emptied or a batch delivered.
    idle_cv: Condvar,
    /// Test failpoint: the next `deliver` panics after taking ownership
    /// of the batch, exercising the panic-safe delivery guard.
    #[cfg(test)]
    deliver_panic_once: std::sync::atomic::AtomicBool,
}

/// A batch the batcher formed but has not yet solved. In pump mode the
/// owner holds this across a simulated queueing delay.
pub struct PreparedBatch {
    entries: Vec<Pending>,
    class: ToleranceClass,
    tier: usize,
}

impl PreparedBatch {
    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the batch is empty (never produced by the batcher).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The degradation tier the batch will be served at.
    pub fn tier(&self) -> usize {
        self.tier
    }

    /// The tolerance class shared by every request in the batch.
    pub fn class(&self) -> ToleranceClass {
        self.class
    }
}

/// A solved batch awaiting delivery. Exposes the solver-effort numbers
/// the load generator's cost model converts into simulated service time.
pub struct SolvedBatch {
    entries: Vec<Pending>,
    tier: usize,
    /// Per-sample outputs flattened, or the failure every ticket gets.
    outcome: Result<(Tensor, Vec<u64>), Rejected>,
}

impl SolvedBatch {
    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the batch is empty (never produced by the batcher).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The tier the batch was served at.
    pub fn tier(&self) -> usize {
        self.tier
    }

    /// Function evaluations each sample's solve performed (empty on
    /// failure). Deterministic for a given `(input, class, tier)`.
    pub fn per_sample_nfe(&self) -> &[u64] {
        match &self.outcome {
            Ok((_, nfe)) => nfe,
            Err(_) => &[],
        }
    }
}

/// The deadline-aware batching inference server.
pub struct Server {
    core: Arc<Core>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Builds a server for `model` and spawns `config.workers` worker
    /// threads (zero means pump mode — see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`ServeConfig::validate`].
    pub fn new(
        model: NodeModel,
        base_opts: NodeSolveOptions,
        config: ServeConfig,
        clock: Clock,
    ) -> Self {
        config.validate();
        let worker_count = config.workers;
        let core = Arc::new(Core {
            model,
            base_opts,
            config,
            clock,
            metrics: Metrics::new(),
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                in_flight: 0,
                draining: false,
                closed: false,
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            #[cfg(test)]
            deliver_panic_once: std::sync::atomic::AtomicBool::new(false),
        });
        let workers = (0..worker_count)
            .map(|i| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("enode-serve-{i}"))
                    .spawn(move || worker_loop(&core))
                    .expect("spawn serve worker")
            })
            .collect();
        Server { core, workers }
    }

    /// The server's clock (clone it to drive virtual time from a test).
    pub fn clock(&self) -> &Clock {
        &self.core.clock
    }

    /// The policy the server runs.
    pub fn config(&self) -> &ServeConfig {
        &self.core.config
    }

    /// Live metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.core.metrics
    }

    /// Plain-data metrics snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.core.metrics.snapshot()
    }

    /// Requests currently queued (not yet batched).
    pub fn queue_len(&self) -> usize {
        let st = lock_state(&self.core.state);
        let _t = trace::lock_acquired("server.state");
        st.queue.len()
    }

    /// Submits a request.
    ///
    /// # Errors
    ///
    /// [`Rejected::QueueFull`] when admission control refuses the
    /// request, [`Rejected::ShuttingDown`] after [`Server::shutdown`].
    pub fn submit(&self, request: Request) -> Result<Ticket, Rejected> {
        let core = &self.core;
        let mut st = lock_state(&core.state);
        let _t = trace::lock_acquired("server.state");
        if st.closed {
            return Err(Rejected::ShuttingDown);
        }
        if st.queue.len() >= core.config.queue_capacity {
            // Relaxed: a door-reject participates in no cross-counter
            // invariant (it is excluded from `submitted`).
            core.metrics
                .counters
                .rejected_full
                .fetch_add(1, Ordering::Relaxed);
            return Err(Rejected::QueueFull {
                capacity: core.config.queue_capacity,
            });
        }
        let inner = TicketInner::new();
        st.queue.push_back(Pending {
            input: request.input,
            deadline_us: request.deadline_us,
            class: request.tolerance_class,
            priority: request.priority,
            submitted_us: core.clock.now_us(),
            ticket: Arc::clone(&inner),
        });
        // Relaxed: the state mutex already orders this increment before
        // any dispatch of the same request, which is what the snapshot
        // inequality needs (the resolution side carries the Release).
        core.metrics
            .counters
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        trace::notify_event("server.work_cv");
        core.work_cv.notify_one();
        Ok(Ticket { inner })
    }

    /// Blocks until every admitted request has been resolved, forcing
    /// underfull batches to dispatch immediately (window bypassed). This
    /// is how virtual-clock tests terminate without time ever advancing.
    ///
    /// # Panics
    ///
    /// Panics in pump mode (`workers == 0`) — there is nobody to wait
    /// for; pump with [`Server::form_batch`] instead.
    pub fn drain(&self) {
        let core = &self.core;
        let mut st = lock_state(&core.state);
        let _t = trace::lock_acquired("server.state");
        if st.closed {
            // After shutdown the queue is already swept, in-flight work
            // was delivered before the join loop returned, and the
            // workers (the only idle_cv notifiers) are gone — waiting
            // here would hang forever.
            return;
        }
        assert!(
            !self.workers.is_empty(),
            "drain() needs worker threads; in pump mode call form_batch in a loop"
        );
        st.draining = true;
        trace::notify_event("server.work_cv");
        core.work_cv.notify_all();
        while !(st.queue.is_empty() && st.in_flight == 0) {
            trace::wait_event("server.idle_cv");
            st = core
                .idle_cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        st.draining = false;
    }

    /// Stops admissions, sweeps the queue (each swept ticket resolves to
    /// [`Rejected::ShuttingDown`] and counts as `cancelled`), and joins
    /// the workers. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        let core = &self.core;
        {
            let mut st = lock_state(&core.state);
            let _t = trace::lock_acquired("server.state");
            if !st.closed {
                st.closed = true;
                let swept: Vec<Pending> = st.queue.drain(..).collect();
                // Release: a swept request's resolution must publish its
                // earlier admission to the snapshot inequality.
                core.metrics
                    .counters
                    .cancelled
                    .fetch_add(swept.len() as u64, Ordering::Release);
                for p in swept {
                    p.ticket.fill(Err(Rejected::ShuttingDown));
                }
            }
            trace::notify_event("server.work_cv");
            core.work_cv.notify_all();
            trace::notify_event("server.idle_cv");
            core.idle_cv.notify_all();
        }
        // Join outside the state lock: a worker finishing its in-flight
        // batch must be able to take the lock to deliver, and `let _ =`
        // absorbs a panicked worker's Err so one poisoned thread cannot
        // wedge the remaining joins.
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    // ---- pump mode (discrete-event simulation) -------------------------

    /// Sheds expired requests, then forms a batch if one is ready (full,
    /// window expired at the current clock, or `force`). Returns `None`
    /// when nothing is dispatchable yet.
    pub fn form_batch(&self, force: bool) -> Option<PreparedBatch> {
        let mut st = lock_state(&self.core.state);
        let _t = trace::lock_acquired("server.state");
        self.core.try_form(&mut st, force)
    }

    /// Runs the solver on a formed batch (any thread; the caller controls
    /// when, so a simulation can charge queueing delay first).
    pub fn solve_batch(&self, batch: PreparedBatch) -> SolvedBatch {
        self.core.solve(batch)
    }

    /// Delivers a solved batch at the current clock time: resolves every
    /// ticket and records latency/outcome metrics.
    pub fn deliver_batch(&self, solved: SolvedBatch) {
        self.core.deliver(solved);
    }

    /// The earliest `submitted + batch_window` over queued requests —
    /// the next moment the batcher would dispatch an underfull batch.
    /// `None` when the queue is empty.
    pub fn next_window_expiry_us(&self) -> Option<u64> {
        let st = lock_state(&self.core.state);
        let _t = trace::lock_acquired("server.state");
        st.queue
            .iter()
            .map(|p| p.submitted_us + self.core.config.batch_window_us)
            .min()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn lock_state(state: &Mutex<QueueState>) -> MutexGuard<'_, QueueState> {
    state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Core {
    /// Sheds every queued request whose deadline has passed. Runs under
    /// the state lock at each formation attempt, so no expired request is
    /// ever dispatched.
    fn shed_expired(&self, st: &mut QueueState) {
        let now = self.clock.now_us();
        let mut kept = VecDeque::with_capacity(st.queue.len());
        for p in st.queue.drain(..) {
            if now >= p.deadline_us {
                // Release: a shed resolution must publish the request's
                // earlier admission to the snapshot inequality.
                self.metrics.counters.shed.fetch_add(1, Ordering::Release);
                p.ticket.fill(Err(Rejected::DeadlineExpired {
                    deadline_us: p.deadline_us,
                    now_us: now,
                }));
            } else {
                kept.push_back(p);
            }
        }
        st.queue = kept;
        if st.queue.is_empty() {
            trace::notify_event("server.idle_cv");
            self.idle_cv.notify_all();
        }
    }

    /// The queue position the batcher anchors on: highest priority first,
    /// earliest arrival within a priority.
    fn head_index(queue: &VecDeque<Pending>) -> Option<usize> {
        queue
            .iter()
            .position(|p| p.priority == Priority::High)
            .or(if queue.is_empty() { None } else { Some(0) })
    }

    /// Sheds, then forms one batch if dispatchable. Increments
    /// `in_flight` on success.
    fn try_form(&self, st: &mut QueueState, force: bool) -> Option<PreparedBatch> {
        self.shed_expired(st);
        let head = Self::head_index(&st.queue)?;
        let now = self.clock.now_us();
        let head_req = &st.queue[head];
        let class = head_req.class;
        let tier = self
            .config
            .tier_for_slack(head_req.deadline_us.saturating_sub(now));
        let window_open = now
            < head_req
                .submitted_us
                .saturating_add(self.config.batch_window_us);
        // Candidate order: the head, then every compatible request in
        // priority-then-arrival order.
        let mut picks: Vec<usize> = Vec::with_capacity(self.config.max_batch);
        picks.push(head);
        for pri in [Priority::High, Priority::Normal] {
            for (i, p) in st.queue.iter().enumerate() {
                if picks.len() >= self.config.max_batch {
                    break;
                }
                if i == head || p.priority != pri || p.class != class {
                    continue;
                }
                if self
                    .config
                    .tier_for_slack(p.deadline_us.saturating_sub(now))
                    != tier
                {
                    continue;
                }
                picks.push(i);
            }
        }
        let full = picks.len() >= self.config.max_batch;
        if !(full || !window_open || force || st.draining || st.closed) {
            return None;
        }
        picks.sort_unstable();
        let mut entries = Vec::with_capacity(picks.len());
        for &i in picks.iter().rev() {
            entries.push(st.queue.remove(i).expect("picked index in range"));
        }
        entries.reverse();
        st.in_flight += 1;
        Some(PreparedBatch {
            entries,
            class,
            tier,
        })
    }

    /// Runs the solver on a formed batch, catching panics so a poisoned
    /// request cannot take the worker (or the queue) down with it.
    fn solve(&self, batch: PreparedBatch) -> SolvedBatch {
        let PreparedBatch {
            entries,
            class,
            tier,
        } = batch;
        let n = entries.len();
        // Relaxed: the batch count participates in no cross-counter
        // invariant; it is only read for mean batch size at quiescence.
        self.metrics
            .counters
            .batches
            .fetch_add(1, Ordering::Relaxed);
        self.metrics.batch_size.record(n as u64);
        let ovr = self.config.tiers[tier].solve_override(class);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut shape = entries[0].input.shape().to_vec();
            shape[0] = n;
            let mut data = Vec::new();
            for p in &entries {
                data.extend_from_slice(p.input.data());
            }
            let inputs = Tensor::from_vec(data, &shape);
            forward_model_batched_with(&self.model, &inputs, &self.base_opts, ovr)
        }));
        let outcome = match result {
            Ok(Ok((outputs, traces))) => {
                let nfe = traces.iter().map(|t| t.total_stats().nfe as u64).collect();
                Ok((outputs, nfe))
            }
            Ok(Err(e)) => Err(Rejected::SolveFailed(e)),
            Err(_) => Err(Rejected::WorkerPanic),
        };
        SolvedBatch {
            entries,
            tier,
            outcome,
        }
    }

    /// Resolves every ticket of a solved batch at the current clock time
    /// and records the outcome metrics.
    ///
    /// Panic-safe: ticket fills, the `in_flight` decrement, and the
    /// condvar notifies are owned by a drop guard, so a panic anywhere in
    /// delivery (or the test failpoint) resolves every still-pending
    /// ticket to [`Rejected::WorkerPanic`] instead of stranding
    /// [`Server::drain`] and the shutdown join loop.
    fn deliver(&self, solved: SolvedBatch) {
        let SolvedBatch {
            entries,
            tier,
            outcome,
        } = solved;
        let now = self.clock.now_us();
        let n = entries.len();
        let mut guard = DeliverGuard {
            core: self,
            remaining: entries.into(),
        };
        #[cfg(test)]
        if self.deliver_panic_once.swap(false, Ordering::SeqCst) {
            panic!("injected deliver panic (test failpoint)");
        }
        match outcome {
            Ok((outputs, _nfe)) => {
                let sample_len = outputs.len() / n;
                let mut sample_shape = outputs.shape().to_vec();
                sample_shape[0] = 1;
                for i in 0..n {
                    // Defensively re-slice before popping the entry: a
                    // malformed solver output resolves the tail of the
                    // batch as failed (via the guard) instead of
                    // panicking with tickets in limbo.
                    let Some(row_data) = outputs.data().get(i * sample_len..(i + 1) * sample_len)
                    else {
                        break;
                    };
                    let Some(p) = guard.remaining.pop_front() else {
                        break;
                    };
                    let row = Tensor::from_vec(row_data.to_vec(), &sample_shape);
                    let latency = now.saturating_sub(p.submitted_us);
                    self.metrics.latency_us.record(latency);
                    // Release, completed before degraded: the snapshot
                    // reads degraded first, so `degraded <= completed`
                    // holds in every snapshot (see metrics.rs).
                    self.metrics
                        .counters
                        .completed
                        .fetch_add(1, Ordering::Release);
                    if tier > 0 {
                        self.metrics
                            .counters
                            .degraded
                            .fetch_add(1, Ordering::Release);
                    }
                    p.ticket.fill(Ok(Response {
                        output: row,
                        tier,
                        batch_size: n,
                        submitted_us: p.submitted_us,
                        completed_us: now,
                    }));
                }
            }
            Err(reason) => {
                // Release: failure resolutions publish their admissions.
                self.metrics
                    .counters
                    .failed
                    .fetch_add(n as u64, Ordering::Release);
                while let Some(p) = guard.remaining.pop_front() {
                    p.ticket.fill(Err(reason.clone()));
                }
            }
        }
        // Guard drops here: fails any leftover entries, decrements
        // `in_flight`, and notifies both condvars exactly once.
    }
}

/// Drop guard that finishes a delivery no matter how it exits.
struct DeliverGuard<'a> {
    core: &'a Core,
    remaining: VecDeque<Pending>,
}

impl Drop for DeliverGuard<'_> {
    fn drop(&mut self) {
        let leftover = self.remaining.len() as u64;
        if leftover > 0 {
            // Release: these resolutions publish their admissions.
            self.core
                .metrics
                .counters
                .failed
                .fetch_add(leftover, Ordering::Release);
            for p in self.remaining.drain(..) {
                p.ticket.fill(Err(Rejected::WorkerPanic));
            }
        }
        let mut st = lock_state(&self.core.state);
        let _t = trace::lock_acquired("server.state");
        st.in_flight -= 1;
        trace::notify_event("server.idle_cv");
        self.core.idle_cv.notify_all();
        trace::notify_event("server.work_cv");
        self.core.work_cv.notify_all();
    }
}

/// The worker thread body: pull a batch (respecting the batch window),
/// solve, deliver, repeat until shutdown.
fn worker_loop(core: &Core) {
    loop {
        let batch = {
            let mut st = lock_state(&core.state);
            let _t = trace::lock_acquired("server.state");
            loop {
                if let Some(b) = core.try_form(&mut st, false) {
                    break Some(b);
                }
                if st.closed {
                    break None;
                }
                if core.clock.is_virtual() || st.queue.is_empty() {
                    // Virtual time only moves when the owner moves it, and
                    // the owner notifies via submit/drain/shutdown — a
                    // timeout would spin without making progress.
                    trace::wait_event("server.work_cv");
                    st = core
                        .work_cv
                        .wait(st)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                } else {
                    // Wall clock with an open window: sleep until the
                    // head's window (or next deadline) can change the
                    // formation decision.
                    let now = core.clock.now_us();
                    let window_end = st
                        .queue
                        .iter()
                        .map(|p| p.submitted_us + core.config.batch_window_us)
                        .chain(st.queue.iter().map(|p| p.deadline_us))
                        .min()
                        .unwrap_or(now);
                    let wait_us = window_end.saturating_sub(now).max(100);
                    trace::wait_event("server.work_cv");
                    let (guard, _) = core
                        .work_cv
                        .wait_timeout(st, Duration::from_micros(wait_us))
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    st = guard;
                }
            }
        };
        match batch {
            Some(b) => {
                // A panic anywhere in solve/deliver must not kill the
                // worker: the delivery guard has already resolved the
                // batch's tickets and `in_flight`, so the loop can keep
                // serving subsequent requests.
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    let solved = core.solve(b);
                    core.deliver(solved);
                }));
            }
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;
    use enode_tensor::init;

    fn tiny_model() -> NodeModel {
        NodeModel::dynamic_system(2, 8, 1, 7)
    }

    fn req(seed: u64, deadline_us: u64) -> Request {
        Request {
            input: init::uniform(&[1, 2], -1.0, 1.0, seed),
            deadline_us,
            tolerance_class: ToleranceClass::Standard,
            priority: Priority::Normal,
        }
    }

    fn test_server(workers: usize, clock: Clock) -> Server {
        let mut cfg = ServeConfig::edge_default();
        cfg.workers = workers;
        Server::new(tiny_model(), NodeSolveOptions::new(1e-4), cfg, clock)
    }

    #[test]
    fn submit_drain_completes_every_request() {
        let clock = Clock::virtual_at(0);
        let server = test_server(2, clock);
        let tickets: Vec<Ticket> = (0..6)
            .map(|i| server.submit(req(i, 1_000_000)).unwrap())
            .collect();
        server.drain();
        for t in tickets {
            let resp = t.wait().expect("completed");
            assert_eq!(resp.tier, 0, "ample slack serves at full quality");
            assert_eq!(resp.output.shape(), &[1, 2]);
        }
        let s = server.snapshot();
        assert_eq!(s.submitted, 6);
        assert_eq!(s.completed, 6);
        assert_eq!(s.degraded, 0);
        assert!(s.reconciles());
    }

    #[test]
    fn queue_full_is_an_explicit_rejection() {
        let clock = Clock::virtual_at(0);
        let mut cfg = ServeConfig::edge_default();
        cfg.queue_capacity = 2;
        cfg.workers = 0; // pump mode: nothing dequeues behind our back
        let server = Server::new(tiny_model(), NodeSolveOptions::new(1e-4), cfg, clock);
        let _t0 = server.submit(req(0, 1_000_000)).unwrap();
        let _t1 = server.submit(req(1, 1_000_000)).unwrap();
        match server.submit(req(2, 1_000_000)) {
            Err(Rejected::QueueFull { capacity }) => assert_eq!(capacity, 2),
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(server.snapshot().rejected_full, 1);
        assert_eq!(server.snapshot().submitted, 2);
    }

    #[test]
    fn pump_mode_forms_solves_delivers() {
        let clock = Clock::virtual_at(0);
        let server = test_server(0, clock.clone());
        let t = server.submit(req(3, 500_000)).unwrap();
        // Window still open and batch underfull: not dispatchable.
        assert!(server.form_batch(false).is_none());
        assert_eq!(server.next_window_expiry_us(), Some(2_000));
        clock.set_us(2_000);
        let batch = server.form_batch(false).expect("window expired");
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.tier(), 0);
        let solved = server.solve_batch(batch);
        assert!(!solved.per_sample_nfe().is_empty());
        clock.set_us(5_000);
        server.deliver_batch(solved);
        let resp = t.wait().unwrap();
        assert_eq!(resp.submitted_us, 0);
        assert_eq!(resp.completed_us, 5_000);
        assert_eq!(resp.latency_us(), 5_000);
    }

    #[test]
    fn batches_split_by_tolerance_class() {
        let clock = Clock::virtual_at(0);
        let server = test_server(0, clock);
        let _a = server.submit(req(0, 1_000_000)).unwrap();
        let mut strict = req(1, 1_000_000);
        strict.tolerance_class = ToleranceClass::Strict;
        let _b = server.submit(strict).unwrap();
        let _c = server.submit(req(2, 1_000_000)).unwrap();
        let batch = server.form_batch(true).expect("forced");
        assert_eq!(batch.len(), 2, "strict request must not share the batch");
        assert_eq!(batch.class(), ToleranceClass::Standard);
    }

    #[test]
    fn high_priority_anchors_the_batch() {
        let clock = Clock::virtual_at(0);
        let server = test_server(0, clock);
        let _a = server.submit(req(0, 1_000_000)).unwrap();
        let mut hi = req(1, 1_000_000);
        hi.priority = Priority::High;
        hi.tolerance_class = ToleranceClass::Relaxed;
        let _b = server.submit(hi).unwrap();
        let batch = server.form_batch(true).expect("forced");
        assert_eq!(
            batch.class(),
            ToleranceClass::Relaxed,
            "head is the High request"
        );
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn shutdown_sweeps_queue_and_refuses_new_work() {
        let clock = Clock::virtual_at(0);
        let mut server = test_server(0, clock);
        let t = server.submit(req(0, 1_000_000)).unwrap();
        server.shutdown();
        assert_eq!(t.wait(), Err(Rejected::ShuttingDown));
        assert_eq!(server.snapshot().cancelled, 1);
        assert!(matches!(
            server.submit(req(1, 1_000_000)),
            Err(Rejected::ShuttingDown)
        ));
        assert!(server.snapshot().reconciles());
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let clock = Clock::virtual_at(0);
        let mut server = test_server(2, clock);
        let t = server.submit(req(0, 1_000_000)).unwrap();
        server.shutdown();
        server.shutdown(); // second call must not hang on the join loop
        assert_eq!(t.wait(), Err(Rejected::ShuttingDown));
        assert!(server.snapshot().reconciles());
        drop(server); // Drop runs shutdown() a third time
    }

    #[test]
    fn drain_after_shutdown_returns_immediately() {
        let clock = Clock::virtual_at(0);
        let mut server = test_server(2, clock);
        server.shutdown();
        // The workers (the only idle_cv notifiers) are joined; drain must
        // notice `closed` and return instead of parking forever.
        server.drain();
        assert!(server.snapshot().reconciles());
    }

    #[test]
    fn worker_panic_mid_delivery_resolves_tickets_and_keeps_serving() {
        let clock = Clock::virtual_at(0);
        let mut server = test_server(1, clock);
        server.core.deliver_panic_once.store(true, Ordering::SeqCst);
        let t = server.submit(req(0, 1_000_000)).unwrap();
        // Must not deadlock: the delivery guard decrements in_flight and
        // wakes drain() even though the delivery panicked.
        server.drain();
        assert_eq!(t.wait(), Err(Rejected::WorkerPanic));
        let s = server.snapshot();
        assert_eq!(s.failed, 1);
        assert!(s.reconciles());
        // The worker survived the panic and still serves.
        let t2 = server.submit(req(1, 1_000_000)).unwrap();
        server.drain();
        assert!(t2.wait().is_ok());
        assert!(server.snapshot().reconciles());
        server.shutdown();
    }

    #[test]
    fn pump_mode_delivery_panic_still_resolves_tickets() {
        let clock = Clock::virtual_at(0);
        let server = test_server(0, clock);
        server.core.deliver_panic_once.store(true, Ordering::SeqCst);
        let t = server.submit(req(0, 1_000_000)).unwrap();
        let solved = server.solve_batch(server.form_batch(true).unwrap());
        // Pump mode has no worker catch_unwind around delivery, so the
        // injected panic reaches the caller; the guard must still have
        // resolved the ticket and released in_flight on the way out.
        let unwound = catch_unwind(AssertUnwindSafe(|| server.deliver_batch(solved)));
        assert!(unwound.is_err(), "failpoint panic propagates in pump mode");
        assert_eq!(t.wait(), Err(Rejected::WorkerPanic));
        let s = server.snapshot();
        assert_eq!(s.failed, 1);
        assert!(s.reconciles());
        // in_flight was released: a fresh request pumps normally.
        let t2 = server.submit(req(1, 1_000_000)).unwrap();
        server.deliver_batch(server.solve_batch(server.form_batch(true).unwrap()));
        assert!(t2.wait().is_ok());
    }

    #[test]
    fn max_batch_bounds_coalescing() {
        let clock = Clock::virtual_at(0);
        let mut cfg = ServeConfig::edge_default();
        cfg.workers = 0;
        cfg.max_batch = 3;
        let server = Server::new(tiny_model(), NodeSolveOptions::new(1e-4), cfg, clock);
        for i in 0..5 {
            server.submit(req(i, 1_000_000)).unwrap();
        }
        let b1 = server.form_batch(false).expect("full batch dispatches");
        assert_eq!(b1.len(), 3);
        assert!(
            server.form_batch(false).is_none(),
            "remainder waits out its window"
        );
        let b2 = server.form_batch(true).expect("forced remainder");
        assert_eq!(b2.len(), 2);
        server.deliver_batch(server.solve_batch(b1));
        server.deliver_batch(server.solve_batch(b2));
        let s = server.snapshot();
        assert_eq!(s.batches, 2);
        assert!((s.mean_batch - 2.5).abs() < 1e-9);
    }
}
