//! Cross-artifact consistency lints.
//!
//! Codes: `E060`–`E062`.
//!
//! Each check relates two artifacts that the single-family lints see in
//! isolation:
//!
//! * **`E060`** — the layer→core mapping (`enode-hw`) is only valid when
//!   the weights it assumes resident actually fit the weight buffer, in
//!   total and per core. The per-layer footprints come from the model
//!   itself, not from the `HwConfig`'s nominal layer dims.
//! * **`E061`** — the ACA checkpoint plan (`enode-node`) must fit the
//!   on-chip training buffer: live checkpoints plus the per-interval
//!   replay caches. Which caches are live is computed by a *backward*
//!   demand pass on the fixpoint engine: a value is demanded iff an
//!   adjoint replay (or anything feeding one) consumes it.
//! * **`E062`** — the stepsize-controller bounds (`enode-node`) must be
//!   satisfiable against the solver schedule: `dt_min` below the nominal
//!   stepsize, shrink factor inside `(0, 1)`, and the rejection-trial
//!   budget sufficient to walk from `default_dt` down to `dt_min`.

use crate::diag::{Code, Diagnostic, Diagnostics};
use crate::engine::{run_to_fixpoint, Direction, Lattice, Pass};
use crate::ir::{
    lower_pipeline, op_cache_bytes_fp16, op_weight_bytes_fp16, NodeKind, PipelineArtifact,
    ProgramGraph,
};
use enode_hw::mapping::per_core_weight_bytes;
use enode_node::inference::ControllerKind;
use enode_tensor::network::Op;

/// Demand fact: is this node's value consumed (transitively) by an
/// adjoint replay?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Demand(bool);

impl Lattice for Demand {
    fn bottom() -> Self {
        Demand(false)
    }
    fn join_from(&mut self, other: &Self) -> bool {
        if other.0 && !self.0 {
            self.0 = true;
            return true;
        }
        false
    }
}

/// Backward pass: adjoint replays originate demand; every producer a
/// demanded node reads from becomes demanded in turn.
struct DemandPass;

impl Pass<ProgramGraph> for DemandPass {
    type Value = Demand;
    fn direction(&self) -> Direction {
        Direction::Backward
    }
    fn transfer(&self, graph: &ProgramGraph, node: usize, deps: &[Demand]) -> Demand {
        if matches!(graph.node(node).kind, NodeKind::AdjointReplay { .. }) {
            return Demand(true);
        }
        Demand(deps.iter().any(|d| d.0))
    }
}

/// Runs the cross-artifact consistency checks on one pipeline artifact.
pub fn lint_consistency(artifact: &PipelineArtifact) -> Diagnostics {
    let mut ds = Diagnostics::new();
    let subject = artifact.name.as_str();
    let solver = &artifact.solver;
    let lowered = lower_pipeline(artifact);
    let tableau = &lowered.tableau;

    // --- E062: controller bounds vs the solver schedule ---
    if solver.dt_min >= solver.default_dt {
        ds.push(
            Diagnostic::new(
                Code::E062XArtControllerBounds,
                subject,
                format!(
                    "dt_min {:.1e} is not below the nominal stepsize {:.1e}",
                    solver.dt_min, solver.default_dt
                ),
            )
            .with_note("dt_min", format!("{:.1e}", solver.dt_min))
            .with_note("default_dt", format!("{:.1e}", solver.default_dt)),
        );
    }
    // Worst-case per-rejection shrink factor of the configured controller
    // (the classic controller clamps its rescale at 0.2; the slope
    // controller's shrink depends on runtime history, so it is skipped).
    let shrink = match solver.controller {
        ControllerKind::Conventional { shrink }
        | ControllerKind::ConventionalConstantInit { shrink } => {
            if !(shrink > 0.0 && shrink < 1.0) {
                ds.push(
                    Diagnostic::new(
                        Code::E062XArtControllerBounds,
                        subject,
                        format!("controller shrink factor {shrink} is outside (0, 1)"),
                    )
                    .with_note("shrink", shrink),
                );
                None
            } else {
                Some(shrink)
            }
        }
        ControllerKind::Classic => Some(0.2),
        ControllerKind::SlopeAdaptive { .. } => None,
    };
    if let Some(shrink) = shrink {
        if solver.dt_min < solver.default_dt {
            // Trials to walk default_dt down to dt_min by repeated shrink;
            // the search must be able to reach its own lower bound.
            let trials = ((solver.dt_min / solver.default_dt).ln() / shrink.ln()).ceil() as usize;
            if trials > solver.max_trials_per_point {
                ds.push(
                    Diagnostic::new(
                        Code::E062XArtControllerBounds,
                        subject,
                        format!(
                            "{trials} shrink trials to reach dt_min {:.1e} from {:.1e} exceed \
                             max_trials_per_point {}",
                            solver.dt_min, solver.default_dt, solver.max_trials_per_point
                        ),
                    )
                    .with_note("trials_needed", trials)
                    .with_note("max_trials_per_point", solver.max_trials_per_point)
                    .with_note("shrink", shrink)
                    .with_note("tableau_order", tableau.order())
                    .with_note("error_order", tableau.error_order()),
                );
            }
        }
    }

    let Some(cfg) = &artifact.hw else {
        return ds;
    };

    // --- E060: mapping residency vs actual layer weight footprints ---
    for (layer, net) in artifact.model.layers().iter().enumerate() {
        let total: u64 = net.ops().iter().map(op_weight_bytes_fp16).sum();
        if total > cfg.weight_buffer_bytes {
            ds.push(
                Diagnostic::new(
                    Code::E060XArtMapResidency,
                    subject,
                    format!(
                        "layer {layer} weights ({total} B fp16) exceed the {} B weight buffer",
                        cfg.weight_buffer_bytes
                    ),
                )
                .with_note("layer", layer)
                .with_note("weight_bytes", total)
                .with_note("weight_buffer_bytes", cfg.weight_buffer_bytes),
            );
            continue;
        }
        // Per-core share under the round-robin placement.
        let compute_bytes: Vec<u64> = net
            .ops()
            .iter()
            .filter(|op| matches!(op, Op::Conv2d(_) | Op::Dense(_)))
            .map(op_weight_bytes_fp16)
            .collect();
        if compute_bytes.is_empty() || cfg.cores == 0 {
            continue;
        }
        let share = cfg.weight_buffer_bytes / cfg.cores as u64;
        let per_core = per_core_weight_bytes(&compute_bytes, cfg.cores);
        if let Some((core, &bytes)) = per_core
            .iter()
            .enumerate()
            .max_by_key(|&(_, &b)| b)
            .filter(|&(_, &b)| b > share)
        {
            ds.push(
                Diagnostic::new(
                    Code::E060XArtMapResidency,
                    subject,
                    format!(
                        "core {core} hosts {bytes} B of layer {layer} weights, above the \
                         {share} B per-core share of the weight buffer"
                    ),
                )
                .with_note("layer", layer)
                .with_note("core", core)
                .with_note("core_bytes", bytes)
                .with_note("per_core_share", share),
            );
        }
    }

    // --- E061: ACA checkpoint plan vs the training buffer ---
    let fx = run_to_fixpoint(&lowered.graph, &DemandPass);
    let stride = solver.checkpoint_stride.max(1);
    let state_elems: usize = artifact.state_shape.iter().product();
    let state_bytes = 2 * state_elems as u64;
    for (layer, net) in artifact.model.layers().iter().enumerate() {
        let Some(shapes) = &lowered.op_shapes[layer] else {
            continue;
        };
        // Caches one replayed step needs: every op whose step-0 value the
        // demand pass marked (ConcatTime caches nothing), once per stage.
        let mut per_step_cache = 0u64;
        for (id, node) in lowered.graph.nodes().iter().enumerate() {
            if let NodeKind::NetOp {
                layer: l,
                step: 0,
                stage: 0,
                op_index,
            } = node.kind
            {
                if l == layer && fx.values[id].0 {
                    per_step_cache += op_cache_bytes_fp16(&net.ops()[op_index], &shapes[op_index]);
                }
            }
        }
        per_step_cache *= tableau.stages() as u64;
        let checkpoints = lowered.n_steps.div_ceil(stride) as u64;
        let working_set = checkpoints * state_bytes + stride as u64 * per_step_cache;
        if working_set > cfg.training_buffer_bytes {
            ds.push(
                Diagnostic::new(
                    Code::E061XArtAcaBuffer,
                    subject,
                    format!(
                        "ACA working set {working_set} B for layer {layer} exceeds the {} B \
                         training buffer",
                        cfg.training_buffer_bytes
                    ),
                )
                .with_note("layer", layer)
                .with_note("checkpoint_bytes", checkpoints * state_bytes)
                .with_note("replay_cache_bytes", stride as u64 * per_step_cache)
                .with_note("checkpoint_stride", stride)
                .with_note("stages", tableau.stages())
                .with_note("training_buffer_bytes", cfg.training_buffer_bytes),
            );
        }
    }

    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use enode_hw::config::HwConfig;
    use enode_node::inference::NodeSolveOptions;
    use enode_node::model::NodeModel;

    fn image_artifact(cfg: HwConfig) -> PipelineArtifact {
        PipelineArtifact::new(
            "edge",
            NodeModel::image_classifier(4, 2, 2, 10, 9),
            vec![1, 4, 16, 16],
            1.0,
            NodeSolveOptions::new(1e-6),
            Some(cfg),
        )
    }

    #[test]
    fn shipped_style_mapped_artifact_is_clean() {
        let ds = lint_consistency(&image_artifact(HwConfig::config_a()));
        assert!(ds.is_empty(), "{}", ds.render());
    }

    #[test]
    fn demand_pass_marks_exactly_the_replay_cone() {
        let a = image_artifact(HwConfig::config_a());
        let lowered = lower_pipeline(&a);
        let fx = run_to_fixpoint(&lowered.graph, &DemandPass);
        for (id, node) in lowered.graph.nodes().iter().enumerate() {
            match node.kind {
                // Everything upstream of a replay is demanded; placement
                // nodes feed nothing and must stay undemanded.
                NodeKind::NetOp { .. } | NodeKind::Checkpoint { .. } => {
                    assert!(fx.values[id].0, "node {id} should be demanded");
                }
                NodeKind::MapLayer { .. } => {
                    assert!(!fx.values[id].0, "placement node {id} demanded");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn undersized_weight_buffer_fires_e060() {
        let mut cfg = HwConfig::config_a();
        cfg.weight_buffer_bytes = 512;
        let ds = lint_consistency(&image_artifact(cfg));
        assert!(ds.has_code(Code::E060XArtMapResidency), "{}", ds.render());
    }

    #[test]
    fn undersized_training_buffer_fires_e061() {
        let mut cfg = HwConfig::config_a();
        cfg.training_buffer_bytes = 1024;
        let ds = lint_consistency(&image_artifact(cfg));
        assert!(ds.has_code(Code::E061XArtAcaBuffer), "{}", ds.render());
    }

    #[test]
    fn inverted_stepsize_bounds_fire_e062() {
        let mut a = image_artifact(HwConfig::config_a());
        a.solver.dt_min = 0.5; // >= default_dt 0.1
        let ds = lint_consistency(&a);
        assert!(
            ds.has_code(Code::E062XArtControllerBounds),
            "{}",
            ds.render()
        );
    }

    #[test]
    fn insufficient_trial_budget_fires_e062() {
        let mut a = image_artifact(HwConfig::config_a());
        a.solver.max_trials_per_point = 4; // 0.1 -> 1e-10 needs ~30 halvings
        let ds = lint_consistency(&a);
        assert!(
            ds.has_code(Code::E062XArtControllerBounds),
            "{}",
            ds.render()
        );
    }
}
