//! The analysis IR: one typed dataflow program graph per pipeline
//! artifact.
//!
//! [`lower_pipeline`] expands a whole pipeline — the embedded network of
//! every integration layer, the RK stage schedule of the chosen Butcher
//! tableau unrolled over the nominal accepted steps, the ACA checkpoint
//! plan, and (when a hardware configuration is attached) the layer-to-core
//! mapping — into a single [`ProgramGraph`] that the fixpoint engine
//! ([`crate::engine`]) runs passes over. The same op-level transfer
//! helpers back the single-network lowering ([`network_chain`]) that the
//! ported `E02x` shape/range lints use, so every pass family shares one
//! model of what each op does to shapes, magnitudes, and errors.
//!
//! # Predecessor conventions
//!
//! Transfer functions see `deps` in this order:
//!
//! * [`NodeKind::StateInput`] — `[]` for layer 0 (boundary), otherwise
//!   `[final state of the previous layer]`.
//! * [`NodeKind::StageInput`] for stage `i` — `[y, k_0, …, k_{i-1}]`,
//!   combined with the tableau row `a[i]` (stage 0 passes `y` through).
//! * [`NodeKind::NetOp`] — `[input]` (the stage input or the previous op).
//! * [`NodeKind::Solution`] — `[y, k_0, …, k_{s-1}]`, weights `b`.
//! * [`NodeKind::ErrorEstimate`] — `[k_0, …, k_{s-1}]`, error weights `d`.
//! * [`NodeKind::Checkpoint`] — `[state at the interval start]`.
//! * [`NodeKind::AdjointReplay`] — `[checkpoint, state at interval end]`.
//! * [`NodeKind::MapLayer`] — `[step-0 stage-0 op output]` (structural:
//!   ties the mapping to the computation it hosts; has no users).

use crate::engine::DataflowGraph;
use enode_hw::config::HwConfig;
use enode_hw::mapping::map_layers;
use enode_node::inference::NodeSolveOptions;
use enode_node::model::NodeModel;
use enode_ode::tableau::ButcherTableau;
use enode_tensor::activation::Activation;
use enode_tensor::network::Op;

/// Magnitude bound assumed for the ODE time `t` appended by `ConcatTime`
/// (the paper integrates over `t ∈ [0, 1]`).
pub(crate) const TIME_BOUND: f64 = 1.0;

/// Cap on the unrolled accepted-step count: the schedule is expanded at
/// the controller's nominal stepsize (`span / default_dt` steps); deeper
/// unrolls add no new range behaviour for saturating fields but would
/// bloat the graph.
const MAX_UNROLLED_STEPS: usize = 32;

/// Everything the analysis knows about one runnable pipeline: the model,
/// the state it integrates, the solver plan, and (optionally) the
/// hardware configuration it is mapped onto.
#[derive(Clone, Debug)]
pub struct PipelineArtifact {
    /// Display name used as the diagnostic subject.
    pub name: String,
    /// The NODE model (embedded networks + head).
    pub model: NodeModel,
    /// NCHW (or NC) state shape fed to the first integration layer.
    pub state_shape: Vec<usize>,
    /// Largest absolute state magnitude expected at the model input.
    pub input_bound: f64,
    /// The solver plan: tableau, controller, tolerance, checkpoint stride.
    pub solver: NodeSolveOptions,
    /// Hardware configuration the pipeline is mapped onto, if any.
    pub hw: Option<HwConfig>,
}

impl PipelineArtifact {
    /// Bundles a pipeline artifact for analysis.
    pub fn new(
        name: impl Into<String>,
        model: NodeModel,
        state_shape: Vec<usize>,
        input_bound: f64,
        solver: NodeSolveOptions,
        hw: Option<HwConfig>,
    ) -> Self {
        PipelineArtifact {
            name: name.into(),
            model,
            state_shape,
            input_bound,
            solver,
            hw,
        }
    }
}

/// What a program-graph node computes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// The state entering integration layer `layer`.
    StateInput {
        /// Integration-layer index.
        layer: usize,
    },
    /// One embedded-network op inside an RK stage evaluation.
    NetOp {
        /// Integration-layer index.
        layer: usize,
        /// Unrolled accepted-step index.
        step: usize,
        /// RK stage index.
        stage: usize,
        /// Op index within the layer's network.
        op_index: usize,
    },
    /// The RK stage input `p_i = y + h Σ_j a_ij k_j`.
    StageInput {
        /// Integration-layer index.
        layer: usize,
        /// Unrolled accepted-step index.
        step: usize,
        /// RK stage index.
        stage: usize,
    },
    /// The accepted-step combine `y⁺ = y + h Σ_i b_i k_i`.
    Solution {
        /// Integration-layer index.
        layer: usize,
        /// Unrolled accepted-step index.
        step: usize,
    },
    /// The embedded error estimate `e = h Σ_i d_i k_i`.
    ErrorEstimate {
        /// Integration-layer index.
        layer: usize,
        /// Unrolled accepted-step index.
        step: usize,
    },
    /// An ACA checkpoint store of the state entering step `step`.
    Checkpoint {
        /// Integration-layer index.
        layer: usize,
        /// Step whose input state is stored.
        step: usize,
        /// Whether the store quantizes through IEEE binary16.
        fp16: bool,
    },
    /// The backward pass's local forward replay of one checkpoint
    /// interval (ACA recomputation).
    AdjointReplay {
        /// Integration-layer index.
        layer: usize,
        /// First step of the interval.
        start_step: usize,
        /// Steps replayed from the checkpoint.
        steps: usize,
        /// Whether the checkpoint was stored in binary16.
        fp16: bool,
    },
    /// Placement of one compute op (conv/dense) on an NN core.
    MapLayer {
        /// Integration-layer index.
        layer: usize,
        /// Op index within the layer's network.
        op_index: usize,
        /// Core the op is mapped to.
        core: usize,
        /// Time-multiplexing round the op runs in.
        round: usize,
    },
}

/// One node: its kind plus dataflow predecessors.
#[derive(Clone, Debug)]
pub struct Node {
    /// What the node computes.
    pub kind: NodeKind,
    /// Dataflow inputs, in the order documented on [`NodeKind`].
    pub preds: Vec<usize>,
}

/// A typed dataflow program graph (a DAG; nodes are created in
/// topological order, so `preds[i] < i` always holds).
#[derive(Clone, Debug, Default)]
pub struct ProgramGraph {
    nodes: Vec<Node>,
}

impl ProgramGraph {
    fn push(&mut self, kind: NodeKind, preds: Vec<usize>) -> usize {
        debug_assert!(preds.iter().all(|&p| p < self.nodes.len()));
        self.nodes.push(Node { kind, preds });
        self.nodes.len() - 1
    }

    /// All nodes, indexed by id.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The node with this id.
    pub fn node(&self, id: usize) -> &Node {
        &self.nodes[id]
    }

    /// A short location string for diagnostics, e.g. `L0.t3.k1.op2`
    /// (layer 0, step 3, stage 1, op 2).
    pub fn location(&self, id: usize) -> String {
        match &self.nodes[id].kind {
            NodeKind::StateInput { layer } => format!("L{layer}.in"),
            NodeKind::NetOp {
                layer,
                step,
                stage,
                op_index,
            } => format!("L{layer}.t{step}.k{stage}.op{op_index}"),
            NodeKind::StageInput { layer, step, stage } => format!("L{layer}.t{step}.p{stage}"),
            NodeKind::Solution { layer, step } => format!("L{layer}.t{step}.y"),
            NodeKind::ErrorEstimate { layer, step } => format!("L{layer}.t{step}.e"),
            NodeKind::Checkpoint { layer, step, .. } => format!("L{layer}.t{step}.ck"),
            NodeKind::AdjointReplay {
                layer,
                start_step,
                steps,
                ..
            } => format!("L{layer}.t{start_step}+{steps}.adj"),
            NodeKind::MapLayer {
                layer,
                op_index,
                core,
                ..
            } => format!("L{layer}.op{op_index}@core{core}"),
        }
    }
}

impl DataflowGraph for ProgramGraph {
    fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
    fn preds(&self, node: usize) -> &[usize] {
        &self.nodes[node].preds
    }
}

/// A lowered pipeline: the graph plus the schedule facts passes need.
#[derive(Clone, Debug)]
pub struct LoweredPipeline {
    /// The program graph.
    pub graph: ProgramGraph,
    /// The materialized Butcher tableau.
    pub tableau: ButcherTableau,
    /// Nominal accepted stepsize the schedule was unrolled at.
    pub h: f64,
    /// Number of unrolled accepted steps per integration layer.
    pub n_steps: usize,
    /// Per integration layer: the input shape of each op (`None` when
    /// shape inference fails — the `E02x` lints report that separately).
    pub op_shapes: Vec<Option<Vec<Vec<usize>>>>,
    /// Node id of each integration layer's final accepted state.
    pub layer_outputs: Vec<usize>,
}

/// Lowers a whole pipeline artifact into one program graph.
///
/// The solver schedule is unrolled for `ceil(span / default_dt)` accepted
/// steps (capped at an internal bound) at the uniform nominal stepsize —
/// the best static estimate of the adaptive trajectory. FSAL stage reuse
/// is deliberately ignored: re-evaluating the shared stage is
/// value-identical, and keeping every stage explicit keeps per-stage
/// facts addressable.
pub fn lower_pipeline(artifact: &PipelineArtifact) -> LoweredPipeline {
    let tableau = artifact.solver.tableau_kind.tableau();
    let (t0, t1) = artifact.model.t_span();
    let span = (t1 - t0).max(f64::MIN_POSITIVE);
    let n_steps =
        ((span / artifact.solver.default_dt).ceil() as usize).clamp(1, MAX_UNROLLED_STEPS);
    let h = span / n_steps as f64;
    let stride = artifact.solver.checkpoint_stride.max(1);
    let fp16 = artifact.solver.fp16_storage;
    let stages = tableau.stages();

    let mut graph = ProgramGraph::default();
    let mut op_shapes = Vec::new();
    let mut layer_outputs = Vec::new();
    let mut prev_out: Option<usize> = None;

    for (layer, net) in artifact.model.layers().iter().enumerate() {
        // Static per-op input shapes (identical at every stage and step).
        let mut shapes = Vec::with_capacity(net.ops().len());
        let mut shape = Some(artifact.state_shape.clone());
        for op in net.ops() {
            match &shape {
                Some(s) => {
                    shapes.push(s.clone());
                    shape = op_output_shape(op, s).ok();
                }
                None => break,
            }
        }
        let shapes_ok = shapes.len() == net.ops().len() && shape.is_some();
        op_shapes.push(shapes_ok.then_some(shapes));

        let entry = graph.push(
            NodeKind::StateInput { layer },
            prev_out.into_iter().collect(),
        );
        let mut y = entry;
        let mut first_stage0_op: Option<usize> = None;
        let mut interval_ck: Option<(usize, usize)> = None; // (ck node, start step)

        for step in 0..n_steps {
            if step % stride == 0 {
                // Close the previous checkpoint interval with its replay.
                if let Some((ck, start)) = interval_ck.take() {
                    graph.push(
                        NodeKind::AdjointReplay {
                            layer,
                            start_step: start,
                            steps: step - start,
                            fp16,
                        },
                        vec![ck, y],
                    );
                }
                let ck = graph.push(NodeKind::Checkpoint { layer, step, fp16 }, vec![y]);
                interval_ck = Some((ck, step));
            }
            let mut ks = Vec::with_capacity(stages);
            for stage in 0..stages {
                let mut preds = vec![y];
                preds.extend_from_slice(&ks[..stage.min(ks.len())]);
                let p = graph.push(NodeKind::StageInput { layer, step, stage }, preds);
                let mut cur = p;
                for op_index in 0..net.ops().len() {
                    cur = graph.push(
                        NodeKind::NetOp {
                            layer,
                            step,
                            stage,
                            op_index,
                        },
                        vec![cur],
                    );
                    if step == 0 && stage == 0 && first_stage0_op.is_none() {
                        first_stage0_op = Some(cur);
                    }
                }
                ks.push(cur);
            }
            let mut sol_preds = vec![y];
            sol_preds.extend_from_slice(&ks);
            let sol = graph.push(NodeKind::Solution { layer, step }, sol_preds);
            if tableau.is_adaptive() {
                graph.push(NodeKind::ErrorEstimate { layer, step }, ks.clone());
            }
            y = sol;
        }
        if let Some((ck, start)) = interval_ck.take() {
            graph.push(
                NodeKind::AdjointReplay {
                    layer,
                    start_step: start,
                    steps: n_steps - start,
                    fp16,
                },
                vec![ck, y],
            );
        }

        // Hardware mapping: place each compute op on its NN core.
        if let Some(cfg) = &artifact.hw {
            let compute: Vec<usize> = net
                .ops()
                .iter()
                .enumerate()
                .filter(|(_, op)| matches!(op, Op::Conv2d(_) | Op::Dense(_)))
                .map(|(i, _)| i)
                .collect();
            if !compute.is_empty() && cfg.cores > 0 {
                let mapping = map_layers(compute.len(), cfg.cores);
                for (slot, &op_index) in compute.iter().enumerate() {
                    graph.push(
                        NodeKind::MapLayer {
                            layer,
                            op_index,
                            core: mapping.core_of_layer[slot],
                            round: slot / cfg.cores,
                        },
                        first_stage0_op.into_iter().collect(),
                    );
                }
            }
        }

        layer_outputs.push(y);
        prev_out = Some(y);
    }

    LoweredPipeline {
        graph,
        tableau,
        h,
        n_steps,
        op_shapes,
        layer_outputs,
    }
}

/// Lowers a bare embedded network (no solver schedule) into a linear
/// chain: one [`NodeKind::StateInput`] followed by one
/// [`NodeKind::NetOp`] per op. This is the graph the ported `E02x`
/// shape/range lints run on.
pub fn network_chain(depth: usize) -> ProgramGraph {
    let mut graph = ProgramGraph::default();
    let mut cur = graph.push(NodeKind::StateInput { layer: 0 }, vec![]);
    for op_index in 0..depth {
        cur = graph.push(
            NodeKind::NetOp {
                layer: 0,
                step: 0,
                stage: 0,
                op_index,
            },
            vec![cur],
        );
    }
    graph
}

// ---------------------------------------------------------------------------
// Op-level transfer helpers shared by the shape, range, and precision
// passes. The shape/bound rules (and their error strings) are the ones the
// pre-engine `shape.rs` lints shipped with; they must stay byte-stable.
// ---------------------------------------------------------------------------

/// Shape inference for one op. `Ok(out_shape)` or `Err(reason)`.
pub(crate) fn op_output_shape(op: &Op, shape: &[usize]) -> Result<Vec<usize>, String> {
    match op {
        Op::Conv2d(c) => {
            if shape.len() != 4 {
                return Err(format!(
                    "Conv2d needs rank-4 NCHW input, got rank {}",
                    shape.len()
                ));
            }
            if shape[1] != c.in_channels() {
                return Err(format!(
                    "Conv2d expects {} input channels, got {}",
                    c.in_channels(),
                    shape[1]
                ));
            }
            if shape[2] < c.kernel() || shape[3] < c.kernel() {
                return Err(format!(
                    "Conv2d kernel {} does not fit {}x{} input",
                    c.kernel(),
                    shape[2],
                    shape[3]
                ));
            }
            Ok(vec![shape[0], c.out_channels(), shape[2], shape[3]])
        }
        Op::Dense(d) => {
            if shape.len() != 2 {
                return Err(format!(
                    "Dense needs rank-2 input, got rank {}",
                    shape.len()
                ));
            }
            if shape[1] != d.in_features() {
                return Err(format!(
                    "Dense expects {} input features, got {}",
                    d.in_features(),
                    shape[1]
                ));
            }
            Ok(vec![shape[0], d.out_features()])
        }
        Op::Activation(_) => Ok(shape.to_vec()),
        Op::GroupNorm(g) => {
            if shape.len() != 4 {
                return Err(format!(
                    "GroupNorm needs rank-4 NCHW input, got rank {}",
                    shape.len()
                ));
            }
            if shape[1] != g.channels() {
                return Err(format!(
                    "GroupNorm expects {} channels, got {}",
                    g.channels(),
                    shape[1]
                ));
            }
            Ok(shape.to_vec())
        }
        Op::ConcatTime => match shape.len() {
            4 => Ok(vec![shape[0], shape[1] + 1, shape[2], shape[3]]),
            2 => Ok(vec![shape[0], shape[1] + 1]),
            r => Err(format!(
                "ConcatTime supports rank 2 or 4 inputs, got rank {r}"
            )),
        },
    }
}

/// Worst-case output magnitude of one op given an input magnitude bound.
pub(crate) fn op_output_bound(op: &Op, shape: &[usize], bound: f64) -> f64 {
    match op {
        Op::Conv2d(c) => {
            // |y_o| ≤ Σ_{c,k,k} |w[o,·]|·bound + |b[o]|, worst output channel.
            let w = c.weight();
            let per_out = w.len() / c.out_channels();
            (0..c.out_channels())
                .map(|o| {
                    let wsum: f64 = w.data()[o * per_out..(o + 1) * per_out]
                        .iter()
                        .map(|x| x.abs() as f64)
                        .sum();
                    wsum * bound + c.bias().data()[o].abs() as f64
                })
                .fold(0.0, f64::max)
        }
        Op::Dense(d) => {
            let w = d.weight();
            let per_out = d.in_features();
            (0..d.out_features())
                .map(|o| {
                    let wsum: f64 = w.data()[o * per_out..(o + 1) * per_out]
                        .iter()
                        .map(|x| x.abs() as f64)
                        .sum();
                    wsum * bound + d.bias().data()[o].abs() as f64
                })
                .fold(0.0, f64::max)
        }
        Op::Activation(a) => match a {
            Activation::Relu => bound,
            Activation::Tanh | Activation::Sigmoid => 1.0,
            // softplus(x) ≤ max(x, 0) + ln 2.
            Activation::Softplus => bound + std::f64::consts::LN_2,
        },
        Op::GroupNorm(g) => {
            // |x̂| ≤ √(N−1) for a group of N elements (extreme: one element
            // carries all the variance), so |y| ≤ max|γ|·√(N−1) + max|β|.
            let group_elems = group_elems(g, shape);
            let xhat_bound = ((group_elems.saturating_sub(1)) as f64).sqrt();
            let gmax = abs_max(g.gamma().data());
            let bmax = abs_max(g.beta().data());
            gmax * xhat_bound + bmax
        }
        Op::ConcatTime => bound.max(TIME_BOUND),
    }
}

/// Elements per GroupNorm group for an NCHW input shape.
pub(crate) fn group_elems(g: &enode_tensor::norm::GroupNorm, shape: &[usize]) -> usize {
    (g.channels() / g.groups().max(1)) * shape[2] * shape[3]
}

/// Perturbation gain of one op: a bound on how much an input error grows
/// through it (the ∞-norm operator bound for linear ops, the worst
/// derivative for activations, and a `max|γ|·√N` proxy for GroupNorm —
/// the normalization's Jacobian scales with `γ/σ` and σ is not statically
/// bounded below, so the pass uses the group size as the nominal scale).
pub(crate) fn op_error_gain(op: &Op, shape: &[usize]) -> f64 {
    match op {
        Op::Conv2d(c) => {
            let w = c.weight();
            let per_out = w.len() / c.out_channels();
            (0..c.out_channels())
                .map(|o| {
                    w.data()[o * per_out..(o + 1) * per_out]
                        .iter()
                        .map(|x| x.abs() as f64)
                        .sum()
                })
                .fold(0.0, f64::max)
        }
        Op::Dense(d) => {
            let w = d.weight();
            let per_out = d.in_features();
            (0..d.out_features())
                .map(|o| {
                    w.data()[o * per_out..(o + 1) * per_out]
                        .iter()
                        .map(|x| x.abs() as f64)
                        .sum()
                })
                .fold(0.0, f64::max)
        }
        Op::Activation(a) => match a {
            Activation::Relu | Activation::Tanh | Activation::Softplus => 1.0,
            Activation::Sigmoid => 0.25,
        },
        Op::GroupNorm(g) => abs_max(g.gamma().data()) * (group_elems(g, shape) as f64).sqrt(),
        Op::ConcatTime => 1.0,
    }
}

/// FP16 bytes of one op's trainable parameters (zero for activations).
pub(crate) fn op_weight_bytes_fp16(op: &Op) -> u64 {
    let scalars = match op {
        Op::Conv2d(c) => c.weight().len() + c.bias().len(),
        Op::Dense(d) => d.weight().len() + d.bias().len(),
        Op::GroupNorm(g) => g.gamma().len() + g.beta().len(),
        Op::Activation(_) | Op::ConcatTime => 0,
    };
    2 * scalars as u64
}

/// FP16 bytes of the cache one op's backward pass needs, given the op's
/// input shape (mirrors `aca_backward_layer`'s `cache_bytes`).
pub(crate) fn op_cache_bytes_fp16(op: &Op, in_shape: &[usize]) -> u64 {
    let elems: usize = in_shape.iter().product();
    match op {
        Op::ConcatTime => 0,
        // GroupNorm caches x̂ (input-sized) plus tiny per-group stats.
        _ => 2 * elems as u64,
    }
}

fn abs_max(data: &[f32]) -> f64 {
    data.iter().map(|x| x.abs() as f64).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DataflowGraph;
    use enode_hw::config::HwConfig;

    fn artifact(stride: usize, fp16: bool, hw: Option<HwConfig>) -> PipelineArtifact {
        let mut solver =
            enode_node::inference::NodeSolveOptions::new(1e-6).with_checkpoint_stride(stride);
        if fp16 {
            solver = solver.with_fp16_storage();
        }
        PipelineArtifact::new(
            "test",
            NodeModel::dynamic_system(2, 8, 2, 3),
            vec![1, 2],
            4.0,
            solver,
            hw,
        )
    }

    #[test]
    fn lowering_is_topological_and_complete() {
        let lp = lower_pipeline(&artifact(1, false, None));
        let g = &lp.graph;
        for (i, n) in g.nodes().iter().enumerate() {
            for &p in &n.preds {
                assert!(p < i, "node {i} has forward pred {p}");
            }
        }
        // 2 layers × (1 input + 10 steps × (4 stages × (1 + 4 ops) + y⁺ + e)
        //             + 10 checkpoints + 10 replays).
        assert_eq!(lp.n_steps, 10);
        let stages = lp.tableau.stages();
        let per_layer = 1 + lp.n_steps * (stages * 5 + 2) + 10 + 10;
        assert_eq!(g.num_nodes(), 2 * per_layer);
        assert_eq!(lp.layer_outputs.len(), 2);
        // Layers chain: layer 1's input depends on layer 0's output.
        let l1_in = g
            .nodes()
            .iter()
            .position(|n| n.kind == NodeKind::StateInput { layer: 1 })
            .unwrap();
        assert_eq!(g.preds(l1_in), &[lp.layer_outputs[0]]);
    }

    #[test]
    fn checkpoint_stride_groups_steps_into_intervals() {
        let lp = lower_pipeline(&artifact(4, true, None));
        let replays: Vec<(usize, usize, bool)> = lp
            .graph
            .nodes()
            .iter()
            .filter_map(|n| match n.kind {
                NodeKind::AdjointReplay {
                    start_step,
                    steps,
                    fp16,
                    ..
                } => Some((start_step, steps, fp16)),
                _ => None,
            })
            .collect();
        // 10 steps at stride 4 → intervals of 4, 4, 2 per layer.
        assert_eq!(replays.len(), 6);
        assert_eq!(&replays[..3], &[(0, 4, true), (4, 4, true), (8, 2, true)]);
    }

    #[test]
    fn hw_mapping_lowers_to_map_nodes() {
        let lp = lower_pipeline(&artifact(1, false, Some(HwConfig::config_a())));
        let maps: Vec<&NodeKind> = lp
            .graph
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::MapLayer { .. }))
            .map(|n| &n.kind)
            .collect();
        // dynamic_system layers have 2 dense ops each; 2 layers → 4 placements.
        assert_eq!(maps.len(), 4);
    }

    #[test]
    fn network_chain_matches_depth() {
        let g = network_chain(3);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.preds(3), &[2]);
        assert_eq!(g.location(0), "L0.in");
        assert!(g.location(2).starts_with("L0.t0.k0.op"));
    }
}
