//! Network shape and FP16-range lints.
//!
//! Codes: `E020`–`E022`, `W020`.
//!
//! Two static analyses over an embedded-NN [`Network`], both run as
//! forward passes on the fixpoint engine ([`crate::engine`]) over the
//! linear chain graph [`crate::ir::network_chain`] builds (this family
//! predates the engine; the codes and messages are unchanged by the
//! port):
//!
//! 1. **NCHW shape inference** — threads a symbolic shape through the op
//!    chain and reports the first op that rejects its input (`E020`), then
//!    checks that the chain as a whole preserves the state shape (`E021`)
//!    — `dh/dt = f(t, h)` only makes sense when `f` maps the state space
//!    to itself.
//! 2. **FP16 interval propagation** — threads a worst-case absolute
//!    magnitude bound through the same chain and flags any intermediate
//!    that can exceed `F16::MAX` (`E022`) or come within 2× of it
//!    (`W020`), the failure mode the paper's FP16 datapath must avoid.

use crate::diag::{Code, Diagnostic, Diagnostics};
use crate::engine::{run_to_fixpoint, DataflowGraph, Lattice, Pass};
use crate::ir::{network_chain, op_output_bound, op_output_shape, NodeKind, ProgramGraph};
use enode_tensor::f16::F16;
use enode_tensor::network::Network;

/// Abstract shape of one chain node.
#[derive(Clone, Debug, PartialEq, Eq)]
enum ShapeVal {
    /// Not reached yet.
    Bottom,
    /// A concrete inferred shape.
    Shape(Vec<usize>),
    /// Inference failed at op `op_index`; absorbs everything downstream.
    Reject { op_index: usize, reason: String },
}

impl Lattice for ShapeVal {
    fn bottom() -> Self {
        ShapeVal::Bottom
    }
    fn join_from(&mut self, other: &Self) -> bool {
        match (&*self, other) {
            (_, ShapeVal::Bottom) => false,
            (ShapeVal::Bottom, _) => {
                *self = other.clone();
                true
            }
            // A rejection dominates any inferred shape.
            (ShapeVal::Shape(_), ShapeVal::Reject { .. }) => {
                *self = other.clone();
                true
            }
            _ => false,
        }
    }
}

/// Forward shape-inference pass over a [`network_chain`] graph.
struct ShapePass<'a> {
    net: &'a Network,
    input_shape: &'a [usize],
}

impl Pass<ProgramGraph> for ShapePass<'_> {
    type Value = ShapeVal;
    fn transfer(&self, graph: &ProgramGraph, node: usize, deps: &[ShapeVal]) -> ShapeVal {
        match &graph.node(node).kind {
            NodeKind::StateInput { .. } => ShapeVal::Shape(self.input_shape.to_vec()),
            NodeKind::NetOp { op_index, .. } => match deps.first() {
                Some(ShapeVal::Shape(s)) => match op_output_shape(&self.net.ops()[*op_index], s) {
                    Ok(out) => ShapeVal::Shape(out),
                    Err(reason) => ShapeVal::Reject {
                        op_index: *op_index,
                        reason,
                    },
                },
                Some(r @ ShapeVal::Reject { .. }) => r.clone(),
                _ => ShapeVal::Bottom,
            },
            _ => ShapeVal::Bottom,
        }
    }
}

/// Abstract magnitude of one chain node: the node's own worst-case bound
/// plus the running maximum over the whole prefix.
#[derive(Clone, Copy, Debug, PartialEq)]
struct BoundVal {
    reached: bool,
    bound: f64,
    worst: f64,
}

impl Lattice for BoundVal {
    fn bottom() -> Self {
        BoundVal {
            reached: false,
            bound: 0.0,
            worst: 0.0,
        }
    }
    fn join_from(&mut self, other: &Self) -> bool {
        let mut changed = false;
        if other.reached && !self.reached {
            self.reached = true;
            changed = true;
        }
        if other.bound > self.bound {
            self.bound = other.bound;
            changed = true;
        }
        if other.worst > self.worst {
            self.worst = other.worst;
            changed = true;
        }
        changed
    }
}

/// Forward FP16 range pass; needs the per-op input shapes the shape pass
/// inferred (GroupNorm's bound depends on the group size).
struct BoundPass<'a> {
    net: &'a Network,
    op_in_shapes: &'a [Vec<usize>],
    input_bound: f64,
}

impl Pass<ProgramGraph> for BoundPass<'_> {
    type Value = BoundVal;
    fn transfer(&self, graph: &ProgramGraph, node: usize, deps: &[BoundVal]) -> BoundVal {
        match &graph.node(node).kind {
            NodeKind::StateInput { .. } => BoundVal {
                reached: true,
                bound: self.input_bound,
                worst: self.input_bound,
            },
            NodeKind::NetOp { op_index, .. } => match deps.first() {
                Some(d) if d.reached => {
                    let bound = op_output_bound(
                        &self.net.ops()[*op_index],
                        &self.op_in_shapes[*op_index],
                        d.bound,
                    );
                    BoundVal {
                        reached: true,
                        bound,
                        worst: d.worst.max(bound),
                    }
                }
                _ => BoundVal::bottom(),
            },
            _ => BoundVal::bottom(),
        }
    }
}

/// Runs the shape pass and returns every op's *input* shape, or the first
/// op index + reason that rejected.
fn infer_chain(net: &Network, input_shape: &[usize]) -> Result<Vec<Vec<usize>>, (usize, String)> {
    let graph = network_chain(net.ops().len());
    let fx = run_to_fixpoint(&graph, &ShapePass { net, input_shape });
    // Node i+1 is op i; its input shape is node i's value.
    let mut in_shapes = Vec::with_capacity(net.ops().len());
    for id in 0..graph.num_nodes() {
        match &fx.values[id] {
            ShapeVal::Shape(s) => {
                if id < net.ops().len() {
                    in_shapes.push(s.clone());
                }
            }
            ShapeVal::Reject { op_index, reason } => {
                return Err((*op_index, reason.clone()));
            }
            ShapeVal::Bottom => unreachable!("chain nodes are all reachable"),
        }
    }
    Ok(in_shapes)
}

/// Infers the output shape of a network on `input_shape`, or the first
/// op index + reason that rejects it.
pub fn infer_output_shape(
    net: &Network,
    input_shape: &[usize],
) -> Result<Vec<usize>, (usize, String)> {
    let graph = network_chain(net.ops().len());
    let fx = run_to_fixpoint(&graph, &ShapePass { net, input_shape });
    match &fx.values[graph.num_nodes() - 1] {
        ShapeVal::Shape(s) => Ok(s.clone()),
        ShapeVal::Reject { op_index, reason } => Err((*op_index, reason.clone())),
        ShapeVal::Bottom => unreachable!("chain nodes are all reachable"),
    }
}

/// Worst-case absolute magnitude of the network output (and every
/// intermediate's running maximum) for inputs bounded by `input_bound`.
/// Returns `None` when shape inference fails.
pub fn fp16_worst_case(net: &Network, input_shape: &[usize], input_bound: f64) -> Option<f64> {
    let op_in_shapes = infer_chain(net, input_shape).ok()?;
    let graph = network_chain(net.ops().len());
    let fx = run_to_fixpoint(
        &graph,
        &BoundPass {
            net,
            op_in_shapes: &op_in_shapes,
            input_bound,
        },
    );
    let last = fx.values[graph.num_nodes() - 1];
    last.reached.then_some(last.worst)
}

/// Runs the shape and FP16-range lints on one network.
///
/// `input_bound` is the largest absolute state magnitude the caller
/// expects to feed `f` (e.g. normalized images → 1.0, dynamic-system
/// states → a few units).
pub fn lint_network(
    subject: &str,
    net: &Network,
    input_shape: &[usize],
    input_bound: f64,
) -> Diagnostics {
    let mut ds = Diagnostics::new();

    // E020: per-op shape legality.
    let out_shape = match infer_output_shape(net, input_shape) {
        Ok(s) => s,
        Err((idx, reason)) => {
            ds.push(
                Diagnostic::new(
                    Code::E020ShapeMismatch,
                    subject,
                    format!("op {idx} rejects its input: {reason}"),
                )
                .with_note("op_index", idx)
                .with_note("input_shape", format!("{input_shape:?}")),
            );
            return ds;
        }
    };

    // E021: f must be an endomap of the state space.
    if out_shape != input_shape {
        ds.push(
            Diagnostic::new(
                Code::E021ShapeNotPreserved,
                subject,
                format!("f maps {input_shape:?} to {out_shape:?}; dh/dt needs matching shapes"),
            )
            .with_note("input_shape", format!("{input_shape:?}"))
            .with_note("output_shape", format!("{out_shape:?}")),
        );
    }

    // E022 / W020: FP16 range.
    let f16_max = F16::MAX.to_f32() as f64;
    if let Some(worst) = fp16_worst_case(net, input_shape, input_bound) {
        if worst > f16_max {
            ds.push(
                Diagnostic::new(
                    Code::E022Fp16Overflow,
                    subject,
                    format!("worst-case magnitude {worst:.1} exceeds F16::MAX = {f16_max}"),
                )
                .with_note("worst_case", format!("{worst:.1}"))
                .with_note("f16_max", f16_max),
            );
        } else if worst > f16_max / 2.0 {
            ds.push(
                Diagnostic::new(
                    Code::W020Fp16NearOverflow,
                    subject,
                    format!("worst-case magnitude {worst:.1} is within 2x of F16::MAX"),
                )
                .with_note("worst_case", format!("{worst:.1}"))
                .with_note("f16_max", f16_max),
            );
        }
    }

    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use enode_tensor::conv::Conv2d;
    use enode_tensor::dense::Dense;
    use enode_tensor::network::Op;
    use enode_tensor::norm::GroupNorm;
    use enode_tensor::Tensor;

    fn conv_net() -> Network {
        Network::new(vec![
            Op::ConcatTime,
            Op::conv2d(Conv2d::new_seeded(3, 4, 3, 1)),
            Op::group_norm(GroupNorm::new(4, 2)),
            Op::relu(),
            Op::conv2d(Conv2d::new_seeded(4, 2, 3, 2)),
        ])
    }

    #[test]
    fn well_formed_conv_net_is_clean() {
        let ds = lint_network("conv_net", &conv_net(), &[1, 2, 8, 8], 1.0);
        assert!(ds.is_empty(), "{}", ds.render());
    }

    #[test]
    fn well_formed_dense_net_is_clean() {
        let f = Network::new(vec![
            Op::ConcatTime,
            Op::dense(Dense::new_seeded(3, 16, 1)),
            Op::tanh(),
            Op::dense(Dense::new_seeded(16, 2, 2)),
        ]);
        let ds = lint_network("dense_net", &f, &[1, 2], 2.0);
        assert!(ds.is_empty(), "{}", ds.render());
    }

    #[test]
    fn channel_mismatch_fires_e020() {
        // Net expects 3 channels after ConcatTime, feed 4-channel input.
        let ds = lint_network("bad_channels", &conv_net(), &[1, 4, 8, 8], 1.0);
        assert!(ds.has_code(Code::E020ShapeMismatch), "{}", ds.render());
        // Downstream lints must not run on an uninferrable chain.
        assert!(!ds.has_code(Code::E021ShapeNotPreserved));
    }

    #[test]
    fn rank_mismatch_fires_e020() {
        let ds = lint_network("bad_rank", &conv_net(), &[1, 2], 1.0);
        assert!(ds.has_code(Code::E020ShapeMismatch), "{}", ds.render());
    }

    #[test]
    fn non_preserving_net_fires_e021() {
        // 2 -> 5 features: not an endomap.
        let f = Network::new(vec![Op::dense(Dense::new_seeded(2, 5, 1))]);
        let ds = lint_network("grows", &f, &[1, 2], 1.0);
        assert!(ds.has_code(Code::E021ShapeNotPreserved), "{}", ds.render());
    }

    #[test]
    fn huge_weights_fire_e022() {
        // One dense layer with weights of 40000: bound = 2·40000 > 65504.
        let w = Tensor::from_vec(vec![40000.0, 40000.0, 0.0, 0.0], &[2, 2]);
        let b = Tensor::zeros(&[2]);
        let f = Network::new(vec![Op::dense(Dense::from_parts(w, b))]);
        let ds = lint_network("overflow", &f, &[1, 2], 1.0);
        assert!(ds.has_code(Code::E022Fp16Overflow), "{}", ds.render());
    }

    #[test]
    fn large_weights_fire_w020() {
        // Bound = 40000: above F16::MAX/2 = 32752, below F16::MAX.
        let w = Tensor::from_vec(vec![40000.0, 0.0, 0.0, 40000.0], &[2, 2]);
        let b = Tensor::zeros(&[2]);
        let f = Network::new(vec![Op::dense(Dense::from_parts(w, b))]);
        let ds = lint_network("near_overflow", &f, &[1, 2], 1.0);
        assert!(ds.has_code(Code::W020Fp16NearOverflow), "{}", ds.render());
        assert!(!ds.has_code(Code::E022Fp16Overflow));
    }

    #[test]
    fn saturating_activation_resets_bound() {
        // tanh clamps to 1, so a huge weight BEFORE tanh overflows but the
        // same weight AFTER a tanh sandwich with small outer weights is ok.
        let w_big = Tensor::from_vec(vec![50000.0], &[1, 1]);
        let overflow = Network::new(vec![Op::dense(Dense::from_parts(
            w_big.clone(),
            Tensor::zeros(&[1]),
        ))]);
        assert!(lint_network("pre", &overflow, &[1, 1], 2.0).has_code(Code::E022Fp16Overflow));

        let safe = Network::new(vec![
            Op::tanh(),
            Op::dense(Dense::from_parts(
                Tensor::from_vec(vec![2.0], &[1, 1]),
                Tensor::zeros(&[1]),
            )),
        ]);
        let ds = lint_network("post", &safe, &[1, 1], 60000.0);
        // Input bound 60000 itself is near-overflow -> W020 fires, but no
        // hard overflow occurs anywhere in the chain.
        assert!(!ds.has_code(Code::E022Fp16Overflow), "{}", ds.render());
    }

    #[test]
    fn shipped_models_infer_and_fit_fp16() {
        use enode_node::model::NodeModel;
        let m = NodeModel::dynamic_system(4, 32, 2, 7);
        for layer in m.layers() {
            let out = infer_output_shape(layer, &[1, 4]).expect("shape chain must infer");
            assert_eq!(out, vec![1, 4]);
            assert!(fp16_worst_case(layer, &[1, 4], 4.0).unwrap() < 65504.0);
        }
    }
}
