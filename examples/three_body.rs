//! Learn the planar Three-Body dynamics (paper eq. 6) with a Neural ODE
//! and inspect how the adaptive integrator spends its evaluation points on
//! this chaotic system.
//!
//! ```sh
//! cargo run --release --example three_body
//! ```

use enode::node::train::trainer::Target;
use enode::prelude::*;
use enode::workloads::trajectory_accuracy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tb = ThreeBody::default();
    println!("Three-Body: G={} masses={:?}", tb.g, tb.masses);

    // Ground-truth physics: energy is conserved along the trajectory.
    let mut rng = enode::tensor::rng::Rng64::seed_from_u64(3);
    let y0 = tb.random_initial(&mut rng);
    let e0 = tb.energy(&y0);
    let sol = tb.ground_truth(y0.clone(), 2.0);
    println!(
        "ground truth: {} adaptive points over t=[0,2], energy {:.6} -> {:.6}",
        sol.n_eval(),
        e0,
        tb.energy(sol.final_state())
    );

    // Learn the flow map x(0) -> x(1).
    let train = tb.dataset(8, 1.0, 10);
    let test = tb.dataset(4, 1.0, 11);
    let model = NodeModel::dynamic_system(12, 32, 2, 5);
    let opts = NodeSolveOptions::new(1e-5)
        .with_controller(ControllerKind::SlopeAdaptive { s_acc: 3, s_rej: 3 });
    let mut trainer = Trainer::new(model, opts, 0.01);
    let target = Target::State(train.targets.clone().unwrap());
    let mut first = 0.0;
    let mut last = 0.0;
    for epoch in 0..30 {
        let r = trainer.step(&train.inputs, &target)?;
        if epoch == 0 {
            first = r.loss;
        }
        last = r.loss;
    }
    println!("training loss: {first:.4} -> {last:.4} over 30 epochs");

    let (pred, trace) = forward_model(trainer.model(), &test.inputs, trainer.options())?;
    println!(
        "held-out trajectory accuracy {:.1}% | per-layer evaluation points: {:?}",
        trajectory_accuracy(&pred, test.targets.as_ref().unwrap()),
        trace
            .layers
            .iter()
            .map(|l| l.stats.points)
            .collect::<Vec<_>>()
    );
    Ok(())
}
