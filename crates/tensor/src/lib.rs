//! NN tensor substrate for the eNODE reproduction.
//!
//! This crate provides everything the Neural-ODE stack needs from a neural
//! network library, built from scratch:
//!
//! * [`Tensor`] — a dense row-major tensor of `f32` with shape-checked
//!   elementwise and linear-algebra helpers.
//! * [`F16`] — a software IEEE-754 binary16 type used for storage-size
//!   accounting and quantization experiments (the eNODE prototype datapath
//!   is FP16).
//! * Convolution ([`conv`]) with forward, input-gradient and weight-gradient
//!   passes (the three directions the unified eNODE NN core executes).
//! * Dense layers, activations, and group normalization with full backward
//!   passes ([`dense`], [`activation`], [`norm`]).
//! * A small network container ([`network::Network`]) with explicit caches so
//!   the Neural-ODE adjoint pass can form vector-Jacobian products with
//!   respect to both the input state and the parameters.
//! * Optimizers ([`optim`]) and initializers ([`init`]).
//! * A scoped worker-pool parallel execution layer ([`parallel`]) with a
//!   bit-identical determinism contract, a thread-local bump arena for
//!   kernel scratch ([`arena`]), and the packed-panel register-tiled
//!   matmul microkernel ([`matmul`]) behind the im2col convolution fast
//!   path.
//! * Affine access summaries ([`access`]) registered beside every
//!   parallel kernel, giving the static prover in `enode-analysis` a
//!   symbolic description of each split's per-lane read/write sets.
//! * Declared synchronization skeletons and a feature-gated runtime sync
//!   tracer ([`syncmodel`]): the worker pool (and the serving runtime one
//!   crate up) declares its lock/condvar/atomic protocol for the static
//!   concurrency prover in `enode-analysis`, and `--features synctrace`
//!   records actual acquisition orders for the parity test.
//!
//! # Example
//!
//! ```
//! use enode_tensor::{Tensor, network::{Network, Op}, conv::Conv2d};
//!
//! // A tiny embedded NN f: conv3x3 -> ReLU -> conv3x3, as used inside a
//! // Neural-ODE integration layer.
//! let f = Network::new(vec![
//!     Op::conv2d(Conv2d::new_seeded(4, 4, 3, 1)),
//!     Op::relu(),
//!     Op::conv2d(Conv2d::new_seeded(4, 4, 3, 2)),
//! ]);
//! let h = Tensor::ones(&[1, 4, 8, 8]);
//! let (y, caches) = f.forward(&h);
//! assert_eq!(y.shape(), h.shape());
//! // Vector-Jacobian products for the adjoint ODE:
//! let a = Tensor::ones(y.shape());
//! let (dh, dtheta) = f.backward(&caches, &a);
//! assert_eq!(dh.shape(), h.shape());
//! assert_eq!(dtheta.len(), f.param_count());
//! ```

pub mod access;
pub mod activation;
pub mod arena;
pub mod conv;
pub mod dense;
pub mod f16;
pub mod gradcheck;
pub mod init;
pub mod matmul;
pub mod network;
pub mod norm;
pub mod optim;
pub mod parallel;
pub mod pool;
pub mod rng;
pub mod sanitize;
pub mod shape;
pub(crate) mod simd;
pub mod syncmodel;
pub mod tensor;

pub use f16::F16;
pub use rng::Rng64;
pub use shape::Shape;
pub use tensor::Tensor;
