//! A tour of the standalone integrator crate: compare the built-in
//! Runge–Kutta pairs on a chaotic-ish problem, verify their convergence
//! orders empirically, sample a dense solution with Hermite interpolation,
//! and run the stiffness diagnostic on a Van der Pol relaxation
//! oscillator.
//!
//! ```sh
//! cargo run --release --example integrator_playground
//! ```

use enode::ode::controller::ClassicController;
use enode::ode::solver::{solve_adaptive, AdaptiveOptions};
use enode::ode::stiffness::classify_solve;
use enode::ode::tableau::{all_tableaux, ButcherTableau};
use enode::ode::verify::estimate_global_order;
use enode::workloads::van_der_pol::VanDerPol;

fn main() {
    // 1. Empirical convergence orders on exponential decay.
    println!("empirical convergence orders (claimed in parentheses):");
    let exact = vec![(-1.0f64).exp()];
    for tab in all_tableaux() {
        let est = estimate_global_order(
            &tab,
            |_t, y: &Vec<f64>| vec![-y[0]],
            vec![1.0],
            1.0,
            &exact,
            16,
        );
        println!("  {:>11}: {est:4.2} ({})", tab.name(), tab.order());
    }

    // 2. Efficiency comparison: nfe to integrate a Lotka–Volterra orbit.
    let lv = enode::workloads::lotka_volterra::LotkaVolterra::default();
    println!("\nnfe to solve Lotka-Volterra over t=[0,5] at tol 1e-6:");
    for tab in [
        ButcherTableau::rk23_bogacki_shampine(),
        ButcherTableau::rkf45(),
        ButcherTableau::cash_karp(),
        ButcherTableau::dopri5(),
    ] {
        let mut ctl = ClassicController::new(tab.error_order());
        let sol = solve_adaptive(
            |t, y: &Vec<f64>| lv.f(t, y),
            0.0,
            5.0,
            vec![1.0, 1.0],
            &tab,
            &mut ctl,
            &AdaptiveOptions::new(1e-6),
        )
        .unwrap();
        println!(
            "  {:>11}: {:5} nfe over {:4} points",
            tab.name(),
            sol.stats.nfe,
            sol.n_eval()
        );
    }

    // 3. Hermite dense output: sample between adaptive points.
    let tab = ButcherTableau::rk23_bogacki_shampine();
    let mut ctl = ClassicController::new(tab.error_order());
    let sol = solve_adaptive(
        |t, y: &Vec<f64>| lv.f(t, y),
        0.0,
        5.0,
        vec![1.0, 1.0],
        &tab,
        &mut ctl,
        &AdaptiveOptions::new(1e-6),
    )
    .unwrap();
    let t = 2.345;
    let lin = sol.sample(t);
    let herm = sol.sample_hermite(t);
    let truth = lv.ground_truth(vec![1.0, 1.0], t);
    println!(
        "\ndense output at t={t}: linear ({:.5}, {:.5}) | hermite ({:.5}, {:.5}) | truth ({:.5}, {:.5})",
        lin[0], lin[1], herm[0], herm[1],
        truth.final_state()[0], truth.final_state()[1]
    );

    // 4. Stiffness diagnostic on Van der Pol.
    println!("\nstiffness diagnostic (explicit RK23):");
    for (name, vdp, tol) in [
        ("gentle mu=0.5", VanDerPol { mu: 0.5 }, 1e-6),
        ("stiff  mu=30 ", VanDerPol::stiff(), 1e-3),
    ] {
        let tab = ButcherTableau::rk23_bogacki_shampine();
        let mut ctl = ClassicController::new(tab.error_order());
        let sol = solve_adaptive(
            |t, y: &Vec<f64>| vdp.f(t, y),
            0.0,
            20.0,
            vec![2.0, 0.0],
            &tab,
            &mut ctl,
            &AdaptiveOptions::new(tol),
        )
        .unwrap();
        let m = classify_solve(|t, y: &Vec<f64>| vdp.f(t, y), &sol);
        println!(
            "  {name}: {} points, max h*lambda {:.2}, stiff fraction {:.2} -> stiff: {}",
            sol.n_eval(),
            m.max_h_lambda(),
            m.stiff_fraction(),
            m.is_stiff()
        );
    }
}
