//! Runtime coverage for the sync protocols the E10x prover reasons
//! about: the wall-clock batch window's timeout-bounded wait (the W102
//! decision record), shutdown racing a parked worker on both clock
//! flavours, and a multi-threaded stress of the metrics ordering
//! protocol (`consistent()` on every mid-flight snapshot, `reconciles()`
//! at quiescence).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use enode_node::inference::NodeSolveOptions;
use enode_node::model::NodeModel;
use enode_serve::{Clock, Priority, Rejected, Request, ServeConfig, Server, ToleranceClass};
use enode_tensor::init;

fn server_with(clock: Clock, workers: usize) -> Server {
    let mut cfg = ServeConfig::edge_default();
    cfg.workers = workers;
    Server::new(
        NodeModel::dynamic_system(2, 8, 1, 42),
        NodeSolveOptions::new(1e-4),
        cfg,
        clock,
    )
}

fn req(seed: u64, deadline_us: u64) -> Request {
    Request {
        input: init::uniform(&[1, 2], -1.0, 1.0, seed),
        deadline_us,
        tolerance_class: ToleranceClass::Standard,
        priority: Priority::Normal,
    }
}

#[test]
fn wall_clock_window_expires_with_no_notifier() {
    // One request, one worker, wall clock. The worker wakes on the submit
    // notify, cannot form a batch while the 2ms window is open, and parks
    // on the *timeout* wait. Nobody notifies again: the only way the
    // request completes is the timeout expiring and `try_form` seeing the
    // window closed — the runtime behaviour the W102 record documents.
    let s = server_with(Clock::wall(), 1);
    let deadline = s.clock().now_us() + 30_000_000;
    let t = s.submit(req(1, deadline)).unwrap();
    let resp = t.wait().expect("window expiry must dispatch the batch");
    assert_eq!(resp.tier, 0, "30s of slack must not degrade");
    let snap = s.snapshot();
    assert_eq!(snap.completed, 1);
    assert_eq!(snap.batches, 1);
}

#[test]
fn shutdown_while_worker_parked_on_the_batch_window() {
    // Submit, give the worker a moment to park on the window timeout,
    // then shut down. The sweep must resolve the queued ticket as
    // cancelled and the join must not hang on the parked worker.
    let mut s = server_with(Clock::wall(), 1);
    let deadline = s.clock().now_us() + 30_000_000;
    let mut tickets = Vec::new();
    for i in 0..2 {
        tickets.push(s.submit(req(10 + i, deadline)).unwrap());
    }
    // Short enough that the 2ms window is still open (worker parked on
    // the timeout wait) on any non-pathological scheduler.
    std::thread::sleep(Duration::from_micros(200));
    let start = Instant::now();
    s.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "join must not hang on the parked worker"
    );
    let snap = s.snapshot();
    for t in tickets {
        match t.wait() {
            Ok(_) | Err(Rejected::ShuttingDown) => {}
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    assert!(snap.reconciles(), "{}", snap.to_json());
}

#[test]
fn shutdown_while_worker_parked_on_the_virtual_clock_wait() {
    // With a virtual clock the worker parks on the *untimed* wait (a
    // timeout would spin — simulated time only moves when the owner moves
    // it), so shutdown's notify is the only thing that can wake it. This
    // is the externally-pumped path E101's no-notifier obligation guards.
    let mut s = server_with(Clock::virtual_at(0), 1);
    std::thread::sleep(Duration::from_micros(200));
    let start = Instant::now();
    s.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "shutdown notify must wake the untimed wait"
    );
    assert!(s.snapshot().reconciles());
}

#[test]
fn four_thread_stress_keeps_every_snapshot_consistent() {
    // 4 submitter threads hammer one wall-clock server while a snapshot
    // thread asserts the under-load identity on every observation it
    // makes mid-flight; after drain + shutdown the strict quiescent
    // identity must hold. This is the runtime cross-check of the
    // Release/Acquire protocol in `metrics::snapshot` — with Relaxed
    // resolution counters the consistent() assertion fails under
    // reordering, which is exactly what E103 guards statically.
    const SUBMITTERS: usize = 4;
    const PER_THREAD: usize = 24;

    let s = Arc::new(server_with(Clock::wall(), 2));
    let stop = Arc::new(AtomicBool::new(false));

    let observer = {
        let s = Arc::clone(&s);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut observations = 0u64;
            while !stop.load(Ordering::Acquire) {
                let snap = s.snapshot();
                assert!(
                    snap.consistent(),
                    "mid-flight snapshot violated the under-load identity: {}",
                    snap.to_json()
                );
                observations += 1;
            }
            observations
        })
    };

    let submitters: Vec<_> = (0..SUBMITTERS)
        .map(|thread| {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                let mut tickets = Vec::new();
                for i in 0..PER_THREAD {
                    let seed = (thread * PER_THREAD + i) as u64;
                    let deadline = s.clock().now_us() + 30_000_000;
                    loop {
                        match s.submit(req(seed, deadline)) {
                            Ok(t) => {
                                tickets.push(t);
                                break;
                            }
                            Err(Rejected::QueueFull { .. }) => std::thread::yield_now(),
                            Err(other) => panic!("unexpected rejection {other:?}"),
                        }
                    }
                }
                for t in tickets {
                    t.wait().expect("30s deadlines must complete");
                }
            })
        })
        .collect();

    for h in submitters {
        h.join().expect("submitter thread");
    }
    s.drain();
    stop.store(true, Ordering::Release);
    let observations = observer.join().expect("observer thread");
    assert!(observations > 0, "the observer must have raced the load");

    let snap = s.snapshot();
    assert_eq!(snap.completed, (SUBMITTERS * PER_THREAD) as u64);
    assert!(snap.reconciles(), "{}", snap.to_json());
    assert!(snap.consistent(), "{}", snap.to_json());
}
