//! Criterion micro-benchmarks of the integrator substrate: single RK
//! steps, adaptive solves under each controller, and the NODE forward
//! pass (the kernel behind Figs 11/13/17).

use criterion::{criterion_group, criterion_main, Criterion};
use enode_node::inference::{forward_layer, ControllerKind, NodeSolveOptions};
use enode_ode::controller::{ClassicController, ConventionalSearchController};
use enode_ode::solver::{solve_adaptive, AdaptiveOptions};
use enode_ode::step::rk_step;
use enode_ode::tableau::ButcherTableau;
use enode_tensor::dense::Dense;
use enode_tensor::init;
use enode_tensor::network::{Network, Op};
use std::hint::black_box;

fn lv(_t: f64, y: &Vec<f64>) -> Vec<f64> {
    vec![1.5 * y[0] - y[0] * y[1], y[0] * y[1] - 3.0 * y[1]]
}

fn rk_steps(c: &mut Criterion) {
    for tab in [
        ButcherTableau::euler(),
        ButcherTableau::rk23_bogacki_shampine(),
        ButcherTableau::dopri5(),
    ] {
        c.bench_function(&format!("rk_step_{}_lotka_volterra", tab.name()), |b| {
            b.iter(|| {
                black_box(rk_step(
                    &tab,
                    &mut lv,
                    0.0,
                    0.05,
                    black_box(&vec![1.0, 1.0]),
                    None,
                ))
            })
        });
    }
}

fn adaptive_solves(c: &mut Criterion) {
    let tab = ButcherTableau::rk23_bogacki_shampine();
    c.bench_function("solve_classic_lv_tol1e-7", |b| {
        b.iter(|| {
            let mut ctl = ClassicController::new(tab.error_order());
            black_box(
                solve_adaptive(
                    lv,
                    0.0,
                    5.0,
                    vec![1.0, 1.0],
                    &tab,
                    &mut ctl,
                    &AdaptiveOptions::new(1e-7),
                )
                .unwrap(),
            )
        })
    });
    c.bench_function("solve_conventional_lv_tol1e-7", |b| {
        b.iter(|| {
            let mut ctl = ConventionalSearchController::new(0.1, 0.5);
            black_box(
                solve_adaptive(
                    lv,
                    0.0,
                    5.0,
                    vec![1.0, 1.0],
                    &tab,
                    &mut ctl,
                    &AdaptiveOptions::new(1e-7),
                )
                .unwrap(),
            )
        })
    });
}

fn node_forward(c: &mut Criterion) {
    let f = Network::new(vec![
        Op::ConcatTime,
        Op::dense(Dense::new_seeded(3, 16, 1)),
        Op::tanh(),
        Op::dense(Dense::new_seeded(16, 2, 2)),
    ]);
    let y0 = init::uniform(&[4, 2], -0.5, 0.5, 3);
    for (name, kind) in [
        (
            "conventional",
            ControllerKind::ConventionalConstantInit { shrink: 0.5 },
        ),
        (
            "slope_adaptive",
            ControllerKind::SlopeAdaptive { s_acc: 3, s_rej: 3 },
        ),
    ] {
        let opts = NodeSolveOptions::new(1e-5).with_controller(kind);
        c.bench_function(&format!("node_forward_layer_{name}"), |b| {
            b.iter(|| {
                black_box(forward_layer(&f, black_box(&y0), (0.0, 1.0), &opts).unwrap())
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = rk_steps, adaptive_solves, node_forward
}
criterion_main!(benches);
