//! Finite-difference gradient checking utilities.
//!
//! Used pervasively by the test suites of this crate, `enode-node`
//! (adjoint-gradient verification) and the integration tests.

use crate::tensor::Tensor;

/// Result of a gradient check: the worst relative error found and its index.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GradCheckReport {
    /// Largest relative error across the checked entries.
    pub max_rel_error: f32,
    /// Flat index where the largest error occurred.
    pub argmax: usize,
}

impl GradCheckReport {
    /// True when every checked entry was within `tol` relative error.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_rel_error <= tol
    }
}

/// Compares an analytic gradient against a central finite difference of
/// `loss` with respect to the entries of `x` listed in `indices`
/// (all entries when `indices` is empty).
///
/// `loss` is called with temporarily perturbed copies of `x`.
///
/// # Example
///
/// ```
/// use enode_tensor::{Tensor, gradcheck::check_gradient};
/// // loss = sum(x^2), gradient = 2x
/// let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]);
/// let grad = x.scale(2.0);
/// let report = check_gradient(
///     &x,
///     &grad,
///     1e-3,
///     &[],
///     |t| t.data().iter().map(|v| v * v).sum(),
/// );
/// assert!(report.passes(1e-2));
/// ```
pub fn check_gradient(
    x: &Tensor,
    analytic: &Tensor,
    eps: f32,
    indices: &[usize],
    mut loss: impl FnMut(&Tensor) -> f32,
) -> GradCheckReport {
    assert_eq!(
        x.shape(),
        analytic.shape(),
        "gradient shape must match input shape"
    );
    let all: Vec<usize>;
    let idxs: &[usize] = if indices.is_empty() {
        all = (0..x.len()).collect();
        &all
    } else {
        indices
    };
    let mut max_rel = 0.0f32;
    let mut argmax = 0usize;
    let mut probe = x.clone();
    for &i in idxs {
        let orig = probe.data()[i];
        probe.data_mut()[i] = orig + eps;
        let lp = loss(&probe);
        probe.data_mut()[i] = orig - eps;
        let lm = loss(&probe);
        probe.data_mut()[i] = orig;
        let fd = (lp - lm) / (2.0 * eps);
        let an = analytic.data()[i];
        let denom = fd.abs().max(an.abs()).max(1e-4);
        let rel = (fd - an).abs() / denom;
        if rel > max_rel {
            max_rel = rel;
            argmax = i;
        }
    }
    GradCheckReport {
        max_rel_error: max_rel,
        argmax,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_gradient_passes() {
        let x = Tensor::from_vec(vec![0.5, -1.5, 2.0, 0.1], &[4]);
        let grad = x.map(|v| 3.0 * v * v); // d/dx sum(x^3)
        let report = check_gradient(&x, &grad, 1e-3, &[], |t| {
            t.data().iter().map(|v| v.powi(3)).sum()
        });
        assert!(report.passes(1e-2), "{report:?}");
    }

    #[test]
    fn wrong_gradient_fails() {
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let wrong = Tensor::from_vec(vec![0.0, 0.0], &[2]);
        let report = check_gradient(&x, &wrong, 1e-3, &[], |t| t.data().iter().sum());
        assert!(!report.passes(1e-2));
        assert!(report.max_rel_error > 0.5);
    }

    #[test]
    fn subset_of_indices() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let grad = Tensor::ones(&[3]);
        let report = check_gradient(&x, &grad, 1e-3, &[1], |t| t.sum());
        assert!(report.passes(1e-3));
    }
}
