//! "Ramulator-lite": a banked DRAM timing and energy model.
//!
//! The paper estimates DRAM power with the Ramulator simulator \[17\]. This
//! module models the first-order effects that matter at this granularity:
//! bank-level row buffers (open-page policy), activate/precharge timing on
//! row misses, burst transfers, and per-access energy split into activate
//! and read/write components.

/// DRAM device parameters (DDR4-2400-class defaults, 28 nm-era edge SoC).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DramConfig {
    /// Number of banks.
    pub banks: usize,
    /// Row (page) size in bytes.
    pub row_bytes: u64,
    /// Burst transfer granularity in bytes.
    pub burst_bytes: u64,
    /// Row-to-column delay in memory-controller cycles.
    pub t_rcd: u64,
    /// Column access latency.
    pub t_cas: u64,
    /// Precharge latency.
    pub t_rp: u64,
    /// Cycles per burst transfer.
    pub t_burst: u64,
    /// Energy per activate (precharge+activate pair), picojoules.
    pub e_activate_pj: f64,
    /// Read/write energy per byte, picojoules.
    pub e_rw_pj_per_byte: f64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            banks: 8,
            row_bytes: 2048,
            burst_bytes: 64,
            t_rcd: 15,
            t_cas: 15,
            t_rp: 15,
            t_burst: 4,
            e_activate_pj: 2500.0,
            e_rw_pj_per_byte: 15.0,
        }
    }
}

/// Access statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Read requests.
    pub reads: u64,
    /// Write requests.
    pub writes: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses (activates).
    pub row_misses: u64,
    /// Total bytes transferred.
    pub bytes: u64,
    /// Total memory-controller cycles consumed.
    pub cycles: u64,
}

/// A banked DRAM with open-page row-buffer policy.
///
/// # Example
///
/// ```
/// use enode_hw::dram::{Dram, DramConfig};
/// let mut dram = Dram::new(DramConfig::default());
/// // Sequential streaming hits the row buffer almost always.
/// for i in 0..32u64 {
///     dram.read(i * 64, 64);
/// }
/// let s = dram.stats();
/// assert!(s.row_hits > s.row_misses);
/// ```
#[derive(Clone, Debug)]
pub struct Dram {
    config: DramConfig,
    open_rows: Vec<Option<u64>>,
    stats: DramStats,
}

impl Dram {
    /// Creates a DRAM with all rows closed.
    pub fn new(config: DramConfig) -> Self {
        assert!(config.banks > 0, "need at least one bank");
        Dram {
            open_rows: vec![None; config.banks],
            config,
            stats: DramStats::default(),
        }
    }

    /// The device parameters.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Resets the statistics (row buffers stay open).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    /// Reads `bytes` starting at `addr`; returns the cycles consumed.
    pub fn read(&mut self, addr: u64, bytes: u64) -> u64 {
        self.stats.reads += 1;
        self.access(addr, bytes)
    }

    /// Writes `bytes` starting at `addr`; returns the cycles consumed.
    pub fn write(&mut self, addr: u64, bytes: u64) -> u64 {
        self.stats.writes += 1;
        self.access(addr, bytes)
    }

    fn access(&mut self, addr: u64, bytes: u64) -> u64 {
        assert!(bytes > 0, "zero-length access");
        let mut cycles = 0;
        let mut cur = addr;
        let end = addr + bytes;
        while cur < end {
            let row_global = cur / self.config.row_bytes;
            let bank = (row_global % self.config.banks as u64) as usize;
            let row = row_global / self.config.banks as u64;
            if self.open_rows[bank] == Some(row) {
                self.stats.row_hits += 1;
                cycles += self.config.t_cas;
            } else {
                self.stats.row_misses += 1;
                // Precharge the old row if one was open, then activate.
                if self.open_rows[bank].is_some() {
                    cycles += self.config.t_rp;
                }
                cycles += self.config.t_rcd + self.config.t_cas;
                self.open_rows[bank] = Some(row);
            }
            // Transfer the part of this request inside the current row.
            let row_end = (row_global + 1) * self.config.row_bytes;
            let chunk = (end.min(row_end)) - cur;
            let bursts = chunk.div_ceil(self.config.burst_bytes);
            cycles += bursts * self.config.t_burst;
            self.stats.bytes += chunk;
            cur += chunk;
        }
        self.stats.cycles += cycles;
        cycles
    }

    /// Total access energy so far in joules (activate + read/write).
    pub fn energy_j(&self) -> f64 {
        (self.stats.row_misses as f64 * self.config.e_activate_pj
            + self.stats.bytes as f64 * self.config.e_rw_pj_per_byte)
            * 1e-12
    }

    /// Effective energy per byte (J/B) at the observed row-hit rate — the
    /// constant the analytic performance model uses.
    pub fn effective_energy_per_byte(&self) -> f64 {
        if self.stats.bytes == 0 {
            return self.config.e_rw_pj_per_byte * 1e-12;
        }
        self.energy_j() / self.stats.bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stream_mostly_hits() {
        let mut d = Dram::new(DramConfig::default());
        for i in 0..1024u64 {
            d.read(i * 64, 64);
        }
        let s = d.stats();
        assert_eq!(s.bytes, 1024 * 64);
        // 64 KiB over 2 KiB rows: 32 misses, rest hits.
        assert_eq!(s.row_misses, 32);
        assert_eq!(s.row_hits, 1024 - 32);
    }

    #[test]
    fn random_rows_all_miss() {
        let mut d = Dram::new(DramConfig::default());
        // Stride of banks×row_bytes lands in the same bank, new row each time.
        let stride = 8 * 2048u64;
        for i in 0..64u64 {
            d.read(i * stride, 64);
        }
        assert_eq!(d.stats().row_misses, 64);
        assert_eq!(d.stats().row_hits, 0);
    }

    #[test]
    fn misses_cost_more_cycles() {
        let mut hit = Dram::new(DramConfig::default());
        hit.read(0, 64);
        let c_first = hit.read(64, 64); // same row: hit
        let mut miss = Dram::new(DramConfig::default());
        miss.read(0, 64);
        let c_far = miss.read(8 * 2048, 64); // same bank, new row
        assert!(c_far > c_first);
    }

    #[test]
    fn large_access_spans_rows() {
        let mut d = Dram::new(DramConfig::default());
        let cycles = d.read(0, 3 * 2048);
        assert!(cycles > 0);
        // Rows 0,1,2 map to banks 0,1,2 — three activates.
        assert_eq!(d.stats().row_misses, 3);
        assert_eq!(d.stats().bytes, 3 * 2048);
    }

    #[test]
    fn energy_grows_with_misses() {
        let mut seq = Dram::new(DramConfig::default());
        for i in 0..256u64 {
            seq.read(i * 64, 64);
        }
        let mut rand = Dram::new(DramConfig::default());
        for i in 0..256u64 {
            rand.read(i * 8 * 2048, 64);
        }
        assert_eq!(seq.stats().bytes, rand.stats().bytes);
        assert!(rand.energy_j() > seq.energy_j() * 2.0);
        assert!(rand.effective_energy_per_byte() > seq.effective_energy_per_byte());
    }

    #[test]
    fn write_and_read_both_counted() {
        let mut d = Dram::new(DramConfig::default());
        d.write(0, 128);
        d.read(0, 128);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().bytes, 256);
    }
}
