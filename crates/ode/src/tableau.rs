//! Butcher tableaux for explicit Runge–Kutta methods.
//!
//! The paper's reference integrator is RK23 (Fig 2c): four integral states
//! `k1..k4` where the fourth is the FSAL ("first same as last") stage, plus
//! an embedded second-order error estimate `e`. All tableaux here are
//! explicit (strictly lower-triangular `a`).

use std::fmt;

/// An explicit Runge–Kutta method described by its Butcher tableau.
///
/// For `s` stages the method computes integral states
/// `k_i = f(t + c_i·h, y + h·Σ_{j<i} a_{ij}·k_j)` and advances
/// `y_next = y + h·Σ b_i·k_i`. Embedded pairs additionally estimate the
/// local truncation error `e = h·Σ d_i·k_i` from the difference of two
/// orders.
///
/// # Example
///
/// ```
/// use enode_ode::ButcherTableau;
/// let rk23 = ButcherTableau::rk23_bogacki_shampine();
/// assert_eq!(rk23.stages(), 4);
/// assert_eq!(rk23.order(), 3);
/// assert!(rk23.is_adaptive());
/// assert!(rk23.is_fsal());
/// ```
#[derive(Clone, PartialEq)]
pub struct ButcherTableau {
    name: &'static str,
    c: Vec<f64>,
    a: Vec<Vec<f64>>,
    b: Vec<f64>,
    /// Error weights `d = b - b̂`; `e = h·Σ d_i·k_i`.
    err: Option<Vec<f64>>,
    order: u32,
    embedded_order: Option<u32>,
    fsal: bool,
}

impl ButcherTableau {
    /// Builds a tableau from raw coefficients, validating consistency.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are inconsistent, the node condition
    /// `c_i = Σ_j a_{ij}` fails, or `Σ b_i ≠ 1`.
    #[allow(clippy::too_many_arguments)]
    pub fn from_coefficients(
        name: &'static str,
        c: Vec<f64>,
        a: Vec<Vec<f64>>,
        b: Vec<f64>,
        err: Option<Vec<f64>>,
        order: u32,
        embedded_order: Option<u32>,
        fsal: bool,
    ) -> Self {
        let s = b.len();
        assert_eq!(c.len(), s, "c must have one entry per stage");
        assert_eq!(a.len(), s, "a must have one row per stage");
        for (i, row) in a.iter().enumerate() {
            assert_eq!(
                row.len(),
                i,
                "explicit method: row {i} must have {i} entries"
            );
            let row_sum: f64 = row.iter().sum();
            assert!(
                (row_sum - c[i]).abs() < 1e-12,
                "node condition violated at stage {i}: sum(a)={row_sum} c={}",
                c[i]
            );
        }
        let b_sum: f64 = b.iter().sum();
        assert!((b_sum - 1.0).abs() < 1e-12, "consistency: sum(b)={b_sum}");
        if let Some(ref e) = err {
            assert_eq!(e.len(), s, "error weights must have one entry per stage");
            let e_sum: f64 = e.iter().sum();
            assert!(
                e_sum.abs() < 1e-12,
                "error weights must sum to 0, got {e_sum}"
            );
        }
        ButcherTableau {
            name,
            c,
            a,
            b,
            err,
            order,
            embedded_order,
            fsal,
        }
    }

    /// Builds a tableau from raw coefficients WITHOUT validating them.
    ///
    /// This exists for the static-analysis layer (`enode-analysis`), which
    /// needs to represent deliberately inconsistent tableaux so its lint
    /// passes (and their negative tests) can diagnose them instead of
    /// panicking at construction. Everything else should use
    /// [`ButcherTableau::from_coefficients`].
    #[allow(clippy::too_many_arguments)]
    pub fn from_coefficients_unchecked(
        name: &'static str,
        c: Vec<f64>,
        a: Vec<Vec<f64>>,
        b: Vec<f64>,
        err: Option<Vec<f64>>,
        order: u32,
        embedded_order: Option<u32>,
        fsal: bool,
    ) -> Self {
        ButcherTableau {
            name,
            c,
            a,
            b,
            err,
            order,
            embedded_order,
            fsal,
        }
    }

    /// Forward Euler — the integrator a ResNet residual block implements
    /// (paper Fig 1a).
    pub fn euler() -> Self {
        Self::from_coefficients(
            "euler",
            vec![0.0],
            vec![vec![]],
            vec![1.0],
            None,
            1,
            None,
            false,
        )
    }

    /// Explicit midpoint (2nd order).
    pub fn midpoint() -> Self {
        Self::from_coefficients(
            "midpoint",
            vec![0.0, 0.5],
            vec![vec![], vec![0.5]],
            vec![0.0, 1.0],
            None,
            2,
            None,
            false,
        )
    }

    /// Heun's method with an embedded Euler error estimate (2(1) pair).
    pub fn heun_euler() -> Self {
        Self::from_coefficients(
            "heun_euler",
            vec![0.0, 1.0],
            vec![vec![], vec![1.0]],
            vec![0.5, 0.5],
            Some(vec![-0.5, 0.5]),
            2,
            Some(1),
            false,
        )
    }

    /// RK23: the Bogacki–Shampine 3(2) pair — the paper's reference
    /// integrator with integral states `k1..k4` (k4 FSAL) and error state
    /// `e` (Fig 2c).
    pub fn rk23_bogacki_shampine() -> Self {
        let b = [2.0 / 9.0, 1.0 / 3.0, 4.0 / 9.0, 0.0];
        let bhat = [7.0 / 24.0, 0.25, 1.0 / 3.0, 0.125];
        let err: Vec<f64> = b.iter().zip(&bhat).map(|(x, y)| x - y).collect();
        Self::from_coefficients(
            "rk23",
            vec![0.0, 0.5, 0.75, 1.0],
            vec![
                vec![],
                vec![0.5],
                vec![0.0, 0.75],
                vec![2.0 / 9.0, 1.0 / 3.0, 4.0 / 9.0],
            ],
            b.to_vec(),
            Some(err),
            3,
            Some(2),
            true,
        )
    }

    /// The classic fixed-step 4th-order Runge–Kutta method.
    pub fn rk4() -> Self {
        Self::from_coefficients(
            "rk4",
            vec![0.0, 0.5, 0.5, 1.0],
            vec![vec![], vec![0.5], vec![0.0, 0.5], vec![0.0, 0.0, 1.0]],
            vec![1.0 / 6.0, 1.0 / 3.0, 1.0 / 3.0, 1.0 / 6.0],
            None,
            4,
            None,
            false,
        )
    }

    /// RK45: the Runge–Kutta–Fehlberg 5(4) pair.
    pub fn rkf45() -> Self {
        let b5 = [
            16.0 / 135.0,
            0.0,
            6656.0 / 12825.0,
            28561.0 / 56430.0,
            -9.0 / 50.0,
            2.0 / 55.0,
        ];
        let b4 = [
            25.0 / 216.0,
            0.0,
            1408.0 / 2565.0,
            2197.0 / 4104.0,
            -0.2,
            0.0,
        ];
        let err: Vec<f64> = b5.iter().zip(&b4).map(|(x, y)| x - y).collect();
        Self::from_coefficients(
            "rkf45",
            vec![0.0, 0.25, 0.375, 12.0 / 13.0, 1.0, 0.5],
            vec![
                vec![],
                vec![0.25],
                vec![3.0 / 32.0, 9.0 / 32.0],
                vec![1932.0 / 2197.0, -7200.0 / 2197.0, 7296.0 / 2197.0],
                vec![439.0 / 216.0, -8.0, 3680.0 / 513.0, -845.0 / 4104.0],
                vec![
                    -8.0 / 27.0,
                    2.0,
                    -3544.0 / 2565.0,
                    1859.0 / 4104.0,
                    -11.0 / 40.0,
                ],
            ],
            b5.to_vec(),
            Some(err),
            5,
            Some(4),
            false,
        )
    }

    /// Cash–Karp 5(4): the embedded pair of Numerical Recipes' `odeint` —
    /// the solver family the paper's stepsize-search reference \[23\]
    /// describes.
    pub fn cash_karp() -> Self {
        let b5 = [
            37.0 / 378.0,
            0.0,
            250.0 / 621.0,
            125.0 / 594.0,
            0.0,
            512.0 / 1771.0,
        ];
        let b4 = [
            2825.0 / 27648.0,
            0.0,
            18575.0 / 48384.0,
            13525.0 / 55296.0,
            277.0 / 14336.0,
            0.25,
        ];
        let err: Vec<f64> = b5.iter().zip(&b4).map(|(x, y)| x - y).collect();
        Self::from_coefficients(
            "cash_karp",
            vec![0.0, 0.2, 0.3, 0.6, 1.0, 0.875],
            vec![
                vec![],
                vec![0.2],
                vec![3.0 / 40.0, 9.0 / 40.0],
                vec![0.3, -0.9, 1.2],
                vec![-11.0 / 54.0, 2.5, -70.0 / 27.0, 35.0 / 27.0],
                vec![
                    1631.0 / 55296.0,
                    175.0 / 512.0,
                    575.0 / 13824.0,
                    44275.0 / 110592.0,
                    253.0 / 4096.0,
                ],
            ],
            b5.to_vec(),
            Some(err),
            5,
            Some(4),
            false,
        )
    }

    /// DOPRI5: the Dormand–Prince 5(4) pair (FSAL), the default of most
    /// NODE software stacks.
    pub fn dopri5() -> Self {
        let b5 = [
            35.0 / 384.0,
            0.0,
            500.0 / 1113.0,
            125.0 / 192.0,
            -2187.0 / 6784.0,
            11.0 / 84.0,
            0.0,
        ];
        let b4 = [
            5179.0 / 57600.0,
            0.0,
            7571.0 / 16695.0,
            393.0 / 640.0,
            -92097.0 / 339200.0,
            187.0 / 2100.0,
            1.0 / 40.0,
        ];
        let err: Vec<f64> = b5.iter().zip(&b4).map(|(x, y)| x - y).collect();
        Self::from_coefficients(
            "dopri5",
            vec![0.0, 0.2, 0.3, 0.8, 8.0 / 9.0, 1.0, 1.0],
            vec![
                vec![],
                vec![0.2],
                vec![3.0 / 40.0, 9.0 / 40.0],
                vec![44.0 / 45.0, -56.0 / 15.0, 32.0 / 9.0],
                vec![
                    19372.0 / 6561.0,
                    -25360.0 / 2187.0,
                    64448.0 / 6561.0,
                    -212.0 / 729.0,
                ],
                vec![
                    9017.0 / 3168.0,
                    -355.0 / 33.0,
                    46732.0 / 5247.0,
                    49.0 / 176.0,
                    -5103.0 / 18656.0,
                ],
                vec![
                    35.0 / 384.0,
                    0.0,
                    500.0 / 1113.0,
                    125.0 / 192.0,
                    -2187.0 / 6784.0,
                    11.0 / 84.0,
                ],
            ],
            b5.to_vec(),
            Some(err),
            5,
            Some(4),
            true,
        )
    }

    /// Method name (e.g. `"rk23"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of stages `s` (integral states per step — the paper's
    /// "s evaluations of f per integration trial").
    pub fn stages(&self) -> usize {
        self.b.len()
    }

    /// Stage times `c`.
    pub fn c(&self) -> &[f64] {
        &self.c
    }

    /// Stage coefficient rows `a` (row `i` has `i` entries).
    pub fn a(&self) -> &[Vec<f64>] {
        &self.a
    }

    /// Solution weights `b`.
    pub fn b(&self) -> &[f64] {
        &self.b
    }

    /// Error weights `d = b − b̂`, when the method has an embedded pair.
    pub fn error_weights(&self) -> Option<&[f64]> {
        self.err.as_deref()
    }

    /// Order of the advancing solution.
    pub fn order(&self) -> u32 {
        self.order
    }

    /// Order of the embedded (error-estimating) solution, when present.
    pub fn embedded_order(&self) -> Option<u32> {
        self.embedded_order
    }

    /// The order that drives stepsize scaling: `min(order, embedded) + 1`
    /// is the exponent denominator in the classic controller.
    pub fn error_order(&self) -> u32 {
        self.embedded_order.unwrap_or(self.order.saturating_sub(1))
    }

    /// True when the method carries an embedded error estimate and can be
    /// used with adaptive stepsize search.
    pub fn is_adaptive(&self) -> bool {
        self.err.is_some()
    }

    /// True when the last stage equals `f(t+h, y_next)` and can be reused
    /// as the next step's first stage (saving one `f` evaluation).
    pub fn is_fsal(&self) -> bool {
        self.fsal
    }

    /// `Σ_i |b_i|` — the worst-case amplification the solution combine
    /// `y + h Σ b_i k_i` applies to stage magnitudes (used by the static
    /// FP16 range analysis).
    pub fn abs_b_sum(&self) -> f64 {
        self.b.iter().map(|x| x.abs()).sum()
    }

    /// `Σ_i |d_i|` over the error weights, or `0` for fixed-step methods
    /// — the worst-case magnitude scale of the embedded error estimate.
    pub fn abs_error_weight_sum(&self) -> f64 {
        self.err
            .as_deref()
            .map(|d| d.iter().map(|x| x.abs()).sum())
            .unwrap_or(0.0)
    }

    /// Function evaluations per step, accounting for FSAL reuse on
    /// steady-state accepted steps.
    pub fn nfe_per_step(&self) -> usize {
        if self.fsal {
            self.stages() - 1
        } else {
            self.stages()
        }
    }
}

impl fmt::Debug for ButcherTableau {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ButcherTableau({}, s={}, order={}{})",
            self.name,
            self.stages(),
            self.order,
            match self.embedded_order {
                Some(e) => format!("({e})"),
                None => String::new(),
            }
        )
    }
}

impl fmt::Display for ButcherTableau {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// All built-in tableaux (used by the Fig 14/15 integrator sweeps).
pub fn all_tableaux() -> Vec<ButcherTableau> {
    vec![
        ButcherTableau::euler(),
        ButcherTableau::midpoint(),
        ButcherTableau::heun_euler(),
        ButcherTableau::rk23_bogacki_shampine(),
        ButcherTableau::rk4(),
        ButcherTableau::rkf45(),
        ButcherTableau::cash_karp(),
        ButcherTableau::dopri5(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tableaux_validate() {
        // from_coefficients panics on inconsistency; constructing is the test.
        let tabs = all_tableaux();
        assert_eq!(tabs.len(), 8);
    }

    #[test]
    fn rk23_is_fsal() {
        let t = ButcherTableau::rk23_bogacki_shampine();
        // FSAL structurally: the last a-row equals b (so k4 = f(t+h, y_next)).
        let last_row = &t.a()[3];
        for (ai, bi) in last_row.iter().zip(t.b()) {
            assert!((ai - bi).abs() < 1e-15);
        }
        assert_eq!(t.nfe_per_step(), 3);
    }

    #[test]
    fn dopri5_is_fsal() {
        let t = ButcherTableau::dopri5();
        let last_row = &t.a()[6];
        for (ai, bi) in last_row.iter().zip(t.b()) {
            assert!((ai - bi).abs() < 1e-15);
        }
    }

    #[test]
    fn orders() {
        assert_eq!(ButcherTableau::euler().order(), 1);
        assert_eq!(ButcherTableau::rk23_bogacki_shampine().error_order(), 2);
        assert_eq!(ButcherTableau::rkf45().error_order(), 4);
        assert_eq!(ButcherTableau::rk4().error_order(), 3);
    }

    #[test]
    fn abs_weight_sums() {
        // rk23's b weights are all nonnegative and sum to 1.
        let t = ButcherTableau::rk23_bogacki_shampine();
        assert!((t.abs_b_sum() - 1.0).abs() < 1e-12);
        // Its error weights d = b - b̂: Σ|d| ≈ |−5/72| + |1/12| + |1/9| + |−1/8|.
        let expected = 5.0 / 72.0 + 1.0 / 12.0 + 1.0 / 9.0 + 1.0 / 8.0;
        assert!((t.abs_error_weight_sum() - expected).abs() < 1e-12);
        // Fixed-step methods have no error estimate to scale.
        assert_eq!(ButcherTableau::rk4().abs_error_weight_sum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "node condition")]
    fn bad_node_condition_rejected() {
        let _ = ButcherTableau::from_coefficients(
            "bad",
            vec![0.0, 0.3],
            vec![vec![], vec![0.5]],
            vec![0.5, 0.5],
            None,
            2,
            None,
            false,
        );
    }

    #[test]
    #[should_panic(expected = "consistency")]
    fn bad_b_sum_rejected() {
        let _ = ButcherTableau::from_coefficients(
            "bad",
            vec![0.0],
            vec![vec![]],
            vec![0.9],
            None,
            1,
            None,
            false,
        );
    }
}
