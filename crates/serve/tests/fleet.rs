//! Fleet determinism suite: response bits through the fleet router must
//! depend only on `(input, tolerance class, tier)` — never on the worker
//! count per instance, the arrival interleaving, or which instance the
//! consistent hash picked. `ci.sh` runs this suite under
//! `ENODE_THREADS=4` as well, pinning independence from the tensor
//! pool's parallelism.

use enode_node::inference::NodeSolveOptions;
use enode_node::model::NodeModel;
use enode_serve::loadgen::CostModel;
use enode_serve::{simulate_fleet, Clock, Fleet, FleetConfig, FleetLoad};
use enode_tensor::init;

const TENANTS: [&str; 4] = ["vision_a", "vision_b", "keyword_a", "keyword_b"];
const PER_TENANT: usize = 3;

fn models() -> Vec<(&'static str, NodeModel)> {
    let m = NodeModel::dynamic_system(2, 8, 1, 42);
    vec![("edge_default", m.clone()), ("streaming_keyword", m)]
}

/// The fixed workload: every tenant submits `PER_TENANT` requests with
/// seed-determined inputs, identified by `(tenant index, request index)`.
fn workload() -> Vec<(usize, usize)> {
    (0..TENANTS.len())
        .flat_map(|t| (0..PER_TENANT).map(move |k| (t, k)))
        .collect()
}

/// Per-request `(output bits, tier)` keyed by `(tenant, request)`.
type Responses = Vec<((usize, usize), (Vec<u32>, usize))>;

/// Runs the workload in `order` against a shipped fleet with `workers`
/// threads per instance on a virtual clock, and returns the per-request
/// `(output bits, tier)` keyed by `(tenant, request)`.
fn run(workers: usize, order: &[(usize, usize)]) -> Responses {
    let clock = Clock::virtual_at(0);
    let mut fleet = Fleet::new(
        FleetConfig::shipped(),
        &models(),
        NodeSolveOptions::new(1e-4),
        workers,
        clock,
    );
    let mut tickets = Vec::with_capacity(order.len());
    for &(t, k) in order {
        let seed = 1000 + (t * 100 + k) as u64;
        let input = init::uniform(&[1, 2], -1.0, 1.0, seed);
        let ticket = fleet
            .submit_detached(TENANTS[t], input)
            .expect("workload fits every queue");
        tickets.push(((t, k), ticket));
    }
    fleet.drain();
    let mut out: Responses = tickets
        .into_iter()
        .map(|(key, ticket)| {
            let resp = ticket.wait().expect("workload completes");
            let bits = resp.output.data().iter().map(|v| v.to_bits()).collect();
            (key, (bits, resp.tier))
        })
        .collect();
    out.sort_by_key(|&(key, _)| key);
    out
}

#[test]
fn responses_are_bit_identical_across_worker_counts() {
    let order = workload();
    let base = run(1, &order);
    assert_eq!(base.len(), TENANTS.len() * PER_TENANT);
    for workers in [2, 4] {
        assert_eq!(run(workers, &order), base, "workers={workers}");
    }
}

#[test]
fn responses_are_bit_identical_across_arrival_orders() {
    let forward = workload();
    let mut reverse = workload();
    reverse.reverse();
    // Interleave tenants: all first requests, then all second, ...
    let mut interleaved = workload();
    interleaved.sort_by_key(|&(t, k)| (k, t));
    let base = run(2, &forward);
    assert_eq!(run(2, &reverse), base, "reverse order");
    assert_eq!(run(2, &interleaved), base, "interleaved order");
}

#[test]
fn simulated_fleet_sweeps_are_bit_identical() {
    let cfg = FleetConfig::shipped();
    let opts = NodeSolveOptions::new(1e-4);
    let load = FleetLoad {
        requests_per_tenant: 24,
        rate_rps: 120.0,
        input_dim: 2,
        seed: 24301,
    };
    let cost = CostModel {
        per_nfe_us: 20.0,
        dispatch_overhead_us: 150,
        lanes: 4,
    };
    let a = simulate_fleet(&cfg, &models(), &opts, &load, &cost);
    let b = simulate_fleet(&cfg, &models(), &opts, &load, &cost);
    assert_eq!(a, b);
    // The sweep actually exercised the fleet.
    assert!(a.tenants.iter().all(|t| t.completed > 0));
    assert!(a.makespan_us > 0);
}

#[test]
fn node_loss_mid_run_preserves_determinism_for_survivors() {
    let order = workload();
    let run_with_loss = || {
        let clock = Clock::virtual_at(0);
        let mut fleet = Fleet::new(
            FleetConfig::shipped(),
            &models(),
            NodeSolveOptions::new(1e-4),
            2,
            clock,
        );
        fleet.kill_instance(0);
        fleet.kill_instance(2);
        let mut tickets = Vec::new();
        for &(t, k) in &order {
            let seed = 1000 + (t * 100 + k) as u64;
            let input = init::uniform(&[1, 2], -1.0, 1.0, seed);
            tickets.push(((t, k), fleet.submit_detached(TENANTS[t], input).unwrap()));
        }
        fleet.drain();
        let mut out: Responses = tickets
            .into_iter()
            .map(|(key, ticket)| {
                let resp = ticket.wait().expect("survivors absorb the load");
                let bits = resp.output.data().iter().map(|v| v.to_bits()).collect();
                (key, (bits, resp.tier))
            })
            .collect();
        out.sort_by_key(|&(key, _)| key);
        out
    };
    let a = run_with_loss();
    assert_eq!(a, run_with_loss());
    // Rerouted responses keep the same bits as the full fleet at equal
    // tier: bits depend on (input, class, tier), not on the instance.
    let full = run(2, &order);
    for (x, y) in a.iter().zip(&full) {
        assert_eq!(x.0, y.0);
        if x.1 .1 == y.1 .1 {
            assert_eq!(x.1 .0, y.1 .0, "same tier must mean same bits");
        }
    }
}
