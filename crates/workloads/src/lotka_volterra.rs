//! The Lotka–Volterra predator–prey equations (paper eq. 7) — the second
//! dynamic-system benchmark.

use crate::datasets::Dataset;
use enode_ode::controller::ClassicController;
use enode_ode::solver::{solve_adaptive, AdaptiveOptions, Solution};
use enode_ode::tableau::ButcherTableau;
use enode_tensor::rng::Rng64;
use enode_tensor::Tensor;

/// State dimension: prey count `x` and predator count `y`.
pub const STATE_DIM: usize = 2;

/// The Lotka–Volterra system `ẋ = αx − βxy`, `ẏ = δxy − ηy`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LotkaVolterra {
    /// Prey growth rate α.
    pub alpha: f64,
    /// Predation rate β.
    pub beta: f64,
    /// Predator growth per prey δ.
    pub delta: f64,
    /// Predator death rate η.
    pub eta: f64,
}

impl Default for LotkaVolterra {
    fn default() -> Self {
        LotkaVolterra {
            alpha: 1.5,
            beta: 1.0,
            delta: 1.0,
            eta: 3.0,
        }
    }
}

impl LotkaVolterra {
    /// The right-hand side of eq. (7).
    pub fn f(&self, _t: f64, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), STATE_DIM);
        vec![
            self.alpha * y[0] - self.beta * y[0] * y[1],
            self.delta * y[0] * y[1] - self.eta * y[1],
        ]
    }

    /// The conserved quantity `V = δx − η ln x + βy − α ln y` of the
    /// Lotka–Volterra flow (used to validate the integrator).
    pub fn invariant(&self, y: &[f64]) -> f64 {
        self.delta * y[0] - self.eta * y[0].ln() + self.beta * y[1] - self.alpha * y[1].ln()
    }

    /// The nontrivial equilibrium `(η/δ, α/β)`.
    pub fn equilibrium(&self) -> [f64; 2] {
        [self.eta / self.delta, self.alpha / self.beta]
    }

    /// A random initial population pair away from extinction.
    pub fn random_initial(&self, rng: &mut Rng64) -> Vec<f64> {
        vec![rng.gen_range_f64(0.5, 3.0), rng.gen_range_f64(0.5, 3.0)]
    }

    /// High-accuracy ground-truth integration.
    pub fn ground_truth(&self, y0: Vec<f64>, t1: f64) -> Solution<Vec<f64>> {
        let tab = ButcherTableau::rkf45();
        let mut ctl = ClassicController::new(tab.error_order());
        let mut opts = AdaptiveOptions::new(1e-10);
        opts.max_points = 10_000_000;
        solve_adaptive(
            |t, y: &Vec<f64>| self.f(t, y),
            0.0,
            t1,
            y0,
            &tab,
            &mut ctl,
            &opts,
        )
        .expect("lotka-volterra ground truth must integrate")
    }

    /// Observes a ground-truth trajectory at the given times (each `> 0`,
    /// increasing): the supervision format of trajectory fitting.
    ///
    /// # Panics
    ///
    /// Panics if `times` is empty or not strictly increasing.
    pub fn observe(&self, y0: Vec<f64>, times: &[f64]) -> Vec<Tensor> {
        assert!(!times.is_empty() && times.windows(2).all(|w| w[0] < w[1]));
        let sol = self.ground_truth(y0, *times.last().unwrap());
        times
            .iter()
            .map(|&t| {
                let y = sol.sample(t);
                Tensor::from_vec(y.iter().map(|&v| v as f32).collect(), &[1, STATE_DIM])
            })
            .collect()
    }

    /// Builds the regression dataset: initial populations mapped to the
    /// populations at `t1`.
    pub fn dataset(&self, n: usize, t1: f64, seed: u64) -> Dataset {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut inputs = Vec::with_capacity(n * STATE_DIM);
        let mut targets = Vec::with_capacity(n * STATE_DIM);
        for _ in 0..n {
            let y0 = self.random_initial(&mut rng);
            let sol = self.ground_truth(y0.clone(), t1);
            inputs.extend(y0.iter().map(|&v| v as f32));
            targets.extend(sol.final_state().iter().map(|&v| v as f32));
        }
        Dataset::regression(
            Tensor::from_vec(inputs, &[n, STATE_DIM]),
            Tensor::from_vec(targets, &[n, STATE_DIM]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equilibrium_is_stationary() {
        let lv = LotkaVolterra::default();
        let eq = lv.equilibrium();
        let dy = lv.f(0.0, &eq);
        assert!(dy[0].abs() < 1e-12 && dy[1].abs() < 1e-12);
    }

    #[test]
    fn invariant_conserved_along_orbit() {
        let lv = LotkaVolterra::default();
        let y0 = vec![1.0, 1.0];
        let v0 = lv.invariant(&y0);
        let sol = lv.ground_truth(y0, 5.0);
        for p in sol.points.iter().step_by(50) {
            let v = lv.invariant(&p.y);
            assert!(
                (v - v0).abs() < 1e-5,
                "invariant drift at t={}: {v0} -> {v}",
                p.t
            );
        }
    }

    #[test]
    fn populations_stay_positive() {
        let lv = LotkaVolterra::default();
        let sol = lv.ground_truth(vec![0.7, 2.5], 8.0);
        for p in &sol.points {
            assert!(p.y[0] > 0.0 && p.y[1] > 0.0, "extinct at t={}", p.t);
        }
    }

    #[test]
    fn orbit_is_periodic() {
        // LV orbits are closed; the state must return near its start
        // within a few periods. Find the closest return after t > 1.
        let lv = LotkaVolterra::default();
        let y0 = vec![1.0, 1.0];
        let sol = lv.ground_truth(y0.clone(), 12.0);
        let min_dist = sol
            .points
            .iter()
            .filter(|p| p.t > 1.0)
            .map(|p| ((p.y[0] - y0[0]).powi(2) + (p.y[1] - y0[1]).powi(2)).sqrt())
            .fold(f64::INFINITY, f64::min);
        assert!(min_dist < 0.05, "closest return {min_dist}");
    }

    #[test]
    fn dataset_deterministic() {
        let lv = LotkaVolterra::default();
        let a = lv.dataset(4, 1.0, 9);
        let b = lv.dataset(4, 1.0, 9);
        assert_eq!(a.inputs.data(), b.inputs.data());
        assert_eq!(a.inputs.shape(), &[4, 2]);
    }
}
