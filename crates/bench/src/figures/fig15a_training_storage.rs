//! Fig 15(a): normalized training-state storage for depth-first training.

use crate::report;
use enode_hw::config::{HwConfig, LayerDims};
use enode_hw::depthfirst::{
    simulate_training_lifetime_rows, training_state_live_bytes_baseline,
    training_state_live_bytes_enode,
};

/// Runs the Fig 15(a) sweep.
pub fn run() {
    report::banner(
        "Fig 15a",
        "normalized training-state storage (eNODE / baseline)",
    );
    report::header(&["n_conv", "64x64", "128x128", "256x256", "sim-check"]);
    for n_conv in [1usize, 2, 4, 8] {
        let mut cols = vec![n_conv.to_string()];
        let mut sim_note = String::new();
        for &s in &[64usize, 128, 256] {
            let mut cfg = HwConfig::for_layer(LayerDims::new(s, s, 64));
            cfg.n_conv = n_conv;
            let enode = training_state_live_bytes_enode(&cfg) as f64;
            let base = training_state_live_bytes_baseline(&cfg) as f64;
            cols.push(format!("{:.3}", enode / base));
            if s == 64 {
                let sim = simulate_training_lifetime_rows(&cfg) as f64;
                let formula = enode / cfg.layer.row_bytes() as f64;
                sim_note = format!("{:.0}/{:.0} rows", sim, formula);
            }
        }
        cols.push(sim_note);
        let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        report::row(&refs);
    }
    let a = HwConfig::config_a();
    let red = 1.0
        - training_state_live_bytes_enode(&a) as f64
            / training_state_live_bytes_baseline(&a) as f64;
    println!();
    println!("paper: storage reduced by more than 45% for a 4-layer f");
    println!(
        "ours : {:.0}% reduction @ Config A (4-layer f, 64x64x64)",
        red * 100.0
    );
}
