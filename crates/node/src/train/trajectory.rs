//! Trajectory (multi-time) supervision — fitting a NODE to
//! continuous-time data, the modeling regime the paper motivates NODEs
//! with ("representing continuous-time data and learning dynamic
//! systems").
//!
//! The observation times split the integration span into segments; each
//! segment is solved with the usual stepsize search, the loss reads the
//! state at every observation, and the backward pass sweeps the segments
//! in reverse, injecting each observation's loss gradient into the adjoint
//! at its boundary before continuing the ACA recursion.

use crate::inference::{forward_layer, LayerTrace, NodeError, NodeSolveOptions};
use crate::loss::mse;
use crate::train::adjoint::aca_backward_layer;
use enode_tensor::network::Network;
use enode_tensor::optim::Adam;
use enode_tensor::Tensor;

/// A trajectory-fitting problem: observations of the state at increasing
/// times.
#[derive(Clone, Debug)]
pub struct TrajectoryTarget {
    /// Strictly increasing observation times (all > t0).
    pub times: Vec<f64>,
    /// Observed states, one per time, each shaped like the initial state.
    pub states: Vec<Tensor>,
}

impl TrajectoryTarget {
    /// Creates a target, validating monotonicity and alignment.
    ///
    /// # Panics
    ///
    /// Panics if empty, misaligned, or times are not strictly increasing.
    pub fn new(times: Vec<f64>, states: Vec<Tensor>) -> Self {
        assert!(!times.is_empty(), "need at least one observation");
        assert_eq!(times.len(), states.len(), "time/state count mismatch");
        assert!(
            times.windows(2).all(|w| w[0] < w[1]),
            "times must be strictly increasing"
        );
        TrajectoryTarget { times, states }
    }
}

/// The outcome of one trajectory-fitting iteration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrajectoryReport {
    /// Mean MSE across the observations.
    pub loss: f32,
    /// Total stepsize-search trials across all segments.
    pub trials: usize,
    /// Total evaluation points.
    pub points: usize,
}

/// Fits one embedded network `f` to observed trajectories by segmented
/// integration with ACA backward.
#[derive(Debug)]
pub struct TrajectoryTrainer {
    f: Network,
    opts: NodeSolveOptions,
    optimizer: Adam,
    t0: f64,
}

impl TrajectoryTrainer {
    /// Creates a trainer for trajectories starting at `t0`.
    pub fn new(f: Network, opts: NodeSolveOptions, learning_rate: f32, t0: f64) -> Self {
        TrajectoryTrainer {
            f,
            opts,
            optimizer: Adam::new(learning_rate),
            t0,
        }
    }

    /// The fitted dynamics network.
    pub fn network(&self) -> &Network {
        &self.f
    }

    /// Solves the segments forward, returning the state at each
    /// observation time plus the per-segment traces.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError`] if any segment's stepsize search fails.
    pub fn forward(
        &self,
        x0: &Tensor,
        target: &TrajectoryTarget,
    ) -> Result<(Vec<Tensor>, Vec<LayerTrace>), NodeError> {
        let mut state = x0.clone();
        let mut t_prev = self.t0;
        let mut outputs = Vec::with_capacity(target.times.len());
        let mut traces = Vec::with_capacity(target.times.len());
        for &t in &target.times {
            assert!(t > t_prev, "observation time {t} not after {t_prev}");
            let (y, trace) = forward_layer(&self.f, &state, (t_prev, t), &self.opts)?;
            state = y.clone();
            outputs.push(y);
            traces.push(trace);
            t_prev = t;
        }
        Ok((outputs, traces))
    }

    /// One training iteration: segmented forward, per-observation MSE,
    /// reverse sweep with adjoint injection, Adam update.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError`] if the forward pass fails.
    pub fn step(
        &mut self,
        x0: &Tensor,
        target: &TrajectoryTarget,
    ) -> Result<TrajectoryReport, NodeError> {
        let (outputs, traces) = self.forward(x0, target)?;
        let n_obs = outputs.len() as f32;
        let mut loss = 0.0f32;
        let mut obs_grads = Vec::with_capacity(outputs.len());
        for (y, t) in outputs.iter().zip(&target.states) {
            let (l, g) = mse(y, t);
            loss += l / n_obs;
            obs_grads.push(g.scale(1.0 / n_obs));
        }

        // Reverse sweep with gradient injection at each observed boundary.
        let mut grads: Vec<Tensor> = self
            .f
            .params()
            .iter()
            .map(|p| Tensor::zeros(p.shape()))
            .collect();
        let mut a = Tensor::zeros(x0.shape());
        let mut trials = 0;
        let mut points = 0;
        for (trace, g_obs) in traces.iter().zip(&obs_grads).rev() {
            a.axpy(1.0, g_obs);
            let (a_in, seg_grads, _) = aca_backward_layer(&self.f, trace, &a);
            a = a_in;
            for (acc, d) in grads.iter_mut().zip(&seg_grads) {
                acc.axpy(1.0, d);
            }
            trials += trace.stats.trials;
            points += trace.stats.points;
        }

        let mut params = self.f.params_mut();
        self.optimizer.step(&mut params, &grads);
        Ok(TrajectoryReport {
            loss,
            trials,
            points,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enode_tensor::dense::Dense;
    use enode_tensor::init;
    use enode_tensor::network::Op;

    fn mlp(seed: u64) -> Network {
        Network::new(vec![
            Op::ConcatTime,
            Op::dense(Dense::new_seeded(2, 12, seed)),
            Op::tanh(),
            Op::dense(Dense::new_seeded(12, 1, seed + 1)),
        ])
    }

    /// Observations of e^{-t} at several times.
    fn decay_target() -> TrajectoryTarget {
        let times = vec![0.3, 0.7, 1.0, 1.5];
        let states = times
            .iter()
            .map(|&t| Tensor::from_vec(vec![(-t as f32).exp()], &[1, 1]))
            .collect();
        TrajectoryTarget::new(times, states)
    }

    #[test]
    fn forward_visits_every_observation() {
        let trainer = TrajectoryTrainer::new(mlp(1), NodeSolveOptions::new(1e-5), 0.02, 0.0);
        let x0 = Tensor::from_vec(vec![1.0], &[1, 1]);
        let (outputs, traces) = trainer.forward(&x0, &decay_target()).unwrap();
        assert_eq!(outputs.len(), 4);
        assert_eq!(traces.len(), 4);
        // Segments tile [0, 1.5]: last checkpoint of each trace ends at the
        // observation time.
        let ends: Vec<f64> = traces
            .iter()
            .map(|tr| tr.checkpoints.last().unwrap().t)
            .collect();
        for (e, t) in ends.iter().zip(&decay_target().times) {
            assert!((e - t).abs() < 1e-9);
        }
    }

    #[test]
    fn fits_exponential_decay_trajectory() {
        let mut trainer = TrajectoryTrainer::new(mlp(3), NodeSolveOptions::new(1e-4), 0.05, 0.0);
        let x0 = Tensor::from_vec(vec![1.0], &[1, 1]);
        let target = decay_target();
        let first = trainer.step(&x0, &target).unwrap().loss;
        let mut last = first;
        for _ in 0..60 {
            last = trainer.step(&x0, &target).unwrap().loss;
        }
        assert!(
            last < first * 0.1,
            "trajectory loss should drop 10x: {first:.5} -> {last:.5}"
        );
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let f = mlp(5);
        let x0 = init::uniform(&[1, 1], 0.5, 1.0, 6);
        let target = decay_target();
        let opts = NodeSolveOptions::new(1e-6).with_default_dt(0.05);

        // Analytic gradient via one (non-updating) backward sweep.
        let trainer = TrajectoryTrainer::new(f.clone(), opts, 1e-9, 0.0);
        let (outputs, traces) = trainer.forward(&x0, &target).unwrap();
        let n_obs = outputs.len() as f32;
        let mut a = Tensor::zeros(x0.shape());
        let mut grads: Vec<Tensor> = f
            .params()
            .iter()
            .map(|p| Tensor::zeros(p.shape()))
            .collect();
        for (trace, (y, t)) in traces.iter().zip(outputs.iter().zip(&target.states)).rev() {
            let (_, g) = mse(y, t);
            a.axpy(1.0 / n_obs, &g);
            let (a_in, seg, _) = aca_backward_layer(&f, trace, &a);
            a = a_in;
            for (acc, d) in grads.iter_mut().zip(&seg) {
                acc.axpy(1.0, d);
            }
        }

        // Finite differences on a few parameters.
        let loss_of = |f: &Network| {
            let tr = TrajectoryTrainer::new(f.clone(), opts, 1e-9, 0.0);
            let (outs, _) = tr.forward(&x0, &target).unwrap();
            outs.iter()
                .zip(&target.states)
                .map(|(y, t)| mse(y, t).0 / n_obs)
                .sum::<f32>()
        };
        let mut probe = f.clone();
        let eps = 1e-2;
        for (pi, idx) in [(0usize, 0usize), (2, 3), (3, 0)] {
            let orig = probe.params()[pi].data()[idx];
            probe.params_mut()[pi].data_mut()[idx] = orig + eps;
            let lp = loss_of(&probe);
            probe.params_mut()[pi].data_mut()[idx] = orig - eps;
            let lm = loss_of(&probe);
            probe.params_mut()[pi].data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            let an = grads[pi].data()[idx];
            assert!(
                (fd - an).abs() < 5e-2 * fd.abs().max(0.05),
                "grad[{pi}][{idx}]: fd {fd} vs analytic {an}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unordered_times_rejected() {
        let _ = TrajectoryTarget::new(
            vec![0.5, 0.3],
            vec![Tensor::zeros(&[1, 1]), Tensor::zeros(&[1, 1])],
        );
    }
}
