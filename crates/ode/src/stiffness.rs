//! Stiffness diagnostics for explicit integrators.
//!
//! Explicit Runge–Kutta methods (everything the eNODE hardware runs) are
//! stability-limited on stiff problems: the stepsize search keeps
//! rejecting not because accuracy demands small steps but because `h·λ`
//! leaves the stability region. This module provides a local estimate of
//! the dominant eigenvalue magnitude (a directional Lipschitz estimate)
//! and a monitor that classifies a solve as stiffness-limited — a useful
//! deployment diagnostic for NODE models whose trained dynamics drift
//! stiff.

use crate::state::StateOps;

/// Estimates the local logarithmic-norm scale `‖f(y+d) − f(y)‖ / ‖d‖`
/// along the last step direction — an inexpensive proxy for `|λ_max|` of
/// the Jacobian.
///
/// `y_prev` and `y` are two nearby states (e.g. consecutive accepted
/// points) with their derivatives `f_prev`, `f_cur`.
///
/// Returns `None` when the states are too close to measure.
pub fn local_lipschitz<S: StateOps>(y_prev: &S, y: &S, f_prev: &S, f_cur: &S) -> Option<f64> {
    let mut dy = y.clone();
    dy.axpy(-1.0, y_prev);
    let denom = dy.norm_l2();
    if denom < 1e-12 {
        return None;
    }
    let mut df = f_cur.clone();
    df.axpy(-1.0, f_prev);
    Some(df.norm_l2() / denom)
}

/// Classifies whether a solve looks *stiffness-limited*: accepted
/// stepsizes sit near the explicit stability bound `h ≈ c / L` instead of
/// being set by accuracy.
#[derive(Clone, Debug, Default)]
pub struct StiffnessMonitor {
    samples: usize,
    stiff_samples: usize,
    max_h_lambda: f64,
}

impl StiffnessMonitor {
    /// Creates an empty monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one accepted step: stepsize `h` and the local Lipschitz
    /// estimate `lipschitz`.
    pub fn record(&mut self, h: f64, lipschitz: f64) {
        self.samples += 1;
        let h_lambda = h * lipschitz;
        self.max_h_lambda = self.max_h_lambda.max(h_lambda);
        // An explicit RK of modest order is stable for h·λ up to ~2–3;
        // running persistently above 1 means the stepsize is pressed
        // against the stability bound.
        if h_lambda > 1.0 {
            self.stiff_samples += 1;
        }
    }

    /// Steps recorded.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Largest observed `h·λ̂`.
    pub fn max_h_lambda(&self) -> f64 {
        self.max_h_lambda
    }

    /// Fraction of steps pressed against the stability bound.
    pub fn stiff_fraction(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.stiff_samples as f64 / self.samples as f64
        }
    }

    /// True when the solve looks stiffness-limited: a substantial share of
    /// steps at the stability bound and at least one clear excursion.
    ///
    /// The directional Lipschitz estimate under-reads once the trajectory
    /// settles on the slow manifold (the step direction loses its fast
    /// components), so the fraction threshold is deliberately below ½.
    pub fn is_stiff(&self) -> bool {
        self.samples >= 5 && self.stiff_fraction() > 0.25 && self.max_h_lambda > 2.0
    }
}

/// Runs an adaptive solve and classifies its stiffness, using stored FSAL
/// derivatives where available and recomputing `f` otherwise.
pub fn classify_solve<S: StateOps>(
    mut f: impl FnMut(f64, &S) -> S,
    solution: &crate::solver::Solution<S>,
) -> StiffnessMonitor {
    let mut monitor = StiffnessMonitor::new();
    let mut prev_t = solution.t0;
    let mut prev_y = solution.y0.clone();
    let mut prev_f = f(prev_t, &prev_y);
    for p in &solution.points {
        let cur_f = match &p.dy {
            Some(d) => d.clone(),
            None => f(p.t, &p.y),
        };
        if let Some(l) = local_lipschitz(&prev_y, &p.y, &prev_f, &cur_f) {
            monitor.record(p.dt, l);
        }
        prev_t = p.t;
        prev_y = p.y.clone();
        prev_f = cur_f;
    }
    let _ = prev_t;
    monitor
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ClassicController;
    use crate::solver::{solve_adaptive, AdaptiveOptions};
    use crate::tableau::ButcherTableau;

    fn solve(
        f: impl FnMut(f64, &Vec<f64>) -> Vec<f64> + Copy,
        t1: f64,
        tol: f64,
    ) -> crate::solver::Solution<Vec<f64>> {
        let tab = ButcherTableau::rk23_bogacki_shampine();
        let mut ctl = ClassicController::new(tab.error_order());
        solve_adaptive(
            f,
            0.0,
            t1,
            vec![1.0],
            &tab,
            &mut ctl,
            &AdaptiveOptions::new(tol),
        )
        .unwrap()
    }

    #[test]
    fn lipschitz_recovers_linear_rate() {
        // For y' = -λy the directional Lipschitz estimate equals λ.
        let y_prev = vec![1.0];
        let y = vec![0.9];
        let f_prev = vec![-50.0 * 1.0];
        let f_cur = vec![-50.0 * 0.9];
        let l = local_lipschitz(&y_prev, &y, &f_prev, &f_cur).unwrap();
        assert!((l - 50.0).abs() < 1e-9);
    }

    #[test]
    fn stiff_problem_detected() {
        // y' = -200(y - cos t): a classic stiff test. At loose tolerance
        // the accuracy-optimal step is far larger than stability allows,
        // so the solver runs pressed against h·λ ≈ O(1).
        let stiff = |t: f64, y: &Vec<f64>| vec![-200.0 * (y[0] - t.cos())];
        let sol = solve(stiff, 2.0, 1e-3);
        let m = classify_solve(stiff, &sol);
        assert!(
            m.is_stiff(),
            "h·λ max {} frac {}",
            m.max_h_lambda(),
            m.stiff_fraction()
        );
    }

    #[test]
    fn nonstiff_problem_not_flagged() {
        let gentle = |_t: f64, y: &Vec<f64>| vec![-0.5 * y[0]];
        let sol = solve(gentle, 2.0, 1e-6);
        let m = classify_solve(gentle, &sol);
        assert!(!m.is_stiff(), "frac {}", m.stiff_fraction());
        assert!(m.max_h_lambda() < 1.0);
    }

    #[test]
    fn identical_states_yield_none() {
        let y = vec![1.0, 2.0];
        assert!(local_lipschitz(&y, &y, &vec![0.1, 0.2], &vec![0.1, 0.2]).is_none());
    }
}
