//! `enode-sanitize`: machine checks for the unsafe parallel surface.
//!
//! [`crate::parallel`]'s disjoint helpers hand raw pointers to worker
//! threads on the promise that every lane writes non-overlapping strides.
//! This module turns that promise — previously enforced only by `SAFETY`
//! comments and asserts — into two machine checks:
//!
//! 1. **Shadow-memory write tracking** (behind the `sanitize` cargo
//!    feature): every parallel region registers a shadow [`Region`] for
//!    each buffer it splits, and every lane *claims* the byte range it is
//!    about to write. The tracker fails fast — naming the kernel, the
//!    buffer, and both offending lane indices — on any overlapping claim,
//!    double-claim, or out-of-region claim, and verifies on region exit
//!    that the claims tiled the whole buffer (catching short, off-by-one
//!    strides that leave a gap). Per-thread scratch checkouts
//!    ([`crate::parallel::with_scratch_f32`]) register their address
//!    ranges the same way, so an arena bug that ever handed two live
//!    checkouts aliasing memory is caught at the checkout. With the
//!    feature disabled every entry point is an inlined no-op, so default
//!    builds pay nothing.
//!
//! 2. **Schedule-permutation determinism audit** ([`audit`], always
//!    compiled): re-executes a kernel under the matrix of pool widths
//!    (1/2/4/7), permuted lane orders
//!    ([`crate::parallel::with_schedule`]), and adversarial grain sizes
//!    ([`crate::parallel::with_grain_override`]), asserting the
//!    bit-identical determinism contract of DESIGN.md §8. A reduction
//!    that combines partials in lane-completion order instead of item
//!    order produces different bits under a permuted schedule and is
//!    reported with the exact failing configuration.
//!
//! Kernels label their parallel regions with [`kernel_scope`] so shadow
//! reports say `conv2d::backward_params`, not just a buffer name.
//!
//! The static complement of these runtime checks — stride divisibility,
//! grain degeneracy, scratch sizing, and reduction-order lints over the
//! registered kernel splits — lives in `enode_analysis::parallelcheck`
//! (codes `E040`–`E042`, `W040`–`W043`).

use std::ops::Range;

// ---------------------------------------------------------------------------
// Kernel labels
// ---------------------------------------------------------------------------

#[cfg(feature = "sanitize")]
thread_local! {
    static KERNEL: std::cell::Cell<&'static str> = const { std::cell::Cell::new("<unlabeled>") };
}

/// RAII guard restoring the previous kernel label on drop.
pub struct KernelScope {
    #[cfg(feature = "sanitize")]
    prev: &'static str,
}

/// Names the kernel for every shadow region entered while the returned
/// guard is live (e.g. `"conv2d::forward"`). A no-op without the
/// `sanitize` feature.
#[inline]
pub fn kernel_scope(label: &'static str) -> KernelScope {
    #[cfg(feature = "sanitize")]
    {
        KernelScope {
            prev: KERNEL.replace(label),
        }
    }
    #[cfg(not(feature = "sanitize"))]
    {
        let _ = label;
        KernelScope {}
    }
}

#[cfg(feature = "sanitize")]
impl Drop for KernelScope {
    fn drop(&mut self) {
        KERNEL.set(self.prev);
    }
}

/// The kernel label currently in scope on this thread.
#[cfg(feature = "sanitize")]
pub fn current_kernel() -> &'static str {
    KERNEL.get()
}

// ---------------------------------------------------------------------------
// Shadow memory (real implementation)
// ---------------------------------------------------------------------------

#[cfg(feature = "sanitize")]
mod shadow {
    use super::Range;
    use std::collections::HashMap;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Locks ignoring poisoning: the sanitizer reports by panicking while
    /// holding this lock, and later regions must still be able to
    /// register/deregister.
    fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    struct RegionState {
        kernel: &'static str,
        buffer: &'static str,
        len: usize,
        claims: Vec<(usize, Range<usize>)>,
    }

    #[derive(Default)]
    struct ShadowState {
        next_id: u64,
        regions: HashMap<u64, RegionState>,
        scratch: Vec<(u64, usize, usize)>,
    }

    fn state() -> &'static Mutex<ShadowState> {
        static STATE: OnceLock<Mutex<ShadowState>> = OnceLock::new();
        STATE.get_or_init(|| Mutex::new(ShadowState::default()))
    }

    /// A live shadow region over one buffer of one parallel region.
    /// Deregisters on drop; on a non-panicking exit it additionally
    /// verifies that the recorded claims tiled `0..len` exactly.
    pub struct Region {
        id: u64,
    }

    /// Registers a shadow region of `len` units (bytes for buffers, items
    /// for index spaces) under the current [`super::kernel_scope`] label.
    pub fn region_enter(buffer: &'static str, len: usize) -> Region {
        let mut s = lock(state());
        s.next_id += 1;
        let id = s.next_id;
        s.regions.insert(
            id,
            RegionState {
                kernel: super::current_kernel(),
                buffer,
                len,
                claims: Vec::new(),
            },
        );
        Region { id }
    }

    /// Records lane `lane`'s intent to write `span` of the region.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-region span, a double-claim of an identical
    /// span, or any overlap with another lane's claim — naming the
    /// kernel, the buffer, and both lane indices.
    pub fn claim(region: &Region, lane: usize, span: Range<usize>) {
        if span.is_empty() {
            return;
        }
        let mut s = lock(state());
        let r = s
            .regions
            .get_mut(&region.id)
            .expect("sanitize: claim on a closed shadow region");
        assert!(
            span.end <= r.len,
            "sanitize: out-of-region write in kernel `{}` (buffer `{}`): \
             lane {} claimed {}..{} but the region is {} units long",
            r.kernel,
            r.buffer,
            lane,
            span.start,
            span.end,
            r.len
        );
        for (other_lane, other) in &r.claims {
            if span.start < other.end && other.start < span.end {
                if *other == span {
                    panic!(
                        "sanitize: double-claim in kernel `{}` (buffer `{}`): \
                         lane {} re-claimed {}..{} already claimed by lane {}",
                        r.kernel, r.buffer, lane, span.start, span.end, other_lane
                    );
                }
                panic!(
                    "sanitize: overlapping write in kernel `{}` (buffer `{}`): \
                     lane {} claimed {}..{}, which overlaps lane {}'s claim {}..{}",
                    r.kernel,
                    r.buffer,
                    lane,
                    span.start,
                    span.end,
                    other_lane,
                    other.start,
                    other.end
                );
            }
        }
        r.claims.push((lane, span));
    }

    impl Drop for Region {
        fn drop(&mut self) {
            let removed = lock(state()).regions.remove(&self.id);
            // During unwinding only deregister — the shadow map must not
            // leak claims past a panicking lane, and a second panic here
            // would abort the process.
            if std::thread::panicking() {
                return;
            }
            let Some(r) = removed else { return };
            let mut claims = r.claims;
            claims.sort_by_key(|(_, s)| s.start);
            let mut cursor = 0usize;
            for (lane, span) in &claims {
                assert!(
                    span.start == cursor,
                    "sanitize: coverage gap in kernel `{}` (buffer `{}`): \
                     units {}..{} were never claimed (next claim is lane {}'s {}..{})",
                    r.kernel,
                    r.buffer,
                    cursor,
                    span.start,
                    lane,
                    span.start,
                    span.end
                );
                cursor = span.end;
            }
            assert!(
                cursor == r.len,
                "sanitize: coverage gap in kernel `{}` (buffer `{}`): \
                 trailing units {}..{} were never claimed",
                r.kernel,
                r.buffer,
                cursor,
                r.len
            );
        }
    }

    /// A live scratch-arena checkout registration. Deregisters on drop,
    /// including during unwinding.
    pub struct ScratchGuard {
        id: u64,
    }

    /// Registers a scratch checkout spanning `addr..addr + len_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if the range aliases any other live checkout (the arena
    /// contract is that every live checkout is a distinct buffer).
    pub fn scratch_guard(addr: usize, len_bytes: usize) -> ScratchGuard {
        let mut s = lock(state());
        s.next_id += 1;
        let id = s.next_id;
        let end = addr + len_bytes;
        for &(_, start, other_end) in &s.scratch {
            assert!(
                !(addr < other_end && start < end),
                "sanitize: scratch arenas alias in kernel `{}`: \
                 checkout {addr:#x}..{end:#x} overlaps live checkout {start:#x}..{other_end:#x}",
                super::current_kernel()
            );
        }
        s.scratch.push((id, addr, end));
        ScratchGuard { id }
    }

    impl Drop for ScratchGuard {
        fn drop(&mut self) {
            let mut s = lock(state());
            s.scratch.retain(|&(id, _, _)| id != self.id);
        }
    }

    /// Number of live shadow regions (0 outside any parallel region; used
    /// by the panic-safety tests to prove claims are not leaked).
    pub fn active_regions() -> usize {
        lock(state()).regions.len()
    }

    /// Number of live scratch checkouts.
    pub fn active_scratch() -> usize {
        lock(state()).scratch.len()
    }
}

#[cfg(feature = "sanitize")]
pub use shadow::{
    active_regions, active_scratch, claim, region_enter, scratch_guard, Region, ScratchGuard,
};

// ---------------------------------------------------------------------------
// Shadow memory (disabled: inlined no-ops)
// ---------------------------------------------------------------------------

/// Disabled shadow region — a zero-sized no-op.
#[cfg(not(feature = "sanitize"))]
pub struct Region {}

/// Disabled scratch registration — a zero-sized no-op.
#[cfg(not(feature = "sanitize"))]
pub struct ScratchGuard {}

#[cfg(not(feature = "sanitize"))]
#[inline(always)]
pub fn region_enter(_buffer: &'static str, _len: usize) -> Region {
    Region {}
}

#[cfg(not(feature = "sanitize"))]
#[inline(always)]
pub fn claim(_region: &Region, _lane: usize, _span: Range<usize>) {}

#[cfg(not(feature = "sanitize"))]
#[inline(always)]
pub fn scratch_guard(_addr: usize, _len_bytes: usize) -> ScratchGuard {
    ScratchGuard {}
}

#[cfg(not(feature = "sanitize"))]
#[inline(always)]
pub fn active_regions() -> usize {
    0
}

#[cfg(not(feature = "sanitize"))]
#[inline(always)]
pub fn active_scratch() -> usize {
    0
}

// ---------------------------------------------------------------------------
// Schedule-permutation determinism audit
// ---------------------------------------------------------------------------

/// The determinism-audit harness: replays a kernel across pool widths,
/// permuted lane schedules, and adversarial grain overrides, and compares
/// raw `f32` bit patterns against the serial baseline.
pub mod audit {
    use crate::parallel::{self, Schedule};
    use std::fmt;

    /// Pool widths every audited kernel runs under: serial, the even
    /// widths the determinism suites always used, and a prime width so
    /// chunk boundaries land mid-structure in every decomposition.
    pub const AUDIT_THREADS: [usize; 4] = [1, 2, 4, 7];

    /// One cell of the audit matrix.
    #[derive(Clone, Copy, Debug)]
    pub struct AuditCase {
        /// Pool width for the run.
        pub threads: usize,
        /// `Some` replays every broadcast serially in the permuted lane
        /// order; `None` executes on the live pool.
        pub schedule: Option<Schedule>,
        /// `Some` overrides every kernel's grain (1 forces maximal
        /// splitting; `usize::MAX` forces a single serial chunk).
        pub grain: Option<usize>,
    }

    impl fmt::Display for AuditCase {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "threads={}", self.threads)?;
            match self.schedule {
                Some(s) => write!(f, " schedule={s:?}")?,
                None => write!(f, " schedule=live")?,
            }
            match self.grain {
                Some(usize::MAX) => write!(f, " grain=serial"),
                Some(g) => write!(f, " grain={g}"),
                None => write!(f, " grain=kernel"),
            }
        }
    }

    /// The standard audit matrix (see DESIGN.md §9): every pool width on
    /// the live schedule, reversed and rotated replays, and the two
    /// adversarial grains.
    pub fn standard_cases() -> Vec<AuditCase> {
        let mut cases = Vec::new();
        for &t in &AUDIT_THREADS {
            cases.push(AuditCase {
                threads: t,
                schedule: None,
                grain: None,
            });
        }
        for &t in &[2usize, 4, 7] {
            cases.push(AuditCase {
                threads: t,
                schedule: Some(Schedule::Reverse),
                grain: None,
            });
        }
        cases.push(AuditCase {
            threads: 4,
            schedule: Some(Schedule::Rotate(1)),
            grain: None,
        });
        cases.push(AuditCase {
            threads: 7,
            schedule: Some(Schedule::Rotate(3)),
            grain: None,
        });
        for &t in &[2usize, 7] {
            cases.push(AuditCase {
                threads: t,
                schedule: None,
                grain: Some(1),
            });
        }
        cases.push(AuditCase {
            threads: 4,
            schedule: Some(Schedule::Reverse),
            grain: Some(1),
        });
        cases.push(AuditCase {
            threads: 4,
            schedule: None,
            grain: Some(usize::MAX),
        });
        cases
    }

    /// Runs `f` once under the case's pool width, schedule, and grain.
    pub fn run_case<R>(case: AuditCase, f: impl FnOnce() -> R) -> R {
        parallel::with_threads(case.threads, move || {
            let body = move || match case.grain {
                Some(g) => parallel::with_grain_override(g, f),
                None => f(),
            };
            match case.schedule {
                Some(s) => parallel::with_schedule(s, body),
                None => body(),
            }
        })
    }

    /// Replays `f` (which returns the kernel's raw output buffers) across
    /// [`standard_cases`] and compares every buffer bit-for-bit against
    /// the 1-thread baseline.
    ///
    /// # Errors
    ///
    /// Returns the failing case, buffer, and first differing element when
    /// any run is not bit-identical to the baseline.
    pub fn check_determinism<F>(label: &str, f: F) -> Result<(), String>
    where
        F: Fn() -> Vec<Vec<f32>>,
    {
        let bits = |bufs: Vec<Vec<f32>>| -> Vec<Vec<u32>> {
            bufs.into_iter()
                .map(|b| b.into_iter().map(f32::to_bits).collect())
                .collect()
        };
        let baseline = bits(parallel::with_threads(1, &f));
        for case in standard_cases() {
            let got = bits(run_case(case, &f));
            if got == baseline {
                continue;
            }
            if got.len() != baseline.len() {
                return Err(format!(
                    "determinism audit failed for `{label}` under {case}: \
                     {} output buffers vs {} in the serial baseline",
                    got.len(),
                    baseline.len()
                ));
            }
            for (bi, (g, b)) in got.iter().zip(&baseline).enumerate() {
                if g == b {
                    continue;
                }
                let at = g
                    .iter()
                    .zip(b)
                    .position(|(x, y)| x != y)
                    .unwrap_or(g.len().min(b.len()));
                return Err(format!(
                    "determinism audit failed for `{label}` under {case}: \
                     buffer {bi} first differs at element {at} \
                     ({:?} vs serial {:?})",
                    g.get(at).copied().map(f32::from_bits),
                    b.get(at).copied().map(f32::from_bits),
                ));
            }
            unreachable!("buffers compared unequal but no element differs");
        }
        Ok(())
    }

    /// [`check_determinism`], panicking with the report on failure.
    ///
    /// # Panics
    ///
    /// Panics when any audit case deviates from the serial baseline.
    pub fn assert_deterministic<F>(label: &str, f: F)
    where
        F: Fn() -> Vec<Vec<f32>>,
    {
        if let Err(e) = check_determinism(label, f) {
            panic!("{e}");
        }
    }
}
