//! E104 parity: drives the real runtime under the `synctrace` feature
//! and proves the observed synchronization behaviour — every lock
//! acquisition edge, every condvar waited or notified — stays inside the
//! declared skeletons' transitive closure. Runs at 1, 2 and 4 workers so
//! the interleavings the recorder sees cover single-worker, handoff and
//! contended schedules.
//!
//! Without the feature the recorder is a no-op and this whole file is
//! compiled out; CI runs it explicitly with `--features synctrace`.

#![cfg(feature = "synctrace")]

use enode_node::inference::NodeSolveOptions;
use enode_node::model::NodeModel;
use enode_serve::{
    skeleton, synctrace, Clock, Priority, Rejected, Request, ServeConfig, Server, ToleranceClass,
};
use enode_tensor::init;
use enode_tensor::parallel::ThreadPool;

fn req(seed: u64, deadline_us: u64) -> Request {
    Request {
        input: init::uniform(&[1, 2], -1.0, 1.0, seed),
        deadline_us,
        tolerance_class: ToleranceClass::Standard,
        priority: Priority::Normal,
    }
}

/// Exercises every declared server path: admission, batching, delivery,
/// deadline shedding, drain, a post-shutdown rejection, and shutdown's
/// queue sweep.
fn drive_server(workers: usize) {
    let mut cfg = ServeConfig::edge_default();
    cfg.workers = workers;
    let clock = Clock::virtual_at(0);
    let mut s = Server::new(
        NodeModel::dynamic_system(2, 8, 1, 42),
        NodeSolveOptions::new(1e-4),
        cfg,
        clock.clone(),
    );
    let mut tickets = Vec::new();
    for i in 0..6 {
        tickets.push(s.submit(req(i, 1_000_000)).unwrap());
    }
    tickets.push(s.submit(req(90, 2_000)).unwrap()); // will expire
    clock.set_us(5_000);
    s.drain();
    let swept = s.submit(req(91, 1_000_000)).unwrap();
    s.shutdown();
    assert_eq!(
        s.submit(req(92, 1_000_000)).unwrap_err(),
        Rejected::ShuttingDown
    );
    for t in tickets {
        let _ = t.wait();
    }
    assert_eq!(swept.wait(), Err(Rejected::ShuttingDown));
}

#[test]
fn observed_sync_behaviour_stays_inside_the_declared_skeletons() {
    assert!(synctrace::enabled());
    synctrace::reset();

    for workers in [1, 2, 4] {
        drive_server(workers);
    }

    // The worker pool's broadcast/wait/drop protocol, at the same widths.
    for threads in [2, 4] {
        let pool = ThreadPool::new(threads);
        for _round in 0..3 {
            let lanes_run = std::sync::atomic::AtomicUsize::new(0);
            pool.broadcast(&|lane, lanes| {
                assert!(lane < lanes);
                lanes_run.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
            assert_eq!(lanes_run.into_inner(), threads);
        }
        drop(pool);
    }

    let report = synctrace::capture();
    assert!(
        !report.edges.is_empty() || !report.locks.is_empty(),
        "the recorder must have observed the runtime"
    );
    let drift = report.undeclared(&skeleton::registered_skeletons());
    assert!(
        drift.is_empty(),
        "E104 model drift — observed behaviour outside the declarations:\n{}",
        drift.join("\n")
    );
}
