//! Model evaluation utilities: confusion matrices and the
//! accuracy-versus-compute trade-off curve (the axis along which every
//! eNODE algorithm knob — ε, s_acc/s_rej, Ĥ — moves a deployment).

use crate::inference::{forward_model, ForwardTrace, NodeError, NodeSolveOptions, SolveOverride};
use crate::loss::cross_entropy_logits;
use crate::model::NodeModel;
use enode_tensor::{parallel, Tensor};

/// A confusion matrix for a `k`-class classifier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfusionMatrix {
    k: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// An empty `k × k` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "need at least one class");
        ConfusionMatrix {
            k,
            counts: vec![0; k * k],
        }
    }

    /// Builds the matrix from logits `[N, K]` and true labels.
    ///
    /// # Panics
    ///
    /// Panics if shapes/labels are inconsistent.
    pub fn from_logits(logits: &Tensor, labels: &[usize]) -> Self {
        let (n, k) = (logits.shape()[0], logits.shape()[1]);
        assert_eq!(labels.len(), n, "one label per sample");
        let mut m = ConfusionMatrix::new(k);
        for (ni, &label) in labels.iter().enumerate() {
            let row = &logits.data()[ni * k..(ni + 1) * k];
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            m.record(label, pred);
        }
        m
    }

    /// Records one `(true, predicted)` observation.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(truth < self.k && predicted < self.k, "class out of range");
        self.counts[truth * self.k + predicted] += 1;
    }

    /// Count of samples with true class `t` predicted as `p`.
    pub fn count(&self, truth: usize, predicted: usize) -> u64 {
        self.counts[truth * self.k + predicted]
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: u64 = (0..self.k).map(|i| self.count(i, i)).sum();
        if self.total() == 0 {
            0.0
        } else {
            correct as f64 / self.total() as f64
        }
    }

    /// Recall of one class (diagonal / row sum), `None` when unseen.
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row: u64 = (0..self.k).map(|p| self.count(class, p)).sum();
        if row == 0 {
            None
        } else {
            Some(self.count(class, class) as f64 / row as f64)
        }
    }
}

/// Runs the NODE forward pass sample-by-sample, in parallel across the
/// workspace pool ([`enode_tensor::parallel`]).
///
/// Each sample gets an independent solve — its own stepsize-search
/// schedule, like the per-input inference an edge deployment performs —
/// so this is *not* numerically interchangeable with calling
/// [`forward_model`] on the whole batch, where the stepsize controller
/// sees the batch-wide error norm. What is guaranteed: the per-sample
/// decomposition is fixed regardless of the pool width, so the result is
/// bit-identical for any `ENODE_THREADS`.
///
/// Returns the stacked outputs `[N, ...]` and one [`ForwardTrace`] per
/// sample. On failure, reports the error of the lowest-indexed failing
/// sample.
///
/// # Errors
///
/// Returns [`NodeError`] if any sample's forward pass fails.
///
/// # Panics
///
/// Panics if `inputs` has no samples.
pub fn forward_model_batched(
    model: &NodeModel,
    inputs: &Tensor,
    opts: &NodeSolveOptions,
) -> Result<(Tensor, Vec<ForwardTrace>), NodeError> {
    forward_model_batched_with(model, inputs, opts, SolveOverride::NONE)
}

/// [`forward_model_batched`] with a per-call [`SolveOverride`]: the
/// serving runtime's degradation tiers re-dispatch the *same* model at a
/// coarser tolerance, smaller trial budget, or cheaper integrator without
/// rebuilding it. `SolveOverride::NONE` is exactly the plain entry point.
///
/// # Errors
///
/// Returns [`NodeError`] if any sample's forward pass fails.
///
/// # Panics
///
/// Panics if `inputs` has no samples or the override carries an invalid
/// tolerance or trial budget.
pub fn forward_model_batched_with(
    model: &NodeModel,
    inputs: &Tensor,
    opts: &NodeSolveOptions,
    ovr: SolveOverride,
) -> Result<(Tensor, Vec<ForwardTrace>), NodeError> {
    let _kernel = enode_tensor::sanitize::kernel_scope("node.forward_model_batched");
    let opts = &ovr.apply(opts);
    let n = inputs.shape()[0];
    assert!(n > 0, "batched inference needs at least one sample");
    let sample_len = inputs.len() / n;
    let mut sample_shape = inputs.shape().to_vec();
    sample_shape[0] = 1;
    let indices: Vec<usize> = (0..n).collect();
    let results = parallel::parallel_map(&indices, |&ni| {
        let sample = Tensor::from_vec(
            inputs.data()[ni * sample_len..(ni + 1) * sample_len].to_vec(),
            &sample_shape,
        );
        forward_model(model, &sample, opts)
    });
    let mut outputs: Vec<Tensor> = Vec::with_capacity(n);
    let mut traces: Vec<ForwardTrace> = Vec::with_capacity(n);
    for res in results {
        let (y, trace) = res?;
        outputs.push(y);
        traces.push(trace);
    }
    let mut out_shape = outputs[0].shape().to_vec();
    out_shape[0] = n;
    let mut data = Vec::with_capacity(n * outputs[0].len());
    for y in &outputs {
        data.extend_from_slice(y.data());
    }
    Ok((Tensor::from_vec(data, &out_shape), traces))
}

/// Affine access summary of the per-sample fan-out in
/// [`forward_model_batched`]: one solve per item via `parallel_map`,
/// each writing its own result slot (the coarse one-slot-per-item
/// shape; the per-solve tensor arithmetic is internal to the item).
pub fn batched_access(n: usize) -> enode_tensor::access::KernelAccessSummary {
    enode_tensor::access::KernelAccessSummary::coarse_fanout(
        "node.forward_model_batched",
        n,
        1 << 20,
        64,
    )
}

/// One point of an accuracy-vs-compute sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TradeoffPoint {
    /// Error tolerance ε used.
    pub tolerance: f64,
    /// Classification accuracy.
    pub accuracy: f64,
    /// Function evaluations per sample.
    pub nfe_per_sample: f64,
    /// Trials per integration layer.
    pub trials_per_layer: f64,
}

/// Sweeps the tolerance and measures accuracy vs compute for a classifier
/// model on a labeled batch.
///
/// # Errors
///
/// Returns [`NodeError`] if any forward pass fails.
pub fn tolerance_tradeoff(
    model: &NodeModel,
    inputs: &Tensor,
    labels: &[usize],
    base_opts: &NodeSolveOptions,
    tolerances: &[f64],
) -> Result<Vec<TradeoffPoint>, NodeError> {
    let n = inputs.shape()[0] as f64;
    let mut out = Vec::with_capacity(tolerances.len());
    for &tol in tolerances {
        let mut opts = *base_opts;
        opts.tolerance = tol;
        let (logits, trace) = forward_model(model, inputs, &opts)?;
        let (_, _, acc) = cross_entropy_logits(&logits, labels);
        out.push(TradeoffPoint {
            tolerance: tol,
            accuracy: acc as f64,
            nfe_per_sample: trace.total_stats().nfe as f64 / n,
            trials_per_layer: trace.trials_per_layer(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::NodeSolveOptions;

    #[test]
    fn confusion_counts_and_accuracy() {
        let mut m = ConfusionMatrix::new(3);
        m.record(0, 0);
        m.record(0, 1);
        m.record(1, 1);
        m.record(2, 2);
        assert_eq!(m.total(), 4);
        assert_eq!(m.count(0, 1), 1);
        assert!((m.accuracy() - 0.75).abs() < 1e-12);
        assert_eq!(m.recall(0), Some(0.5));
        assert_eq!(m.recall(1), Some(1.0));
    }

    #[test]
    fn from_logits_uses_argmax() {
        let logits = Tensor::from_vec(vec![2.0, 0.0, 0.0, 3.0], &[2, 2]);
        let m = ConfusionMatrix::from_logits(&logits, &[0, 0]);
        assert_eq!(m.count(0, 0), 1);
        assert_eq!(m.count(0, 1), 1);
    }

    #[test]
    fn unseen_class_recall_is_none() {
        let m = ConfusionMatrix::new(2);
        assert_eq!(m.recall(1), None);
    }

    #[test]
    fn batched_inference_matches_per_sample_loop() {
        let model = NodeModel::image_classifier(3, 1, 1, 4, 1);
        let inputs = enode_tensor::init::uniform(&[3, 3, 6, 6], -1.0, 1.0, 9);
        let opts = NodeSolveOptions::new(1e-3);
        let (batched, traces) = forward_model_batched(&model, &inputs, &opts).unwrap();
        assert_eq!(traces.len(), 3);
        let sample_len = inputs.len() / 3;
        for ni in 0..3 {
            let sample = Tensor::from_vec(
                inputs.data()[ni * sample_len..(ni + 1) * sample_len].to_vec(),
                &[1, 3, 6, 6],
            );
            let (y, _) = crate::inference::forward_model(&model, &sample, &opts).unwrap();
            assert_eq!(
                &batched.data()[ni * y.len()..(ni + 1) * y.len()],
                y.data(),
                "sample {ni} differs from its standalone solve"
            );
        }
    }

    #[test]
    fn override_none_is_identity_and_fields_apply() {
        let model = NodeModel::dynamic_system(2, 8, 1, 3);
        let inputs = enode_tensor::init::uniform(&[2, 2], -1.0, 1.0, 4);
        let opts = NodeSolveOptions::new(1e-5);
        let (y_plain, t_plain) = forward_model_batched(&model, &inputs, &opts).unwrap();
        let (y_none, t_none) =
            forward_model_batched_with(&model, &inputs, &opts, SolveOverride::NONE).unwrap();
        assert_eq!(y_plain.data(), y_none.data());
        assert_eq!(t_plain.len(), t_none.len());

        // A coarser tolerance override must match re-building the options.
        let ovr = SolveOverride {
            tolerance: Some(1e-2),
            max_trials: Some(16),
            tableau: Some(crate::inference::TableauKind::HeunEuler),
        };
        let (y_ovr, t_ovr) = forward_model_batched_with(&model, &inputs, &opts, ovr).unwrap();
        let mut rebuilt =
            NodeSolveOptions::new(1e-2).with_tableau(crate::inference::TableauKind::HeunEuler);
        rebuilt.max_trials_per_point = 16;
        let (y_reb, t_reb) = forward_model_batched(&model, &inputs, &rebuilt).unwrap();
        assert_eq!(y_ovr.data(), y_reb.data());
        assert_eq!(
            t_ovr[0].total_stats().nfe,
            t_reb[0].total_stats().nfe,
            "override must be equivalent to rebuilt options"
        );
        // The coarse tier is actually cheaper than the strict solve.
        assert!(t_ovr[0].total_stats().nfe < t_plain[0].total_stats().nfe);
    }

    #[test]
    #[should_panic(expected = "override tolerance must be positive")]
    fn override_rejects_nonpositive_tolerance() {
        let ovr = SolveOverride {
            tolerance: Some(0.0),
            ..SolveOverride::NONE
        };
        ovr.apply(&NodeSolveOptions::new(1e-3));
    }

    #[test]
    fn tradeoff_nfe_decreases_with_looser_tolerance() {
        let model = NodeModel::image_classifier(3, 1, 1, 4, 1);
        let inputs = enode_tensor::init::uniform(&[4, 3, 6, 6], -1.0, 1.0, 2);
        let labels = [0usize, 1, 2, 3];
        let pts = tolerance_tradeoff(
            &model,
            &inputs,
            &labels,
            &NodeSolveOptions::new(1e-3),
            &[1e-2, 1e-4],
        )
        .unwrap();
        assert_eq!(pts.len(), 2);
        assert!(
            pts[1].nfe_per_sample > pts[0].nfe_per_sample,
            "tighter tolerance must cost more nfe"
        );
    }
}
