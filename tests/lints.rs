//! Tier-1 gate: everything the repository ships must pass every static
//! lint — the same check `enode-lint` runs, wired into `cargo test` so a
//! regression in any tableau, DDG schedule, paper model, or Table I
//! configuration fails the suite.

use enode::analysis::lint_everything;

#[test]
fn shipped_artifacts_pass_all_static_lints() {
    let ds = lint_everything();
    assert!(
        !ds.has_errors(),
        "static lints found errors:\n{}",
        ds.render()
    );
    assert!(
        ds.warning_count() == 0,
        "static lints found warnings:\n{}",
        ds.render()
    );
}
