//! Table I: memory and area breakdown of the baseline and eNODE.

use crate::report;
use enode_hw::area::{breakdown, AreaBreakdown, Design};
use enode_hw::config::HwConfig;

fn print_design(label: &str, b: &AreaBreakdown, paper: &[(f64, f64)], paper_total: (f64, f64)) {
    println!("\n{label}");
    report::header(&["component", "MB", "mm^2", "paper MB", "paper mm^2"]);
    for (row, (pmb, pmm)) in b.rows.iter().zip(paper) {
        report::row(&[
            row.name,
            &format!("{:.2}", row.mb),
            &format!("{:.2}", row.mm2),
            &format!("{pmb:.2}"),
            &format!("{pmm:.2}"),
        ]);
    }
    report::row(&[
        "Total",
        &format!("{:.2}", b.total_mb()),
        &format!("{:.2}", b.total_mm2()),
        &format!("{:.2}", paper_total.0),
        &format!("{:.2}", paper_total.1),
    ]);
}

/// Prints the full Table I, measured vs paper.
pub fn run() {
    report::banner("Table I", "memory and area breakdown (28 nm)");

    let a = HwConfig::config_a();
    print_design(
        "Configuration A (64x64x64) - Baseline",
        &breakdown(&a, Design::Baseline),
        &[(0.0, 3.53), (2.25, 5.34), (2.0, 9.24), (1.25, 5.78)],
        (5.5, 23.89),
    );
    print_design(
        "Configuration A (64x64x64) - eNODE",
        &breakdown(&a, Design::Enode),
        &[
            (0.0, 3.66),
            (2.25, 5.34),
            (0.44, 2.03),
            (0.5, 2.31),
            (1.25, 5.78),
        ],
        (4.44, 19.12),
    );

    let b = HwConfig::config_b();
    print_design(
        "Configuration B (256x256x64) - Baseline",
        &breakdown(&b, Design::Baseline),
        &[(0.0, 3.53), (2.25, 5.34), (32.0, 147.84), (4.9, 22.64)],
        (39.15, 179.35),
    );
    print_design(
        "Configuration B (256x256x64) - eNODE",
        &breakdown(&b, Design::Enode),
        &[
            (0.0, 3.66),
            (2.25, 5.34),
            (1.76, 8.13),
            (2.0, 9.24),
            (4.9, 22.64),
        ],
        (10.91, 49.01),
    );
}
