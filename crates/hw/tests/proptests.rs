//! Randomized property tests for the hardware simulator.
//!
//! Formerly `proptest` suites; now deterministic sweeps driven by the
//! in-repo [`enode_tensor::rng::Rng64`] generator so the workspace builds
//! fully offline.

use enode_hw::config::{HwConfig, LayerDims, WorkloadRun};
use enode_hw::depthfirst::{
    integral_state_bytes_baseline, integral_state_bytes_enode, training_spill_bytes_per_interval,
    training_state_live_bytes_baseline, training_state_live_bytes_enode,
};
use enode_hw::dram::{Dram, DramConfig};
use enode_hw::energy::EnergyModel;
use enode_hw::packet::{simulate_pipeline, Schedule};
use enode_hw::perf::{simulate_baseline, simulate_enode};
use enode_tensor::rng::Rng64;

const CASES: usize = 32;

fn random_layer(rng: &mut Rng64) -> LayerDims {
    LayerDims::new(
        1 << rng.gen_range_usize(4, 9),
        1 << rng.gen_range_usize(4, 9),
        1 << rng.gen_range_usize(3, 8),
    )
}

/// Depth-first buffering always beats the full-map baseline, and the
/// advantage grows with the map height.
#[test]
fn depthfirst_always_smaller() {
    let mut rng = Rng64::seed_from_u64(0xC1);
    for _ in 0..CASES {
        let layer = random_layer(&mut rng);
        let cfg = HwConfig::for_layer(layer);
        assert!(
            integral_state_bytes_enode(&cfg) < integral_state_bytes_baseline(&cfg),
            "{layer:?}"
        );
        assert!(
            training_state_live_bytes_enode(&cfg) <= training_state_live_bytes_baseline(&cfg),
            "{layer:?}"
        );
    }
}

/// Spill is monotone non-increasing in buffer size and zero at the
/// provisioning point.
#[test]
fn spill_monotone() {
    let mut rng = Rng64::seed_from_u64(0xC2);
    for _ in 0..CASES {
        let layer = random_layer(&mut rng);
        let frac = rng.gen_range_f64(0.0, 2.0);
        let cfg = HwConfig::for_layer(layer);
        let live = training_state_live_bytes_enode(&cfg);
        let b1 = (live as f64 * frac) as u64;
        let b2 = b1 + 1024;
        assert!(
            training_spill_bytes_per_interval(live, b2)
                <= training_spill_bytes_per_interval(live, b1),
            "{layer:?} frac={frac}"
        );
        assert_eq!(training_spill_bytes_per_interval(live, live), 0);
    }
}

/// Pipeline simulation invariants: work conservation (busy slots =
/// streams × rows) and packetized buffering bounded by streams × lag.
#[test]
fn pipeline_work_conserved() {
    let mut rng = Rng64::seed_from_u64(0xC3);
    for _ in 0..CASES {
        let streams = rng.gen_range_usize(1, 6);
        let rows = rng.gen_range_usize(8, 128) as u64;
        let lag = rng.gen_range_usize(1, 8) as u64;
        for schedule in [Schedule::Packetized, Schedule::Blocking] {
            let r = simulate_pipeline(streams, rows, lag, schedule);
            assert_eq!(
                r.makespan - r.idle_slots,
                streams as u64 * rows,
                "streams={streams} rows={rows} lag={lag}"
            );
        }
        let p = simulate_pipeline(streams, rows, lag, Schedule::Packetized);
        assert!(p.peak_buffer_rows <= streams as u64 * (lag + 1));
    }
}

/// DRAM byte accounting is exact and cycles are positive.
#[test]
fn dram_accounting() {
    let mut rng = Rng64::seed_from_u64(0xC4);
    for _ in 0..CASES {
        let n = rng.gen_range_usize(1, 50);
        let mut d = Dram::new(DramConfig::default());
        let mut expect = 0u64;
        for _ in 0..n {
            let addr = rng.gen_range_usize(0, 1 << 20) as u64;
            let bytes = rng.gen_range_usize(1, 4096) as u64;
            let cycles = d.read(addr, bytes);
            assert!(cycles > 0);
            expect += bytes;
        }
        assert_eq!(d.stats().bytes, expect);
        assert_eq!(d.stats().reads as usize, n);
        assert!(d.energy_j() > 0.0);
    }
}

/// Simulator monotonicity: more trials never makes either design
/// faster or cheaper.
#[test]
fn more_trials_cost_more() {
    let mut rng = Rng64::seed_from_u64(0xC5);
    let cfg = HwConfig::config_a();
    let e = EnergyModel::default();
    for _ in 0..CASES {
        let points = rng.gen_range_usize(5, 50);
        let extra = rng.gen_range_usize(1, 40);
        let small = WorkloadRun::analytic(4, points, 1.5, false);
        let mut large = small;
        large.trials += extra;
        for sim in [simulate_enode, simulate_baseline] {
            let a = sim(&cfg, &small, &e);
            let b = sim(&cfg, &large, &e);
            assert!(b.seconds >= a.seconds, "points={points} extra={extra}");
            assert!(
                b.energy_j() >= a.energy_j(),
                "points={points} extra={extra}"
            );
        }
    }
}

/// Ring hop identity: going clockwise then counter-clockwise between
/// any two nodes sums to the ring size (or zero for the same node).
#[test]
fn ring_hops_complementary() {
    use enode_hw::ring::{LoopDirection, RingNoc};
    let mut rng = Rng64::seed_from_u64(0xC6);
    for _ in 0..CASES {
        let cores = rng.gen_range_usize(1, 8);
        let r = RingNoc {
            cores,
            link_bytes_per_cycle: 1.0,
            hop_latency: 1,
        };
        let n = r.nodes();
        let a = rng.gen_range_usize(0, 9) % n;
        let b = rng.gen_range_usize(0, 9) % n;
        let cw = r.hops(a, b, LoopDirection::Clockwise);
        let ccw = r.hops(a, b, LoopDirection::CounterClockwise);
        if a == b {
            assert_eq!(cw + ccw, 0, "cores={cores} a={a} b={b}");
        } else {
            assert_eq!(cw + ccw, n, "cores={cores} a={a} b={b}");
        }
    }
}

/// Layer mapping covers every layer exactly once and never exceeds the
/// core count per round.
#[test]
fn mapping_covers_layers() {
    use enode_hw::mapping::map_layers;
    for n_conv in 1usize..20 {
        for cores in 1usize..8 {
            let m = map_layers(n_conv, cores);
            assert_eq!(m.core_of_layer.len(), n_conv);
            assert!(m.core_of_layer.iter().all(|&c| c < cores));
            assert_eq!(m.rounds, n_conv.div_ceil(cores));
            let u = m.utilization(cores);
            assert!(u > 0.0 && u <= 1.0, "n_conv={n_conv} cores={cores}");
        }
    }
}

/// Core queueing model: utilization never exceeds 1 and matches the
/// arrival/service ratio when under-loaded.
#[test]
fn core_utilization_bounded() {
    use enode_hw::core::{simulate_core, CoreModel};
    let mut rng = Rng64::seed_from_u64(0xC7);
    let m = CoreModel {
        channels: 16,
        parallel_channels: 8,
        kernel: 3,
        adder_latency: 2,
    };
    for _ in 0..CASES {
        let interval_mult = rng.gen_range_usize(1, 6) as u64;
        let packets = rng.gen_range_usize(10, 200) as u64;
        let r = simulate_core(&m, packets, m.service_cycles() * interval_mult);
        assert!(r.utilization() <= 1.0 + 1e-9);
        let expect = 1.0 / interval_mult as f64;
        assert!(
            (r.utilization() - expect).abs() < 0.1,
            "{} vs {} (mult={interval_mult} packets={packets})",
            r.utilization(),
            expect
        );
    }
}

/// eNODE always wins on energy for identical workloads (the DRAM
/// traffic gap guarantees it even before the expedited algorithms).
#[test]
fn enode_energy_wins() {
    let mut rng = Rng64::seed_from_u64(0xC8);
    let cfg = HwConfig::config_a();
    let e = EnergyModel::default();
    for _ in 0..CASES {
        let points = rng.gen_range_usize(5, 50);
        let tpp = rng.gen_range_usize(1, 5);
        let training = rng.gen_bool();
        let run = WorkloadRun::analytic(4, points, tpp as f64, training);
        let en = simulate_enode(&cfg, &run, &e);
        let ba = simulate_baseline(&cfg, &run, &e);
        assert!(
            en.energy_j() < ba.energy_j(),
            "points={points} tpp={tpp} training={training}"
        );
    }
}
