//! End-to-end integration tests spanning all crates: NODE training on the
//! physical workloads, expedited-algorithm behaviour, and the
//! algorithm→hardware pipeline.

use enode::node::train::trainer::Target;
use enode::prelude::*;
use enode::workloads::trajectory_accuracy;

/// Training a NODE on Lotka–Volterra data converges: loss drops by an
/// order of magnitude and held-out trajectory accuracy is high.
#[test]
fn lotka_volterra_training_converges() {
    let lv = LotkaVolterra::default();
    let train = lv.dataset(12, 1.0, 1);
    let test = lv.dataset(6, 1.0, 2);
    let model = NodeModel::dynamic_system(2, 24, 2, 3);
    let opts = NodeSolveOptions::new(1e-5);
    let mut trainer = Trainer::new(model, opts, 0.02);
    let target = Target::State(train.targets.clone().unwrap());
    let first = trainer.step(&train.inputs, &target).unwrap().loss;
    let mut last = first;
    for _ in 0..60 {
        last = trainer.step(&train.inputs, &target).unwrap().loss;
    }
    assert!(
        last < first * 0.2,
        "loss should drop 5x: {first:.5} -> {last:.5}"
    );
    let (pred, _) = forward_model(trainer.model(), &test.inputs, &opts).unwrap();
    let acc = trajectory_accuracy(&pred, test.targets.as_ref().unwrap());
    assert!(acc > 70.0, "held-out trajectory accuracy {acc:.1}%");
}

/// The slope-adaptive search preserves solution quality while cutting
/// trials on a trained three-body NODE.
#[test]
fn slope_adaptive_preserves_three_body_solutions() {
    let tb = ThreeBody::default();
    let data = tb.dataset(4, 1.0, 5);
    let model = NodeModel::dynamic_system(12, 32, 2, 7);
    let conventional = NodeSolveOptions::new(1e-6)
        .with_controller(ControllerKind::ConventionalConstantInit { shrink: 0.5 });
    let slope = NodeSolveOptions::new(1e-6)
        .with_controller(ControllerKind::SlopeAdaptive { s_acc: 3, s_rej: 3 });
    let (y_conv, t_conv) = forward_model(&model, &data.inputs, &conventional).unwrap();
    let (y_slope, t_slope) = forward_model(&model, &data.inputs, &slope).unwrap();
    // Same solution within tolerance-scale error.
    let diff = (&y_conv - &y_slope).norm_l2();
    assert!(diff < 1e-2, "solutions diverge: {diff}");
    // Fewer trials.
    assert!(
        t_slope.total_stats().trials < t_conv.total_stats().trials,
        "slope {} vs conventional {}",
        t_slope.total_stats().trials,
        t_conv.total_stats().trials
    );
}

/// Priority early stop only ever skips rows on *rejected* trials, so the
/// final states stay within tolerance scale of the full computation.
#[test]
fn priority_early_stop_keeps_solutions_close() {
    let lv = LotkaVolterra::default();
    let data = lv.dataset(16, 1.0, 9);
    let model = NodeModel::dynamic_system(2, 16, 2, 11);
    let base = NodeSolveOptions::new(1e-5)
        .with_controller(ControllerKind::SlopeAdaptive { s_acc: 3, s_rej: 3 });
    let prio = base.with_priority(4);
    let (y_full, _) = forward_model(&model, &data.inputs, &base).unwrap();
    let (y_prio, trace) = forward_model(&model, &data.inputs, &prio).unwrap();
    let rel = (&y_full - &y_prio).norm_l2() / y_full.norm_l2().max(1e-6);
    assert!(rel < 0.05, "priority processing changed solutions by {rel}");
    let s = trace.total_stats();
    assert!(s.rows_processed <= s.rows_total);
}

/// The full algorithm→hardware pipeline: measured workloads mapped onto
/// the simulators reproduce the paper's headline relationships.
#[test]
fn hardware_pipeline_headline_relations() {
    let lv = LotkaVolterra::default();
    let data = lv.dataset(8, 1.0, 13);
    let model = NodeModel::dynamic_system(2, 16, 4, 15);
    let conventional = NodeSolveOptions::new(1e-5)
        .with_controller(ControllerKind::ConventionalConstantInit { shrink: 0.5 });
    let expedited = NodeSolveOptions::new(1e-5)
        .with_controller(ControllerKind::SlopeAdaptive { s_acc: 3, s_rej: 3 })
        .with_priority(4);
    let (_, t_conv) = forward_model(&model, &data.inputs, &conventional).unwrap();
    let (_, t_ea) = forward_model(&model, &data.inputs, &expedited).unwrap();

    let cfg = HwConfig::config_a();
    let energy = EnergyModel::default();
    let base = simulate_baseline(&cfg, &WorkloadRun::from_trace(&t_conv), &energy);
    let enode_noea = simulate_enode(&cfg, &WorkloadRun::from_trace(&t_conv), &energy);
    let enode_ea = simulate_enode(&cfg, &WorkloadRun::from_trace(&t_ea), &energy);

    // §VIII headlines: eNODE beats the baseline on energy; the expedited
    // algorithms add speed on top.
    assert!(enode_noea.energy_j() < base.energy_j());
    assert!(enode_ea.energy_j() < enode_noea.energy_j());
    assert!(enode_ea.seconds < base.seconds);
    // DRAM power collapses (Fig 16's mechanism).
    assert!(enode_noea.dram_power_w() < base.dram_power_w() / 2.0);
}

/// Deterministic reproducibility: identical seeds give identical traces
/// and simulator outputs.
#[test]
fn runs_are_deterministic() {
    let lv = LotkaVolterra::default();
    let run = || {
        let data = lv.dataset(4, 1.0, 21);
        let model = NodeModel::dynamic_system(2, 16, 2, 23);
        let opts = NodeSolveOptions::new(1e-5);
        let (y, trace) = forward_model(&model, &data.inputs, &opts).unwrap();
        (y, trace.total_stats().trials, trace.total_stats().nfe)
    };
    let (y1, t1, n1) = run();
    let (y2, t2, n2) = run();
    assert_eq!(y1.data(), y2.data());
    assert_eq!(t1, t2);
    assert_eq!(n1, n2);
}

/// The classic ANODE separation: a 1-D NODE flow is monotone (trajectories
/// cannot cross), so it can never learn x ↦ −x; an augmented NODE can.
#[test]
fn augmented_node_beats_plain_on_crossing_map() {
    use enode::node::model::NodeModel;
    let x = Tensor::from_vec(vec![-1.0, 1.0], &[2, 1]);
    let target = Target::State(Tensor::from_vec(vec![1.0, -1.0], &[2, 1]));
    let opts = NodeSolveOptions::new(1e-4);

    let train = |model: NodeModel| {
        let mut trainer = Trainer::new(model, opts, 0.05);
        let mut loss = f32::INFINITY;
        for _ in 0..80 {
            loss = trainer.step(&x, &target).unwrap().loss;
        }
        loss
    };
    let plain = train(NodeModel::dynamic_system(1, 16, 1, 5));
    let augmented = train(NodeModel::dynamic_system_augmented(1, 2, 16, 1, 5));
    // The plain model is topologically stuck near MSE=... (cannot cross);
    // the augmented one fits.
    assert!(
        augmented < 0.1,
        "augmented NODE should fit the crossing map, loss {augmented}"
    );
    assert!(
        plain > augmented * 5.0,
        "plain {plain} should be far worse than augmented {augmented}"
    );
}

/// An augmented NODE classifier learns the two-armed spiral (exercises
/// the head + augmentation + ACA pipeline together).
#[test]
fn augmented_node_classifies_spirals() {
    use enode::node::model::{ClassifierHead, NodeModel};
    use enode::workloads::images::spirals;
    let data = spirals(40, 0.02, 3);
    let model = NodeModel::dynamic_system_augmented(2, 2, 24, 1, 7)
        .with_head(ClassifierHead::new_seeded(2, 2, 8));
    let opts = NodeSolveOptions::new(1e-4);
    let mut trainer = Trainer::new(model, opts, 0.05);
    let target = Target::Labels(data.labels.clone().unwrap());
    let mut acc = 0.0;
    for _ in 0..120 {
        acc = trainer.step(&data.inputs, &target).unwrap().accuracy;
        if acc >= 0.95 {
            break;
        }
    }
    assert!(acc >= 0.95, "spiral accuracy only {acc}");
}

/// ACA training gradients drive a conv image classifier to fit its batch
/// (exercises conv forward/backward, GroupNorm-free path, head, ACA).
#[test]
fn image_classifier_fits_small_batch() {
    let task = enode::workloads::images::SyntheticImages::cifar_like(3, 31);
    let batch = task.batch(10, 32);
    let model = NodeModel::image_classifier(3, 1, 1, 10, 33);
    let opts = NodeSolveOptions::new(1e-3);
    let mut trainer = Trainer::new(model, opts, 0.05);
    let target = Target::Labels(batch.labels.clone().unwrap());
    let mut acc = 0.0;
    for _ in 0..50 {
        acc = trainer.step(&batch.inputs, &target).unwrap().accuracy;
        if acc >= 0.8 {
            break;
        }
    }
    assert!(
        acc >= 0.8,
        "training accuracy only reached {acc} (chance level is 0.1)"
    );
}
