//! Fig 16: inference and training power of the baseline and eNODE
//! (Configuration A), per benchmark.

use crate::driver::{conventional_opts, run_bench, Bench};
use crate::report;
use enode_hw::config::HwConfig;
use enode_hw::energy::EnergyModel;
use enode_hw::perf::{simulate_baseline, simulate_enode};

/// Runs the Fig 16 power comparison.
pub fn run() {
    report::banner("Fig 16", "power consumption (Configuration A)");
    let cfg = HwConfig::config_a();
    let energy = EnergyModel::default();

    let mut avg = [[0.0f64; 4]; 2]; // [inf/train][base_dram, base_tot, en_dram, en_tot]
    println!("(workload counts measured from the algorithm runs, mapped to Config A)");
    report::header(&[
        "benchmark",
        "mode",
        "base DRAM W",
        "base total",
        "eNODE DRAM",
        "eNODE total",
    ]);
    for bench in Bench::all() {
        let r = run_bench(
            bench,
            &conventional_opts(bench),
            bench.default_train_iters().min(3),
            41,
        );
        for (mi, (mode, run)) in [("inference", r.infer_run), ("training", r.train_run)]
            .into_iter()
            .enumerate()
        {
            let ba = simulate_baseline(&cfg, &run, &energy);
            let en = simulate_enode(&cfg, &run, &energy);
            avg[mi][0] += ba.dram_power_w() / 4.0;
            avg[mi][1] += ba.power_w() / 4.0;
            avg[mi][2] += en.dram_power_w() / 4.0;
            avg[mi][3] += en.power_w() / 4.0;
            report::row(&[
                bench.name(),
                mode,
                &format!("{:.2}", ba.dram_power_w()),
                &format!("{:.2}", ba.power_w()),
                &format!("{:.2}", en.dram_power_w()),
                &format!("{:.2}", en.power_w()),
            ]);
        }
    }
    println!();
    println!(
        "ours (avg): inference base {:.2}/{:.2} W, eNODE {:.2}/{:.2} W ({:.2}x total reduction)",
        avg[0][0],
        avg[0][1],
        avg[0][2],
        avg[0][3],
        avg[0][1] / avg[0][3]
    );
    println!(
        "ours (avg): training  base {:.2}/{:.2} W, eNODE {:.2}/{:.2} W ({:.2}x total reduction)",
        avg[1][0],
        avg[1][1],
        avg[1][2],
        avg[1][3],
        avg[1][1] / avg[1][3]
    );
    println!("paper     : inference base 5.65/9.32 W, eNODE 0.48/4.43 W (2.1x)");
    println!("paper     : training  base 11.03/14.72 W, eNODE 0.85/4.82 W (3.05x)");
}
