//! Property-based tests for the NODE core: forward-pass invariants and
//! adjoint-gradient correctness on randomized networks.

use enode_node::inference::{forward_layer, ControllerKind, NodeSolveOptions};
use enode_node::priority::{find_window, judge_with_priority, row_sq_norms, window_norm};
use enode_node::train::adjoint::aca_backward_layer;
use enode_tensor::dense::Dense;
use enode_tensor::network::{Network, Op};
use enode_tensor::{init, Tensor};
use proptest::prelude::*;

fn random_net(seed: u64) -> Network {
    Network::new(vec![
        Op::ConcatTime,
        Op::dense(Dense::new_seeded(3, 6, seed)),
        Op::tanh(),
        Op::dense(Dense::new_seeded(6, 2, seed + 1)),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The forward pass always covers exactly the requested time span with
    /// monotone checkpoints, whatever the controller.
    #[test]
    fn forward_covers_span(seed in 0u64..200, ctl in 0u8..4) {
        let f = random_net(seed);
        let y0 = init::uniform(&[1, 2], -0.5, 0.5, seed + 5);
        let controller = match ctl {
            0 => ControllerKind::Conventional { shrink: 0.5 },
            1 => ControllerKind::ConventionalConstantInit { shrink: 0.5 },
            2 => ControllerKind::Classic,
            _ => ControllerKind::SlopeAdaptive { s_acc: 3, s_rej: 3 },
        };
        let opts = NodeSolveOptions::new(1e-5).with_controller(controller);
        let (_, trace) = forward_layer(&f, &y0, (0.0, 1.0), &opts).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for c in &trace.checkpoints {
            prop_assert!(c.t > prev);
            prev = c.t;
        }
        prop_assert!((prev - 1.0).abs() < 1e-9);
        // Accounting identities.
        prop_assert_eq!(trace.stats.points, trace.steps.len());
        prop_assert_eq!(trace.stats.trials, trace.stats.points + trace.stats.rejected);
    }

    /// The accepted steps tile the span exactly: Σ dt = t1 − t0.
    #[test]
    fn steps_tile_span(seed in 0u64..100) {
        let f = random_net(seed);
        let y0 = init::uniform(&[1, 2], -0.5, 0.5, seed + 9);
        let opts = NodeSolveOptions::new(1e-5);
        let (_, trace) = forward_layer(&f, &y0, (0.0, 1.0), &opts).unwrap();
        let total: f64 = trace.steps.iter().map(|s| s.dt).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// Adjoint gradient check: dL/dy0 from the ACA backward pass matches
    /// finite differences of the full solve for L = <v, h(T)>.
    #[test]
    fn adjoint_gradcheck(seed in 0u64..40) {
        let f = random_net(seed * 7 + 1);
        let mut y0 = init::uniform(&[1, 2], -0.5, 0.5, seed * 7 + 2);
        let v = init::uniform(&[1, 2], -1.0, 1.0, seed * 7 + 3);
        let opts = NodeSolveOptions::new(1e-8).with_default_dt(0.05);
        let (_, trace) = forward_layer(&f, &y0, (0.0, 1.0), &opts).unwrap();
        let (a0, _, _) = aca_backward_layer(&f, &trace, &v);
        let eps = 1e-2f32;
        for i in 0..2 {
            let orig = y0.data()[i];
            y0.data_mut()[i] = orig + eps;
            let lp = forward_layer(&f, &y0, (0.0, 1.0), &opts).unwrap().0.dot(&v);
            y0.data_mut()[i] = orig - eps;
            let lm = forward_layer(&f, &y0, (0.0, 1.0), &opts).unwrap().0.dot(&v);
            y0.data_mut()[i] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            prop_assert!(
                (fd - a0.data()[i]).abs() < 5e-2 * fd.abs().max(0.3),
                "component {}: fd {} vs adjoint {}", i, fd, a0.data()[i]
            );
        }
    }

    /// Priority-window invariants: the found window maximizes its sum among
    /// all windows of that size, and the window norm never exceeds the full
    /// norm (so early-stop rejections are always sound).
    #[test]
    fn window_is_argmax(vals in prop::collection::vec(0.0f32..2.0, 8..40), len in 1usize..6) {
        let h = vals.len();
        let e = Tensor::from_vec(vals.clone(), &[1, 1, h, 1]);
        let w = find_window(&e, len);
        let rows = row_sq_norms(&e);
        let sum_at = |s: usize| rows[s..s + w.len].iter().sum::<f64>();
        let best = sum_at(w.start);
        for s in 0..=(h - w.len) {
            prop_assert!(sum_at(s) <= best + 1e-9);
        }
        let full: f64 = rows.iter().sum::<f64>();
        prop_assert!(window_norm(&e, w) <= full.sqrt() + 1e-9);
    }

    /// Early-stop soundness: whenever priority judges reject (window norm
    /// > ε), the full-map norm also exceeds ε.
    #[test]
    fn early_stop_rejections_sound(
        vals in prop::collection::vec(0.0f32..1.0, 16),
        tol in 0.1f64..3.0,
    ) {
        let e = Tensor::from_vec(vals, &[1, 1, 16, 1]);
        let w = find_window(&e, 4);
        let j = judge_with_priority(&e, w, tol);
        if j.early_stopped {
            let full = row_sq_norms(&e).iter().sum::<f64>().sqrt();
            prop_assert!(full > tol);
        }
    }
}
