//! The serving runtime's time source.
//!
//! Every timestamp in the serve layer — submit times, deadlines, batch
//! windows, completion times — is a `u64` microsecond count in the domain
//! of one [`Clock`]. Two implementations share that domain:
//!
//! * [`Clock::wall`] reads a monotonic [`std::time::Instant`] anchored at
//!   server start — the deployment configuration.
//! * [`Clock::virtual_at`] reads a shared atomic the *caller* advances —
//!   the deterministic configuration the batcher tests and the load-test
//!   harness use. Time moves only when the test (or the discrete-event
//!   simulation) says so, which is what makes deadline decisions, tier
//!   selection, and every latency in `BENCH_serve.json` bit-reproducible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A microsecond clock: wall (monotonic) or virtual (caller-driven).
#[derive(Clone, Debug)]
pub enum Clock {
    /// Monotonic wall time, as microseconds since the anchor.
    Wall(Instant),
    /// Virtual time: the shared counter is the current microsecond.
    Virtual(Arc<AtomicU64>),
}

impl Clock {
    /// A wall clock anchored at "now" (time 0 is this call).
    pub fn wall() -> Self {
        Clock::Wall(Instant::now())
    }

    /// A virtual clock starting at `start_us`. Clones share the counter,
    /// so a test can keep one handle and hand the other to the server.
    pub fn virtual_at(start_us: u64) -> Self {
        Clock::Virtual(Arc::new(AtomicU64::new(start_us)))
    }

    /// The current time in microseconds.
    pub fn now_us(&self) -> u64 {
        match self {
            Clock::Wall(anchor) => anchor.elapsed().as_micros() as u64,
            Clock::Virtual(t) => t.load(Ordering::SeqCst),
        }
    }

    /// `true` for a virtual clock (the runtime must not block on wall
    /// timeouts that virtual time will never satisfy).
    pub fn is_virtual(&self) -> bool {
        matches!(self, Clock::Virtual(_))
    }

    /// Advances a virtual clock by `delta_us` and returns the new time.
    ///
    /// # Panics
    ///
    /// Panics on a wall clock — only simulated time can be advanced.
    pub fn advance_us(&self, delta_us: u64) -> u64 {
        match self {
            Clock::Wall(_) => panic!("cannot advance a wall clock"),
            Clock::Virtual(t) => t.fetch_add(delta_us, Ordering::SeqCst) + delta_us,
        }
    }

    /// Sets a virtual clock to an absolute time. Time must not move
    /// backwards (deadline bookkeeping assumes monotonicity).
    ///
    /// # Panics
    ///
    /// Panics on a wall clock, or if `now_us` is in the past.
    pub fn set_us(&self, now_us: u64) {
        match self {
            Clock::Wall(_) => panic!("cannot set a wall clock"),
            Clock::Virtual(t) => {
                let prev = t.swap(now_us, Ordering::SeqCst);
                assert!(
                    prev <= now_us,
                    "virtual clock moved backwards: {prev} -> {now_us}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_is_caller_driven() {
        let c = Clock::virtual_at(100);
        assert!(c.is_virtual());
        assert_eq!(c.now_us(), 100);
        assert_eq!(c.advance_us(50), 150);
        assert_eq!(c.now_us(), 150);
        c.set_us(400);
        assert_eq!(c.now_us(), 400);
        // Clones share the counter.
        let d = c.clone();
        d.advance_us(1);
        assert_eq!(c.now_us(), 401);
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn virtual_clock_rejects_rewind() {
        let c = Clock::virtual_at(10);
        c.set_us(5);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let c = Clock::wall();
        assert!(!c.is_virtual());
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
    }
}
