//! Ablations of the design choices DESIGN.md calls out:
//!
//! * packetized vs blocking ring scheduling (§V-B),
//! * function reuse (folded ring) vs unrolled integrator hardware (§V-A),
//! * unified vs split forward/backward NN core (§VI),
//! * the expedited-algorithm factorial: slope-adaptive × priority (§VII).

use crate::driver::{conventional_opts, expedited_opts, run_bench, Bench};
use crate::report;
use enode_hw::area::{breakdown, Design};
use enode_hw::config::HwConfig;
use enode_hw::packet::{simulate_pipeline, Schedule};
use enode_node::inference::ControllerKind;

/// Packetized vs blocking scheduling: identical throughput, an order less
/// buffering (the reason the integral-state buffer fits on chip).
pub fn packetized_vs_blocking() {
    report::banner("Ablation", "packetized vs blocking ring scheduling");
    report::header(&["rows (H)", "schedule", "makespan", "peak buffer rows"]);
    for rows in [64u64, 128, 256] {
        for (name, sched) in [
            ("packetized", Schedule::Packetized),
            ("blocking", Schedule::Blocking),
        ] {
            let r = simulate_pipeline(4, rows, 5, sched);
            report::row(&[
                &rows.to_string(),
                name,
                &r.makespan.to_string(),
                &r.peak_buffer_rows.to_string(),
            ]);
        }
    }
    println!("\npacketization keeps throughput and shrinks buffering from O(H) to O(lag).");
}

/// Function reuse: the folded ring holds one copy of `f`'s cores and
/// weights; an unrolled depth-first integrator would replicate them per
/// stage.
pub fn function_reuse() {
    report::banner(
        "Ablation",
        "function reuse (folded ring) vs unrolled integrator",
    );
    let cfg = HwConfig::config_a();
    let folded = breakdown(&cfg, Design::Enode);
    let core = folded
        .rows
        .iter()
        .find(|r| r.name == "Core & Control")
        .unwrap()
        .mm2;
    let weights = folded
        .rows
        .iter()
        .find(|r| r.name == "Weight Buffer")
        .unwrap()
        .mm2;
    // Unrolled: one core+weight copy per RK23 stage.
    let unrolled_extra = (cfg.stages as f64 - 1.0) * (core + weights);
    report::header(&["design", "total mm^2"]);
    report::row(&["folded ring (eNODE)", &format!("{:.2}", folded.total_mm2())]);
    report::row(&[
        "unrolled (4x cores+weights)",
        &format!("{:.2}", folded.total_mm2() + unrolled_extra),
    ]);
    println!(
        "\nfunction reuse saves {:.1} mm^2 ({:.0}% of the eNODE floorplan).",
        unrolled_extra,
        100.0 * unrolled_extra / (folded.total_mm2() + unrolled_extra)
    );
}

/// Unified vs split forward/backward core: the unified core reuses PEs,
/// weights and the adder tree for both directions (§VI); a split design
/// duplicates the datapath.
pub fn unified_core() {
    report::banner("Ablation", "unified vs split forward/backward NN core");
    let cfg = HwConfig::config_a();
    let b = breakdown(&cfg, Design::Enode);
    let core = b
        .rows
        .iter()
        .find(|r| r.name == "Core & Control")
        .unwrap()
        .mm2;
    let weights = b
        .rows
        .iter()
        .find(|r| r.name == "Weight Buffer")
        .unwrap()
        .mm2;
    report::header(&["design", "total mm^2"]);
    report::row(&["unified core (eNODE)", &format!("{:.2}", b.total_mm2())]);
    report::row(&[
        "split fwd/bwd datapath",
        &format!("{:.2}", b.total_mm2() + core + weights),
    ]);
    println!(
        "\nthe unified core avoids duplicating {:.2} mm^2 of PEs and cached weights.",
        core + weights
    );
}

/// The 2×2 expedited-algorithm factorial on Lotka–Volterra: slope-adaptive
/// search × priority early stop (the "EA" split of Fig 18).
pub fn ea_factorial() {
    report::banner(
        "Ablation",
        "expedited algorithms factorial (Lotka-Volterra)",
    );
    let bench = Bench::LotkaVolterra;
    report::header(&[
        "slope-adaptive",
        "priority",
        "trials/layer",
        "rows frac",
        "accuracy %",
    ]);
    for (slope, prio) in [(false, false), (true, false), (false, true), (true, true)] {
        let opts = match (slope, prio) {
            (true, w) => expedited_opts(bench, 3, 3, w.then_some(4)),
            (false, w) => {
                let mut o = conventional_opts(bench);
                o.controller = ControllerKind::ConventionalConstantInit { shrink: 0.5 };
                if w {
                    o = o.with_priority(4);
                }
                o
            }
        };
        let r = run_bench(bench, &opts, bench.default_train_iters(), 91);
        let s = &r.profile.forward;
        let rows_frac = if s.rows_total > 0 {
            s.rows_processed as f64 / s.rows_total as f64
        } else {
            1.0
        };
        report::row(&[
            if slope { "on" } else { "off" },
            if prio { "on" } else { "off" },
            &report::f(r.trials_per_layer),
            &format!("{rows_frac:.3}"),
            &format!("{:.1}", r.accuracy),
        ]);
    }
}

/// Integrator-order ablation: nfe, evaluation points and achieved error on
/// Lotka–Volterra across the embedded-pair methods, plus each order's
/// on-chip buffer cost (the accuracy/efficiency/area trade the paper's
/// Fig 2/Fig 14 discussion sets up).
pub fn integrator_order() {
    use enode_hw::depthfirst::integral_state_rows;
    use enode_ode::controller::ClassicController;
    use enode_ode::solver::{solve_adaptive, AdaptiveOptions};
    use enode_ode::tableau::ButcherTableau;
    use enode_workloads::lotka_volterra::LotkaVolterra;

    report::banner("Ablation", "integrator order on Lotka-Volterra (tol 1e-6)");
    let lv = LotkaVolterra::default();
    let reference = lv.ground_truth(vec![1.0, 1.0], 5.0);
    let exact = reference.final_state().clone();
    report::header(&["integrator", "nfe", "points", "final err", "buffer rows"]);
    for tab in [
        ButcherTableau::heun_euler(),
        ButcherTableau::rk23_bogacki_shampine(),
        ButcherTableau::rkf45(),
        ButcherTableau::cash_karp(),
        ButcherTableau::dopri5(),
    ] {
        let mut ctl = ClassicController::new(tab.error_order());
        let sol = solve_adaptive(
            |t, y: &Vec<f64>| lv.f(t, y),
            0.0,
            5.0,
            vec![1.0, 1.0],
            &tab,
            &mut ctl,
            &AdaptiveOptions::new(1e-6),
        )
        .unwrap();
        let err = ((sol.final_state()[0] - exact[0]).powi(2)
            + (sol.final_state()[1] - exact[1]).powi(2))
        .sqrt();
        report::row(&[
            tab.name(),
            &sol.stats.nfe.to_string(),
            &sol.n_eval().to_string(),
            &format!("{err:.2e}"),
            &integral_state_rows(&tab, 4, 3).to_string(),
        ]);
    }
    println!("\nhigher order: fewer evaluation points but more buffer rows per step.");
}

/// Checkpoint-stride ablation: bounded-memory ACA trades checkpoint bytes
/// for backward-pass recomputation at bit-identical gradients.
pub fn checkpoint_stride() {
    use enode_node::inference::{forward_layer, NodeSolveOptions};
    use enode_node::train::adjoint::aca_backward_layer;
    use enode_tensor::{
        dense::Dense,
        network::{Network, Op},
        Tensor,
    };

    report::banner("Ablation", "ACA checkpoint stride: memory vs recompute");
    let f = Network::new(vec![
        Op::ConcatTime,
        Op::dense(Dense::new_seeded(13, 32, 1)),
        Op::tanh(),
        Op::dense(Dense::new_seeded(32, 12, 2)),
    ]);
    let y0 = enode_tensor::init::uniform(&[4, 12], -0.5, 0.5, 3);
    report::header(&["stride", "ckpt bytes", "bwd nfe", "grad delta"]);
    let base_opts = NodeSolveOptions::new(1e-6).with_default_dt(0.02);
    let (yb, trace1) = forward_layer(&f, &y0, (0.0, 1.0), &base_opts).unwrap();
    let v = Tensor::ones(yb.shape());
    let (_, g1, p1) = aca_backward_layer(&f, &trace1, &v);
    for stride in [1usize, 2, 4, 8] {
        let opts = base_opts.with_checkpoint_stride(stride);
        let (_, trace) = forward_layer(&f, &y0, (0.0, 1.0), &opts).unwrap();
        let (_, g, p) = aca_backward_layer(&f, &trace, &v);
        let delta = g
            .iter()
            .zip(&g1)
            .map(|(a, b)| (a - b).norm_inf() as f64)
            .fold(0.0f64, f64::max);
        report::row(&[
            &stride.to_string(),
            &format!("{} B", trace.checkpoint_bytes(2)),
            &p.nfe_local_forward.to_string(),
            &format!("{delta:.1e}"),
        ]);
        let _ = &p1;
    }
    println!("\nsparser checkpoints: less storage, more local-forward replay, same gradients.");
}

/// Runs every ablation.
pub fn run() {
    packetized_vs_blocking();
    function_reuse();
    unified_core();
    ea_factorial();
    integrator_order();
    checkpoint_stride();
}
