//! Hardware-configuration feasibility lints.
//!
//! Codes: `E030`–`E033`, `W030`–`W033`.
//!
//! Checks a [`HwConfig`] against the paper's provisioning rules: the
//! training-state buffer must hold the depth-first peak liveness (Table I /
//! Fig 15b), the weight buffer must keep `f`'s weights resident for
//! function reuse (§V-A), DRAM must sustain the steady-state checkpoint
//! stream, and the ring link should keep the NN cores fed (§V-B).

use crate::diag::{Code, Diagnostic, Diagnostics};
use enode_hw::config::HwConfig;
use enode_hw::depthfirst::{training_spill_bytes_per_interval, training_state_live_bytes_enode};
use enode_hw::mapping::{map_layers, weight_reload_bytes_per_step, weights_resident};
use enode_hw::packet::{link_limited_utilization, required_link_bandwidth};

/// E030: structural sanity of the raw fields. Returns `false` when the
/// config is too broken for the quantitative lints to divide safely.
fn check_fields(cfg: &HwConfig, subject: &str, ds: &mut Diagnostics) -> bool {
    let mut problems: Vec<String> = Vec::new();
    if cfg.layer.h == 0 || cfg.layer.w == 0 || cfg.layer.c == 0 {
        problems.push(format!(
            "layer dims {}x{}x{} contain a zero",
            cfg.layer.h, cfg.layer.w, cfg.layer.c
        ));
    }
    if cfg.cores == 0 {
        problems.push("zero NN cores".into());
    }
    if cfg.pes_per_core == 0 {
        problems.push("zero PEs per core".into());
    }
    if cfg.parallel_channels == 0 {
        problems.push("zero parallel channels".into());
    }
    if cfg.clock_hz <= 0.0 {
        problems.push(format!("non-positive clock {}", cfg.clock_hz));
    }
    if cfg.link_bandwidth <= 0.0 || cfg.dram_bandwidth <= 0.0 {
        problems.push("non-positive link or DRAM bandwidth".into());
    }
    if cfg.n_conv == 0 {
        problems.push("embedded network has zero conv layers".into());
    }
    if cfg.kernel == 0 || cfg.kernel.is_multiple_of(2) {
        problems.push(format!(
            "kernel {} is not odd (\"same\" padding needs odd kernels)",
            cfg.kernel
        ));
    }
    if cfg.stages == 0 {
        problems.push("zero integrator stages".into());
    }
    if cfg.stages_backward > cfg.stages {
        problems.push(format!(
            "stages_backward {} exceeds stages {}",
            cfg.stages_backward, cfg.stages
        ));
    }
    for p in &problems {
        ds.push(Diagnostic::new(
            Code::E030HwConfigInvalid,
            subject,
            p.clone(),
        ));
    }
    problems.is_empty()
}

/// Steady-state DRAM streaming demand in bytes/second: checkpoint traffic
/// (write per accepted point, plus read-back when training), training-state
/// spill, and weight reloads, over the compute-bound step time — the same
/// accounting `simulate_enode` amortizes over a whole run.
pub fn dram_streaming_demand(cfg: &HwConfig, training: bool) -> f64 {
    let util = link_limited_utilization(cfg) * 0.95;
    let macs_per_step = cfg.stages as f64 * cfg.macs_per_f_eval() as f64;
    let step_seconds = macs_per_step / (cfg.macs_per_cycle() as f64 * cfg.clock_hz * util);
    let map = cfg.layer.map_bytes() as f64;
    let mut bytes_per_step = map + weight_reload_bytes_per_step(cfg) as f64;
    if training {
        bytes_per_step += map; // checkpoint read-back
        let live = training_state_live_bytes_enode(cfg);
        bytes_per_step += training_spill_bytes_per_interval(live, cfg.training_buffer_bytes) as f64;
    }
    bytes_per_step / step_seconds
}

/// Runs every hardware lint on one configuration.
pub fn lint_hw_config(subject: &str, cfg: &HwConfig) -> Diagnostics {
    let mut ds = Diagnostics::new();
    if !check_fields(cfg, subject, &mut ds) {
        return ds;
    }

    // E031: the training buffer must hold the depth-first peak liveness,
    // otherwise every backward interval spills to DRAM (Fig 15b).
    let live = training_state_live_bytes_enode(cfg);
    if cfg.training_buffer_bytes < live {
        ds.push(
            Diagnostic::new(
                Code::E031HwTrainingBufferTooSmall,
                subject,
                format!(
                    "training buffer {} B cannot hold {} B of live training state",
                    cfg.training_buffer_bytes, live
                ),
            )
            .with_note("buffer_bytes", cfg.training_buffer_bytes)
            .with_note("live_bytes", live)
            .with_note(
                "spill_per_interval",
                training_spill_bytes_per_interval(live, cfg.training_buffer_bytes),
            ),
        );
    } else {
        // W033: over twice the requirement is wasted SRAM area — Table I
        // provisions within a few percent of the peak liveness.
        let excess = cfg.training_buffer_bytes - live;
        if cfg.training_buffer_bytes > 2 * live && excess > 64 * 1024 {
            ds.push(
                Diagnostic::new(
                    Code::W033HwBufferHeadroom,
                    subject,
                    format!(
                        "training buffer {} B is more than twice the {} B peak liveness",
                        cfg.training_buffer_bytes, live
                    ),
                )
                .with_note("buffer_bytes", cfg.training_buffer_bytes)
                .with_note("live_bytes", live),
            );
        }
    }

    // E032: function reuse (§V-A) requires resident weights; a non-resident
    // network reloads the overflow from DRAM every ring loop.
    if !weights_resident(cfg) {
        ds.push(
            Diagnostic::new(
                Code::E032HwWeightsNotResident,
                subject,
                format!(
                    "weights {} B exceed the {} B weight buffer",
                    cfg.weight_bytes(),
                    cfg.weight_buffer_bytes
                ),
            )
            .with_note("weight_bytes", cfg.weight_bytes())
            .with_note("weight_buffer_bytes", cfg.weight_buffer_bytes)
            .with_note("reload_per_step", weight_reload_bytes_per_step(cfg)),
        );
    }

    // E033: DRAM must sustain the steady-state checkpoint stream (training
    // is the worse case: checkpoint writes + reads + any spill).
    let demand = dram_streaming_demand(cfg, true);
    if demand > cfg.dram_bandwidth {
        ds.push(
            Diagnostic::new(
                Code::E033HwDramBandwidth,
                subject,
                format!(
                    "streaming demand {:.2e} B/s exceeds DRAM bandwidth {:.2e} B/s",
                    demand, cfg.dram_bandwidth
                ),
            )
            .with_note("demand_bytes_per_s", format!("{demand:.3e}"))
            .with_note("dram_bandwidth", format!("{:.3e}", cfg.dram_bandwidth)),
        );
    }

    // W030: an under-provisioned ring link starves the NN cores (§V-B).
    let required = required_link_bandwidth(cfg);
    if cfg.link_bandwidth < required {
        ds.push(
            Diagnostic::new(
                Code::W030HwLinkBandwidth,
                subject,
                format!(
                    "link {:.2e} B/s below the {:.2e} B/s needed for full core utilization",
                    cfg.link_bandwidth, required
                ),
            )
            .with_note(
                "utilization",
                format!("{:.3}", link_limited_utilization(cfg)),
            ),
        );
    }

    // W031/W032: layer-to-core mapping efficiency (Fig 7e).
    let mapping = map_layers(cfg.n_conv, cfg.cores);
    if mapping.rounds > 1 {
        ds.push(
            Diagnostic::new(
                Code::W032HwMultiRound,
                subject,
                format!(
                    "{} conv layers on {} cores need {} time-multiplexing rounds",
                    cfg.n_conv, cfg.cores, mapping.rounds
                ),
            )
            .with_note("rounds", mapping.rounds)
            .with_note(
                "utilization",
                format!("{:.3}", mapping.utilization(cfg.cores)),
            ),
        );
    }
    if mapping.idle_cores_last_round > 0 {
        ds.push(
            Diagnostic::new(
                Code::W031HwIdleCores,
                subject,
                format!(
                    "{} of {} cores idle in the last mapping round",
                    mapping.idle_cores_last_round, cfg.cores
                ),
            )
            .with_note("idle_cores", mapping.idle_cores_last_round)
            .with_note(
                "utilization",
                format!("{:.3}", mapping.utilization(cfg.cores)),
            ),
        );
    }

    ds
}

/// W034: preflight for a pool-parallel simulation or bench run whose work
/// split is per-batch only. With a multi-lane pool but a degenerate batch
/// (one sample), the run executes silently serial — the caller should
/// either widen the batch or split along another axis.
///
/// `batch` is the number of per-batch work items the run will split;
/// `pool_threads` is the live pool width (pass
/// `enode_tensor::parallel::current_threads()`).
pub fn lint_parallel_split(subject: &str, batch: usize, pool_threads: usize) -> Diagnostics {
    let mut ds = Diagnostics::new();
    if pool_threads > 1 && batch <= 1 {
        ds.push(Diagnostic::new(
            Code::W034HwDegenerateParallelSplit,
            subject,
            format!(
                "pool has {pool_threads} lanes but the batch dimension is {batch}; \
                 per-batch splitting degenerates to a serial run"
            ),
        ));
    }
    ds
}

/// Lints both Table I design points.
pub fn lint_paper_configs() -> Diagnostics {
    let mut ds = Diagnostics::new();
    ds.extend(lint_hw_config("config_a", &HwConfig::config_a()));
    ds.extend(lint_hw_config("config_b", &HwConfig::config_b()));
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use enode_hw::config::LayerDims;

    #[test]
    fn paper_configs_are_clean() {
        let ds = lint_paper_configs();
        assert!(ds.is_empty(), "unexpected diagnostics:\n{}", ds.render());
    }

    #[test]
    fn degenerate_parallel_split_fires_w034() {
        let ds = lint_parallel_split("bench batch", 1, 4);
        assert!(
            ds.has_code(Code::W034HwDegenerateParallelSplit),
            "{}",
            ds.render()
        );
        assert_eq!(ds.error_count(), 0, "W034 is a warning, not an error");
    }

    #[test]
    fn healthy_or_serial_split_is_clean() {
        // Wide batch: nothing to warn about.
        assert!(lint_parallel_split("bench batch", 8, 4).is_empty());
        // Serial pool: a batch of 1 is expected, not a missed split.
        assert!(lint_parallel_split("bench batch", 1, 1).is_empty());
    }

    #[test]
    fn zero_cores_fires_e030_and_stops() {
        let mut cfg = HwConfig::config_a();
        cfg.cores = 0;
        let ds = lint_hw_config("no_cores", &cfg);
        assert!(ds.has_code(Code::E030HwConfigInvalid), "{}", ds.render());
        // Quantitative lints are skipped (they would divide by zero).
        assert_eq!(ds.len(), ds.error_count());
    }

    #[test]
    fn even_kernel_fires_e030() {
        let mut cfg = HwConfig::config_a();
        cfg.kernel = 4;
        assert!(lint_hw_config("even_kernel", &cfg).has_code(Code::E030HwConfigInvalid));
    }

    #[test]
    fn tiny_training_buffer_fires_e031() {
        let mut cfg = HwConfig::config_a();
        cfg.training_buffer_bytes = 100;
        let ds = lint_hw_config("tiny_buffer", &cfg);
        assert!(
            ds.has_code(Code::E031HwTrainingBufferTooSmall),
            "{}",
            ds.render()
        );
    }

    #[test]
    fn oversized_network_fires_e032() {
        // 8 convs at 256 channels: 9.4 MB of weights vs a 2.25 MB buffer.
        let mut cfg = HwConfig::for_layer(LayerDims::new(64, 64, 256));
        cfg.n_conv = 8;
        let ds = lint_hw_config("fat_network", &cfg);
        assert!(
            ds.has_code(Code::E032HwWeightsNotResident),
            "{}",
            ds.render()
        );
    }

    #[test]
    fn starved_dram_fires_e033() {
        let mut cfg = HwConfig::config_a();
        cfg.dram_bandwidth = 1.0e6; // 1 MB/s cannot stream 512 KB checkpoints
        let ds = lint_hw_config("slow_dram", &cfg);
        assert!(ds.has_code(Code::E033HwDramBandwidth), "{}", ds.render());
    }

    #[test]
    fn slow_link_fires_w030() {
        let mut cfg = HwConfig::config_a();
        cfg.link_bandwidth = 1.0e8; // below the ~222 MB/s requirement
        let ds = lint_hw_config("slow_link", &cfg);
        assert!(ds.has_code(Code::W030HwLinkBandwidth), "{}", ds.render());
    }

    #[test]
    fn idle_core_fires_w031() {
        let mut cfg = HwConfig::config_a();
        cfg.n_conv = 3;
        let ds = lint_hw_config("three_convs", &cfg);
        assert!(ds.has_code(Code::W031HwIdleCores), "{}", ds.render());
        assert!(!ds.has_code(Code::W032HwMultiRound));
    }

    #[test]
    fn deep_network_fires_w032() {
        let mut cfg = HwConfig::config_a();
        cfg.n_conv = 6;
        // Deeper f also grows the live training state past config A's
        // buffer; provision it so only the mapping lints fire.
        cfg.training_buffer_bytes = training_state_live_bytes_enode(&cfg);
        let ds = lint_hw_config("six_convs", &cfg);
        assert!(ds.has_code(Code::W032HwMultiRound), "{}", ds.render());
        assert!(ds.has_code(Code::W031HwIdleCores));
        assert!(!ds.has_errors(), "{}", ds.render());
    }

    #[test]
    fn lavish_buffer_fires_w033() {
        let mut cfg = HwConfig::config_a();
        cfg.training_buffer_bytes = 100 * 1024 * 1024;
        let ds = lint_hw_config("lavish", &cfg);
        assert!(ds.has_code(Code::W033HwBufferHeadroom), "{}", ds.render());
    }

    #[test]
    fn demand_scales_with_training() {
        let cfg = HwConfig::config_a();
        assert!(dram_streaming_demand(&cfg, true) > dram_streaming_demand(&cfg, false));
        // Config A's streaming demand sits far below its 8 GB/s DRAM.
        assert!(dram_streaming_demand(&cfg, true) < cfg.dram_bandwidth / 4.0);
    }
}
