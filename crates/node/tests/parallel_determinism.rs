//! Thread-count determinism for batched NODE inference.
//!
//! `forward_model_batched` fixes its work decomposition per sample, so
//! the stacked output must be bit-identical for any `ENODE_THREADS`.
//! Exercised at pool widths 1, 2, and 4 with a batch of 5 (not divisible
//! by either parallel width).

use enode_node::eval::forward_model_batched;
use enode_node::inference::NodeSolveOptions;
use enode_node::model::NodeModel;
use enode_tensor::sanitize::audit;
use enode_tensor::{init, parallel};

#[test]
fn batched_inference_is_bit_identical_across_thread_counts() {
    let model = NodeModel::image_classifier(3, 2, 2, 5, 17);
    let x = init::uniform(&[5, 3, 6, 6], -1.0, 1.0, 18);
    let opts = NodeSolveOptions::new(1e-3);
    let solve = || forward_model_batched(&model, &x, &opts).expect("batched solve failed");
    let (y_base, traces_base) = parallel::with_threads(1, solve);
    for t in [2usize, 4] {
        let (y, traces) = parallel::with_threads(t, solve);
        assert_eq!(y_base.data(), y.data(), "output differs at {t} threads");
        assert_eq!(traces_base.len(), traces.len());
        for (i, (a, b)) in traces_base.iter().zip(&traces).enumerate() {
            assert_eq!(
                a.trials_per_layer(),
                b.trials_per_layer(),
                "trace {i} differs at {t} threads"
            );
        }
    }
}

#[test]
fn batched_inference_survives_schedule_permutation_audit() {
    // Beyond pool widths: replay the per-sample fan-out in reversed and
    // rotated lane orders and under adversarial grains (the full audit
    // matrix, including the prime width 7 that the batch of 5 underfills).
    let model = NodeModel::image_classifier(3, 2, 2, 5, 17);
    let x = init::uniform(&[5, 3, 6, 6], -1.0, 1.0, 18);
    let opts = NodeSolveOptions::new(1e-3);
    audit::assert_deterministic("node.forward_model_batched", || {
        let (y, traces) = forward_model_batched(&model, &x, &opts).expect("batched solve failed");
        let mut out = vec![y.data().to_vec()];
        out.push(traces.iter().map(|t| t.trials_per_layer() as f32).collect());
        out
    });
}
