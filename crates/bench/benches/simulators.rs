//! Micro-benchmarks of the hardware simulators: the analytic performance
//! models, the row-level pipeline simulation, and the DRAM timing model.
//!
//! ```sh
//! cargo bench -p enode-bench --bench simulators
//! ```

use enode_bench::micro::Micro;
use enode_hw::config::{HwConfig, WorkloadRun};
use enode_hw::dram::{Dram, DramConfig};
use enode_hw::energy::EnergyModel;
use enode_hw::packet::{simulate_pipeline, Schedule};
use enode_hw::perf::{simulate_baseline, simulate_enode};
use std::hint::black_box;

fn perf_models(m: &Micro) {
    let cfg = HwConfig::config_a();
    let energy = EnergyModel::default();
    let run = WorkloadRun::analytic(4, 200, 2.5, true);
    m.bench("simulate_enode_training", || {
        simulate_enode(&cfg, black_box(&run), &energy)
    });
    m.bench("simulate_baseline_training", || {
        simulate_baseline(&cfg, black_box(&run), &energy)
    });
}

fn pipeline(m: &Micro) {
    m.bench("pipeline_packetized_4x256", || {
        simulate_pipeline(4, 256, 5, Schedule::Packetized)
    });
    m.bench("pipeline_blocking_4x256", || {
        simulate_pipeline(4, 256, 5, Schedule::Blocking)
    });
}

fn dram(m: &Micro) {
    m.bench("dram_stream_1mb", || {
        let mut d = Dram::new(DramConfig::default());
        for i in 0..(1u64 << 14) {
            d.read(i * 64, 64);
        }
        d.stats()
    });
}

fn main() {
    let m = Micro::default();
    perf_models(&m);
    pipeline(&m);
    dram(&m);
}
