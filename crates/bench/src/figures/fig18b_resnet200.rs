//! Fig 18(b): eNODE running a NODE vs ResNet-200 mapped on the ASIC
//! baseline, on the MNIST benchmark (paper: eNODE wins on energy even
//! without the expedited algorithms).

use crate::driver::{conventional_opts, expedited_opts, run_bench, Bench};
use crate::report;
use enode_hw::config::HwConfig;
use enode_hw::energy::EnergyModel;
use enode_hw::perf::simulate_enode;
use enode_workloads::resnet::ResNetProfile;

/// Energy of a ResNet run on the baseline accelerator: compute at the
/// shared MAC rate plus layer-by-layer activation traffic.
fn resnet_energy(cfg: &HwConfig, energy: &EnergyModel, macs: f64, access_bytes: f64) -> (f64, f64) {
    let compute_seconds = macs / (cfg.macs_per_cycle() as f64 * cfg.clock_hz * 0.95);
    let seconds = compute_seconds + access_bytes / cfg.dram_bandwidth;
    let e = energy.compute_energy(macs, false) + energy.dram_energy(access_bytes, seconds);
    (e, seconds)
}

/// Runs the Fig 18(b) comparison.
pub fn run() {
    report::banner(
        "Fig 18b",
        "eNODE (NODE) vs ResNet-200-on-baseline, MNIST workload",
    );
    let cfg = HwConfig::config_a();
    let energy = EnergyModel::default();
    let bench = Bench::MnistLike;

    // ResNet-200 at the same feature scale as the synthetic MNIST task,
    // batch 20 to match the NODE runs.
    let rn = ResNetProfile {
        layers: 200,
        input_size: 16,
        base_channels: 4,
    };
    let batch = 20.0;
    let (rn_inf_e, _) = resnet_energy(
        &cfg,
        &energy,
        rn.forward_macs() as f64 * batch,
        rn.inference_access_bytes() as f64 * batch,
    );
    let (rn_tr_e, _) = resnet_energy(
        &cfg,
        &energy,
        rn.training_macs() as f64 * batch,
        rn.training_access_bytes() as f64 * batch,
    );

    let conv = run_bench(
        bench,
        &conventional_opts(bench),
        bench.default_train_iters(),
        71,
    );
    let ea = run_bench(
        bench,
        &expedited_opts(bench, 3, 3, Some(10)),
        bench.default_train_iters(),
        71,
    );
    // Map the measured NODE workloads to a Config-A-scaled layer? No — the
    // MNIST NODE's own geometry: scale MACs by using the small-layer
    // config so NODE and ResNet see the same feature sizes.
    let mut small = HwConfig::for_layer(enode_hw::config::LayerDims::new(16, 16, 64));
    small.n_conv = 2;
    let en_noea_inf = simulate_enode(&small, &conv.infer_run, &energy).energy_j();
    let en_ea_inf = simulate_enode(&small, &ea.infer_run, &energy).energy_j();
    let en_noea_tr = simulate_enode(&small, &conv.train_run, &energy).energy_j();
    let en_ea_tr = simulate_enode(&small, &ea.train_run, &energy).energy_j();

    report::header(&["design", "inference J", "training J"]);
    report::row(&[
        "ResNet-200 on baseline",
        &report::f(rn_inf_e),
        &report::f(rn_tr_e),
    ]);
    report::row(&[
        "eNODE w/o EA",
        &report::f(en_noea_inf),
        &report::f(en_noea_tr),
    ]);
    report::row(&["eNODE + EA", &report::f(en_ea_inf), &report::f(en_ea_tr)]);
    println!();
    println!(
        "paper: eNODE outperforms ResNet-200 in energy, even without the expedited algorithms (training)"
    );
    println!(
        "ours : training ResNet-200-energy / eNODE-energy = {} (w/o EA), {} (with EA)",
        report::ratio(rn_tr_e / en_noea_tr),
        report::ratio(rn_tr_e / en_ea_tr)
    );
    println!(
        "note : under our calibration the NODE's integration work (points x trials x s f-evals)"
    );
    println!("       exceeds the ResNet's single pass, so the ratio depends on how few evaluation");
    println!(
        "       points the trained NODE needs; see EXPERIMENTS.md for the sensitivity discussion"
    );
}
