//! Elementwise activation functions with forward and backward passes.

use crate::tensor::Tensor;

/// Elementwise activation kinds used by the embedded NNs.
///
/// Image-classification NODEs use [`Activation::Relu`] (with normalization);
/// dynamic-system NODEs use [`Activation::Tanh`], whose smoothness matters
/// for adaptive integrators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Activation {
    /// `max(0, x)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid `1 / (1 + e^-x)`.
    Sigmoid,
    /// Softplus `ln(1 + e^x)` — a smooth ReLU.
    Softplus,
}

impl Activation {
    /// Applies the activation elementwise.
    pub fn forward(self, x: &Tensor) -> Tensor {
        let mut y = x.clone();
        self.apply_slice(y.data_mut());
        y
    }

    /// Applies the activation to a slice in place — the path the fused
    /// conv→GroupNorm→activation epilogues and [`Activation::forward`]
    /// share. Tanh dispatches to an 8-wide AVX transcription of
    /// [`tanh_fast`] (bitwise identical per element, see
    /// `crate::simd`); everything else runs the scalar map.
    pub fn apply_slice(self, xs: &mut [f32]) {
        #[cfg(target_arch = "x86_64")]
        if self == Activation::Tanh && crate::simd::avx() {
            // SAFETY: AVX presence checked at runtime.
            unsafe { tanh_slice_avx(xs) };
            return;
        }
        for v in xs.iter_mut() {
            *v = self.eval(*v);
        }
    }

    /// Scalar evaluation.
    pub fn eval(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => tanh_fast(x),
            Activation::Sigmoid => sigmoid(x),
            Activation::Softplus => {
                // Numerically stable: ln(1+e^x) = max(x,0) + ln(1+e^-|x|).
                x.max(0.0) + (-x.abs()).exp().ln_1p()
            }
        }
    }

    /// Scalar derivative.
    pub fn derivative(self, x: f32) -> f32 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => {
                // Same kernel as the forward, so σ' is exactly 1 - σ².
                let t = tanh_fast(x);
                1.0 - t * t
            }
            Activation::Sigmoid => {
                let s = sigmoid(x);
                s * (1.0 - s)
            }
            Activation::Softplus => sigmoid(x),
        }
    }

    /// Backward pass: `dx = dy ⊙ σ'(x)` given the cached forward input.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `dy` differ in shape.
    pub fn backward(self, x: &Tensor, dy: &Tensor) -> Tensor {
        x.zip(dy, |xi, g| self.derivative(xi) * g)
    }
}

/// The logistic sigmoid, exposed because the eNODE slope-adaptive stepsize
/// controller (§VII-A) uses it for its scaling factors β⁺ and β⁻.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

// Coefficients of the rational tanh approximation, shared verbatim by
// the scalar and AVX bodies. The decimal digits are kept exactly as the
// minimax fit published them; rustc rounds each to the nearest f32.
#[allow(clippy::excessive_precision)]
mod tanh_coeffs {
    pub const TANH_CLAMP: f32 = 7.905_311_107_635_498_05;
    pub const TANH_TINY: f32 = 0.0004;
    pub const TANH_ALPHA_1: f32 = 4.893_524_558_917_86e-3;
    pub const TANH_ALPHA_3: f32 = 6.372_619_288_754_36e-4;
    pub const TANH_ALPHA_5: f32 = 1.485_722_357_179_79e-5;
    pub const TANH_ALPHA_7: f32 = 5.122_297_090_371_14e-8;
    pub const TANH_ALPHA_9: f32 = -8.604_671_522_137_35e-11;
    pub const TANH_ALPHA_11: f32 = 2.000_187_904_824_77e-13;
    pub const TANH_ALPHA_13: f32 = -2.760_768_477_423_55e-16;
    pub const TANH_BETA_0: f32 = 4.893_525_185_543_85e-3;
    pub const TANH_BETA_2: f32 = 2.268_434_632_439_0e-3;
    pub const TANH_BETA_4: f32 = 1.185_347_056_866_54e-4;
    pub const TANH_BETA_6: f32 = 1.198_258_394_667_02e-6;
}
use tanh_coeffs::*;

/// Fast hyperbolic tangent: the classic degree-13/6 rational minimax
/// approximation (the same kernel Eigen and XNNPACK ship). Inputs clamp
/// to ±`TANH_CLAMP` where `tanh` saturates in f32; below
/// `TANH_TINY` the identity is already correctly rounded. Maximum
/// deviation from libm `tanhf` is a few float ulps (≲ 3·10⁻⁷ absolute).
///
/// Built from plain mul/add/div/min/max only — no FMA, no table lookups
/// — so the AVX body in [`Activation::apply_slice`] is a lane-for-lane
/// transcription and bitwise identical (see `crate::simd`).
pub fn tanh_fast(x: f32) -> f32 {
    if x.abs() < TANH_TINY {
        return x;
    }
    // min-then-max, NOT `clamp`: NaN propagation must match the AVX
    // `_mm256_max_ps(_mm256_min_ps(..))` chain lane for lane.
    #[allow(clippy::manual_clamp)]
    let xc = x.min(TANH_CLAMP).max(-TANH_CLAMP);
    let x2 = xc * xc;
    let mut p = x2 * TANH_ALPHA_13 + TANH_ALPHA_11;
    p = x2 * p + TANH_ALPHA_9;
    p = x2 * p + TANH_ALPHA_7;
    p = x2 * p + TANH_ALPHA_5;
    p = x2 * p + TANH_ALPHA_3;
    p = x2 * p + TANH_ALPHA_1;
    p *= xc;
    let mut q = x2 * TANH_BETA_6 + TANH_BETA_4;
    q = x2 * q + TANH_BETA_2;
    q = x2 * q + TANH_BETA_0;
    p / q
}

/// 8-wide AVX transcription of [`tanh_fast`]: identical operations in
/// identical order per lane (the tiny-input passthrough becomes a blend),
/// so the results are bitwise equal to the scalar kernel.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn tanh_slice_avx(xs: &mut [f32]) {
    use std::arch::x86_64::*;
    let hi = _mm256_set1_ps(TANH_CLAMP);
    let lo = _mm256_set1_ps(-TANH_CLAMP);
    let tiny = _mm256_set1_ps(TANH_TINY);
    let absmask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fff_ffff));
    let a13 = _mm256_set1_ps(TANH_ALPHA_13);
    let a11 = _mm256_set1_ps(TANH_ALPHA_11);
    let a9 = _mm256_set1_ps(TANH_ALPHA_9);
    let a7 = _mm256_set1_ps(TANH_ALPHA_7);
    let a5 = _mm256_set1_ps(TANH_ALPHA_5);
    let a3 = _mm256_set1_ps(TANH_ALPHA_3);
    let a1 = _mm256_set1_ps(TANH_ALPHA_1);
    let b6 = _mm256_set1_ps(TANH_BETA_6);
    let b4 = _mm256_set1_ps(TANH_BETA_4);
    let b2 = _mm256_set1_ps(TANH_BETA_2);
    let b0 = _mm256_set1_ps(TANH_BETA_0);
    let mut it = xs.chunks_exact_mut(8);
    for ch in &mut it {
        let x = _mm256_loadu_ps(ch.as_ptr());
        let tiny_mask = _mm256_cmp_ps(_mm256_and_ps(x, absmask), tiny, _CMP_LT_OQ);
        let xc = _mm256_max_ps(_mm256_min_ps(x, hi), lo);
        let x2 = _mm256_mul_ps(xc, xc);
        let mut p = _mm256_add_ps(_mm256_mul_ps(x2, a13), a11);
        p = _mm256_add_ps(_mm256_mul_ps(x2, p), a9);
        p = _mm256_add_ps(_mm256_mul_ps(x2, p), a7);
        p = _mm256_add_ps(_mm256_mul_ps(x2, p), a5);
        p = _mm256_add_ps(_mm256_mul_ps(x2, p), a3);
        p = _mm256_add_ps(_mm256_mul_ps(x2, p), a1);
        p = _mm256_mul_ps(p, xc);
        let mut q = _mm256_add_ps(_mm256_mul_ps(x2, b6), b4);
        q = _mm256_add_ps(_mm256_mul_ps(x2, q), b2);
        q = _mm256_add_ps(_mm256_mul_ps(x2, q), b0);
        let r = _mm256_div_ps(p, q);
        _mm256_storeu_ps(ch.as_mut_ptr(), _mm256_blendv_ps(r, x, tiny_mask));
    }
    for v in it.into_remainder() {
        *v = tanh_fast(*v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    #[test]
    fn relu_clamps() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        assert_eq!(Activation::Relu.forward(&x).data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn sigmoid_symmetry_and_range() {
        for &x in &[-50.0f32, -3.0, 0.0, 1.5, 80.0] {
            let s = sigmoid(x);
            assert!((0.0..=1.0).contains(&s));
            assert!((s + sigmoid(-x) - 1.0).abs() < 1e-6);
        }
        assert_eq!(sigmoid(0.0), 0.5);
    }

    #[test]
    fn derivatives_match_finite_difference() {
        let eps = 1e-3f32;
        for act in [
            Activation::Relu,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Softplus,
        ] {
            for &x in &[-2.0f32, -0.5, 0.7, 1.9] {
                let fd = (act.eval(x + eps) - act.eval(x - eps)) / (2.0 * eps);
                let an = act.derivative(x);
                assert!(
                    (fd - an).abs() < 5e-3,
                    "{act:?} at {x}: fd {fd} vs analytic {an}"
                );
            }
        }
    }

    #[test]
    fn backward_is_elementwise_chain() {
        let x = init::uniform(&[10], -2.0, 2.0, 1);
        let dy = init::uniform(&[10], -1.0, 1.0, 2);
        let dx = Activation::Tanh.backward(&x, &dy);
        for i in 0..10 {
            let expect = Activation::Tanh.derivative(x.data()[i]) * dy.data()[i];
            assert!((dx.data()[i] - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn softplus_stable_at_extremes() {
        assert!(Activation::Softplus.eval(100.0).is_finite());
        assert!(Activation::Softplus.eval(-100.0) >= 0.0);
        assert!((Activation::Softplus.eval(100.0) - 100.0).abs() < 1e-4);
    }

    #[test]
    fn tanh_fast_tracks_libm() {
        // Dense sweep across the active region plus the saturated tails:
        // the rational kernel stays within a few float ulps of libm.
        let mut worst = 0.0f32;
        let mut x = -9.0f32;
        while x <= 9.0 {
            let d = (tanh_fast(x) - x.tanh()).abs();
            worst = worst.max(d);
            x += 1e-3;
        }
        assert!(worst < 5e-7, "worst tanh deviation {worst}");
        // Odd symmetry, saturation, and the tiny-input passthrough.
        assert_eq!(tanh_fast(0.0), 0.0);
        assert_eq!(tanh_fast(2e-4), 2e-4);
        assert_eq!(tanh_fast(-0.75), -tanh_fast(0.75));
        assert!(tanh_fast(30.0) > 0.999_999);
        assert!(tanh_fast(-30.0) < -0.999_999);
    }

    #[test]
    fn tanh_slice_dispatch_matches_scalar_bitwise() {
        // Whatever body `apply_slice` picks on this host must agree with
        // the scalar kernel bit-for-bit — including the tiny-input blend,
        // signed zero, the saturated tails, and a non-multiple-of-8 tail.
        let mut vals: Vec<f32> = vec![0.0, -0.0, 3e-4, -3e-4, 5e-4, 8.5, -8.5, 100.0, -100.0];
        let sweep = init::uniform(&[50], -4.0, 4.0, 3);
        vals.extend_from_slice(sweep.data());
        let expect: Vec<f32> = vals.iter().map(|&v| tanh_fast(v)).collect();
        let mut got = vals.clone();
        Activation::Tanh.apply_slice(&mut got);
        for (i, (&e, &g)) in expect.iter().zip(&got).enumerate() {
            assert!(
                e.to_bits() == g.to_bits(),
                "lane {i} (x={}): scalar {e:?} vs dispatched {g:?}",
                vals[i]
            );
        }
    }
}
