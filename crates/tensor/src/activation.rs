//! Elementwise activation functions with forward and backward passes.

use crate::tensor::Tensor;

/// Elementwise activation kinds used by the embedded NNs.
///
/// Image-classification NODEs use [`Activation::Relu`] (with normalization);
/// dynamic-system NODEs use [`Activation::Tanh`], whose smoothness matters
/// for adaptive integrators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Activation {
    /// `max(0, x)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid `1 / (1 + e^-x)`.
    Sigmoid,
    /// Softplus `ln(1 + e^x)` — a smooth ReLU.
    Softplus,
}

impl Activation {
    /// Applies the activation elementwise.
    pub fn forward(self, x: &Tensor) -> Tensor {
        x.map(|v| self.eval(v))
    }

    /// Scalar evaluation.
    pub fn eval(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => sigmoid(x),
            Activation::Softplus => {
                // Numerically stable: ln(1+e^x) = max(x,0) + ln(1+e^-|x|).
                x.max(0.0) + (-x.abs()).exp().ln_1p()
            }
        }
    }

    /// Scalar derivative.
    pub fn derivative(self, x: f32) -> f32 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Sigmoid => {
                let s = sigmoid(x);
                s * (1.0 - s)
            }
            Activation::Softplus => sigmoid(x),
        }
    }

    /// Backward pass: `dx = dy ⊙ σ'(x)` given the cached forward input.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `dy` differ in shape.
    pub fn backward(self, x: &Tensor, dy: &Tensor) -> Tensor {
        x.zip(dy, |xi, g| self.derivative(xi) * g)
    }
}

/// The logistic sigmoid, exposed because the eNODE slope-adaptive stepsize
/// controller (§VII-A) uses it for its scaling factors β⁺ and β⁻.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    #[test]
    fn relu_clamps() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        assert_eq!(Activation::Relu.forward(&x).data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn sigmoid_symmetry_and_range() {
        for &x in &[-50.0f32, -3.0, 0.0, 1.5, 80.0] {
            let s = sigmoid(x);
            assert!((0.0..=1.0).contains(&s));
            assert!((s + sigmoid(-x) - 1.0).abs() < 1e-6);
        }
        assert_eq!(sigmoid(0.0), 0.5);
    }

    #[test]
    fn derivatives_match_finite_difference() {
        let eps = 1e-3f32;
        for act in [
            Activation::Relu,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Softplus,
        ] {
            for &x in &[-2.0f32, -0.5, 0.7, 1.9] {
                let fd = (act.eval(x + eps) - act.eval(x - eps)) / (2.0 * eps);
                let an = act.derivative(x);
                assert!(
                    (fd - an).abs() < 5e-3,
                    "{act:?} at {x}: fd {fd} vs analytic {an}"
                );
            }
        }
    }

    #[test]
    fn backward_is_elementwise_chain() {
        let x = init::uniform(&[10], -2.0, 2.0, 1);
        let dy = init::uniform(&[10], -1.0, 1.0, 2);
        let dx = Activation::Tanh.backward(&x, &dy);
        for i in 0..10 {
            let expect = Activation::Tanh.derivative(x.data()[i]) * dy.data()[i];
            assert!((dx.data()[i] - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn softplus_stable_at_extremes() {
        assert!(Activation::Softplus.eval(100.0).is_finite());
        assert!(Activation::Softplus.eval(-100.0) >= 0.0);
        assert!((Activation::Softplus.eval(100.0) - 100.0).abs() < 1e-4);
    }
}
