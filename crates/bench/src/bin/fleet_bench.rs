//! Emits the machine-readable fleet-serving benchmark.
//!
//! ```sh
//! cargo run --release -p enode-bench --bin fleet_bench              # full sweep -> BENCH_fleet.json
//! cargo run --release -p enode-bench --bin fleet_bench -- --quick /tmp/fleet.json
//! cargo run --release -p enode-bench --bin fleet_bench -- --smoke  # CI: validate only, write nothing
//! ```
//!
//! The sweep is a deterministic discrete-event simulation (virtual clock,
//! fixed cost-model lanes, consistent-hash routing): a rerun with the
//! same seed reproduces every cell bit-for-bit; only `host_cpus` /
//! `enode_threads_default` are host metadata. See
//! [`enode_bench::fleet_json`] for the format.

use enode_bench::fleet_json::{render_json, sweep_fleet, validate};
use enode_bench::report;

fn main() {
    let mut quick = false;
    let mut smoke = false;
    let mut out_path = String::from("BENCH_fleet.json");
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            "--smoke" => {
                smoke = true;
                quick = true;
            }
            other => out_path = other.to_string(),
        }
    }
    eprintln!(
        "sweeping fleet size x tenants x offered load over the shipped registry{} ...",
        if quick { " (quick)" } else { "" }
    );
    let cells = sweep_fleet(quick);

    report::header(&[
        "size",
        "tenants",
        "rps/tenant",
        "offered",
        "completed",
        "shed",
        "rejected",
        "p50_us",
        "p99_us",
        "makespan_us",
    ]);
    for cell in &cells {
        let r = &cell.result;
        let offered: u64 = r.tenants.iter().map(|t| t.offered).sum();
        let completed: u64 = r.tenants.iter().map(|t| t.completed).sum();
        let shed: u64 = r.tenants.iter().map(|t| t.shed).sum();
        let rejected: u64 = r.tenants.iter().map(|t| t.rejected + t.not_resident).sum();
        let p50 = r.tenants.iter().map(|t| t.p50_us).max().unwrap_or(0);
        let p99 = r.tenants.iter().map(|t| t.p99_us).max().unwrap_or(0);
        report::row(&[
            &cell.fleet_size.to_string(),
            &cell.tenants_per_model.to_string(),
            &format!("{:.0}", cell.offered_rps),
            &offered.to_string(),
            &completed.to_string(),
            &shed.to_string(),
            &rejected.to_string(),
            &p50.to_string(),
            &p99.to_string(),
            &r.makespan_us.to_string(),
        ]);
    }

    let json = render_json(&cells, quick);
    if let Err(e) = validate(&json) {
        eprintln!("fleet_bench: emitted document failed validation: {e}");
        std::process::exit(1);
    }
    if smoke {
        eprintln!(
            "smoke OK: JSON well-formed, per-tenant percentiles and residency fields present"
        );
        return;
    }
    std::fs::write(&out_path, json).expect("failed to write the benchmark JSON");
    eprintln!("wrote {out_path}");
}
