//! 28 nm energy model, calibrated to the paper's Fig 16 power numbers.
//!
//! The paper reports PrimeTime power for the synthesized prototype and
//! Ramulator estimates for DRAM. We reproduce the *mechanisms* (energy per
//! MAC, per SRAM byte, per DRAM byte, DRAM background power) with constants
//! fitted once so that Configuration A reproduces the published splits:
//!
//! * baseline inference: 5.65 W DRAM / 9.32 W total,
//! * eNODE inference: 0.48 W DRAM / 4.43 W total,
//! * baseline training: 11.03 W DRAM, eNODE training: 0.85 W DRAM.
//!
//! The fitted per-byte DRAM energy (≈3.6 nJ/B) absorbs the small edge
//! DRAM's activate, background and IO power at its low utilization — far
//! above the ~50 pJ/B pin energy of a fully-streamed DDR4, as expected for
//! a device mostly idling between bursts.

/// Energy/power constants for both designs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// Energy per FP16 MAC (PE datapath + local control), joules.
    pub e_mac: f64,
    /// Energy per SRAM byte moved, joules.
    pub e_sram_per_byte: f64,
    /// SRAM bytes moved per MAC (operand + psum traffic after register
    /// reuse inside the PE).
    pub sram_bytes_per_mac: f64,
    /// Extra per-MAC energy of eNODE's ring router, priority selector and
    /// packet tagging, joules.
    pub e_ring_per_mac: f64,
    /// Effective DRAM energy per byte (activate + IO + background share),
    /// joules — the Fig 16 calibration constant.
    pub e_dram_per_byte: f64,
    /// DRAM background power while the accelerator is running, watts.
    pub p_dram_background: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            e_mac: 12.0e-12,
            e_sram_per_byte: 10.0e-12,
            sram_bytes_per_mac: 0.5,
            e_ring_per_mac: 0.3e-12,
            e_dram_per_byte: 3.9e-9,
            p_dram_background: 0.38,
        }
    }
}

impl EnergyModel {
    /// Compute + SRAM energy for `macs` MACs (joules).
    pub fn compute_energy(&self, macs: f64, enode: bool) -> f64 {
        let per_mac = self.e_mac
            + self.sram_bytes_per_mac * self.e_sram_per_byte
            + if enode { self.e_ring_per_mac } else { 0.0 };
        macs * per_mac
    }

    /// DRAM energy for `bytes` of traffic over `seconds` of runtime
    /// (joules): per-byte cost plus background power.
    pub fn dram_energy(&self, bytes: f64, seconds: f64) -> f64 {
        bytes * self.e_dram_per_byte + self.p_dram_background * seconds
    }

    /// Component-wise energy breakdown of a run.
    pub fn breakdown(
        &self,
        macs: f64,
        dram_bytes: f64,
        seconds: f64,
        enode: bool,
    ) -> EnergyBreakdown {
        EnergyBreakdown {
            mac_j: macs * self.e_mac,
            sram_j: macs * self.sram_bytes_per_mac * self.e_sram_per_byte,
            ring_j: if enode {
                macs * self.e_ring_per_mac
            } else {
                0.0
            },
            dram_io_j: dram_bytes * self.e_dram_per_byte,
            dram_background_j: self.p_dram_background * seconds,
        }
    }
}

/// Per-component energy of one simulated run, joules.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// PE datapath (FP16 MACs).
    pub mac_j: f64,
    /// On-chip SRAM traffic.
    pub sram_j: f64,
    /// Ring router / priority selector / packet tagging (eNODE only).
    pub ring_j: f64,
    /// DRAM transfer energy.
    pub dram_io_j: f64,
    /// DRAM background over the runtime.
    pub dram_background_j: f64,
}

impl EnergyBreakdown {
    /// Total joules across components.
    pub fn total_j(&self) -> f64 {
        self.mac_j + self.sram_j + self.ring_j + self.dram_io_j + self.dram_background_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_energy_linear_in_macs() {
        let m = EnergyModel::default();
        let e1 = m.compute_energy(1e9, false);
        let e2 = m.compute_energy(2e9, false);
        assert!((e2 / e1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn enode_compute_slightly_costlier_per_mac() {
        let m = EnergyModel::default();
        let base = m.compute_energy(1e9, false);
        let enode = m.compute_energy(1e9, true);
        assert!(enode > base);
        assert!(enode < base * 1.2, "ring overhead must stay small");
    }

    #[test]
    fn dram_energy_has_background_floor() {
        let m = EnergyModel::default();
        let idle = m.dram_energy(0.0, 1.0);
        assert!((idle - m.p_dram_background).abs() < 1e-12);
        let busy = m.dram_energy(1e9, 1.0);
        assert!(busy > idle);
    }

    #[test]
    fn breakdown_components_sum_to_totals() {
        let m = EnergyModel::default();
        let (macs, bytes, secs) = (1e11, 2e8, 0.5);
        let b = m.breakdown(macs, bytes, secs, true);
        let total = m.compute_energy(macs, true) + m.dram_energy(bytes, secs);
        assert!((b.total_j() - total).abs() < 1e-9 * total);
        assert_eq!(m.breakdown(macs, bytes, secs, false).ring_j, 0.0);
        assert!(b.ring_j > 0.0);
    }

    #[test]
    fn full_throughput_compute_power_plausible() {
        // 256 MACs/cycle at 1 GHz: compute power should land in the
        // 3–4.5 W band the paper's Fig 16 implies for core+SRAM.
        let m = EnergyModel::default();
        let p = m.compute_energy(256e9, false);
        assert!(p > 3.0 && p < 4.5, "baseline compute power {p:.2} W");
    }
}
