//! Shared FNV-1a 64-bit content fingerprints.
//!
//! The cost-table sweep ([`crate::table`]), the serving-policy bridge
//! (`enode_serve::hwcost`) and the model registry
//! (`enode_serve::registry`) all stamp artifacts with a content hash so
//! static lints (`E093`, `E113`) can prove a committed table or a
//! published model version was derived from the ladder it is being
//! applied to. They must agree on the hash — this module is the single
//! definition: plain FNV-1a over little-endian field bytes, rendered as
//! 16 lowercase hex digits. No host state, no allocation while hashing,
//! byte-stable forever (the pinned-digest test below is the contract).

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher.
///
/// Fields are fed in a fixed order with fixed-width little-endian
/// encodings; the resulting digest is stable across hosts and releases
/// unless the hashed content actually changes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fnv64 {
    h: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the offset basis.
    pub fn new() -> Self {
        Fnv64 { h: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h ^= b as u64;
            self.h = self.h.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs an `f64` as the little-endian bytes of its exact bit
    /// pattern (no rounding, `-0.0 != 0.0`).
    pub fn write_f64_bits(&mut self, v: f64) {
        self.write(&v.to_bits().to_le_bytes());
    }

    /// The current 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.h
    }

    /// The current digest as 16 lowercase hex digits — the textual form
    /// every committed artifact records.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.h)
    }
}

/// One-shot convenience: the hex FNV-1a digest of `bytes`.
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.hex()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The published FNV-1a 64 reference vectors. If this test ever
    /// fails, every committed fingerprint (COST_TABLE.json policies,
    /// registry versions) silently invalidates — the digests are pinned
    /// precisely so that cannot happen unnoticed.
    #[test]
    fn digests_are_pinned_to_the_reference_vectors() {
        assert_eq!(fnv1a_hex(b""), "cbf29ce484222325");
        assert_eq!(fnv1a_hex(b"a"), "af63dc4c8601ec8c");
        assert_eq!(fnv1a_hex(b"foobar"), "85944171f73967e8");
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.hex(), fnv1a_hex(b"foobar"));
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn field_encodings_are_little_endian_bit_patterns() {
        let mut a = Fnv64::new();
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = Fnv64::new();
        b.write(&[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01]);
        assert_eq!(a, b);

        let mut c = Fnv64::new();
        c.write_f64_bits(1.5);
        let mut d = Fnv64::new();
        d.write(&1.5f64.to_bits().to_le_bytes());
        assert_eq!(c, d);
        // Bit patterns, not values: the two IEEE zeros hash differently.
        let mut e = Fnv64::new();
        e.write_f64_bits(0.0);
        let mut f = Fnv64::new();
        f.write_f64_bits(-0.0);
        assert_ne!(e.finish(), f.finish());
    }
}
