//! Regenerates the paper's fig16 experiment. See the module docs in
//! `enode_bench::figures::fig16_power`.

fn main() {
    enode_bench::figures::fig16_power::run();
}
