//! Randomized property tests for the integrator substrate.
//!
//! Formerly `proptest` suites; now deterministic sweeps driven by the
//! in-repo [`enode_tensor::rng::Rng64`] generator so the workspace builds
//! fully offline.

use enode_ode::controller::{
    ClassicController, ConventionalSearchController, SlopeAdaptiveController, StepController,
    TrialDecision,
};
use enode_ode::ddg::DepthFirstDdg;
use enode_ode::solver::{solve_adaptive, solve_fixed, AdaptiveOptions};
use enode_ode::tableau::{all_tableaux, ButcherTableau};
use enode_tensor::rng::Rng64;

const CASES: usize = 48;

/// Linearity: for the linear ODE y' = A y, integrating a scaled initial
/// condition scales the solution (every RK method is linear in y0).
#[test]
fn rk_linear_in_initial_condition() {
    let mut rng = Rng64::seed_from_u64(0xA1);
    let tab = ButcherTableau::rk23_bogacki_shampine();
    let f = |_t: f64, y: &Vec<f64>| vec![-0.7 * y[0]];
    for _ in 0..CASES {
        let scale = rng.gen_range_f64(0.1, 10.0);
        let steps = rng.gen_range_usize(1, 50);
        let base = solve_fixed(f, 0.0, 1.0, vec![1.0], &tab, steps);
        let scaled = solve_fixed(f, 0.0, 1.0, vec![scale], &tab, steps);
        let expect = base.final_state()[0] * scale;
        assert!(
            (scaled.final_state()[0] - expect).abs() < 1e-9 * expect.abs().max(1.0),
            "scale={scale} steps={steps}"
        );
    }
}

/// Time-grid invariance: splitting a fixed-step solve into two spans
/// gives the same answer as one solve with the same total steps.
#[test]
fn fixed_solve_composes() {
    let mut rng = Rng64::seed_from_u64(0xA2);
    let tab = ButcherTableau::rk4();
    let f = |t: f64, y: &Vec<f64>| vec![y[0] * (0.2 * t).sin()];
    for _ in 0..CASES {
        let n1 = rng.gen_range_usize(1, 20);
        let n2 = rng.gen_range_usize(1, 20);
        let total = n1 + n2;
        let t_mid = n1 as f64 / total as f64;
        let whole = solve_fixed(f, 0.0, 1.0, vec![1.0], &tab, total);
        let first = solve_fixed(f, 0.0, t_mid, vec![1.0], &tab, n1);
        let second = solve_fixed(f, t_mid, 1.0, first.final_state().clone(), &tab, n2);
        assert!(
            (whole.final_state()[0] - second.final_state()[0]).abs() < 1e-10,
            "n1={n1} n2={n2}: {} vs {}",
            whole.final_state()[0],
            second.final_state()[0]
        );
    }
}

/// The adaptive solver always lands exactly on the end time and its
/// accepted count equals the number of evaluation points.
#[test]
fn adaptive_reaches_end() {
    let mut rng = Rng64::seed_from_u64(0xA3);
    let tab = ButcherTableau::rk23_bogacki_shampine();
    for _ in 0..24 {
        let t1 = rng.gen_range_f64(0.5, 5.0);
        let tol_exp = rng.gen_range_usize(3, 8) as i32;
        let mut ctl = ClassicController::new(tab.error_order());
        let opts = AdaptiveOptions::new(10f64.powi(-tol_exp));
        let sol = solve_adaptive(
            |t, y: &Vec<f64>| vec![(t).cos() * y[0].clamp(-10.0, 10.0)],
            0.0,
            t1,
            vec![1.0],
            &tab,
            &mut ctl,
            &opts,
        )
        .unwrap();
        assert!((sol.final_time() - t1).abs() < 1e-9, "t1={t1}");
        assert_eq!(sol.stats.accepted, sol.n_eval(), "t1={t1} tol=1e-{tol_exp}");
    }
}

/// Controller sanity: the classic controller's retry stepsize is always
/// strictly smaller on rejection, and decisions are deterministic.
#[test]
fn classic_controller_shrinks_on_reject() {
    let mut rng = Rng64::seed_from_u64(0xA4);
    for _ in 0..CASES {
        let dt = rng.gen_range_f64(1e-6, 10.0);
        let ratio = 10f64.powf(rng.gen_range_f64(0.0001, 6.0));
        let mut c = ClassicController::new(2);
        match c.on_trial(dt, ratio) {
            TrialDecision::Reject { dt_retry } => {
                assert!(dt_retry < dt, "dt={dt} ratio={ratio}")
            }
            TrialDecision::Accept { .. } => panic!("must reject ratio {ratio} > 1"),
        }
    }
}

/// Conventional search: retry is exactly dt * shrink.
#[test]
fn conventional_fixed_shrink() {
    let mut rng = Rng64::seed_from_u64(0xA5);
    for _ in 0..CASES {
        let dt = rng.gen_range_f64(1e-6, 10.0);
        let shrink = rng.gen_range_f64(0.1, 0.9);
        let mut c = ConventionalSearchController::new(0.1, shrink);
        match c.on_trial(dt, 2.0) {
            TrialDecision::Reject { dt_retry } => {
                assert!(
                    (dt_retry - dt * shrink).abs() < 1e-15,
                    "dt={dt} shrink={shrink}"
                )
            }
            TrialDecision::Accept { .. } => panic!("must reject"),
        }
    }
}

/// Slope-adaptive invariant: β factors stay in their stated ranges for
/// any counter value, and the initial dt never exceeds the remaining
/// time.
#[test]
fn slope_adaptive_bounds() {
    let mut rng = Rng64::seed_from_u64(0xA6);
    for _ in 0..CASES {
        let c_acc = rng.gen_range_usize(1, 100) as u32;
        let remaining = rng.gen_range_f64(0.01, 10.0);
        assert!(SlopeAdaptiveController::beta_plus(c_acc) > 1.0);
        assert!(SlopeAdaptiveController::beta_plus(c_acc) <= 2.0);
        let bm = SlopeAdaptiveController::beta_minus(c_acc);
        assert!(bm > 0.0 && bm < 1.0);
        let mut ctl = SlopeAdaptiveController::new(1, 1);
        for _ in 0..c_acc {
            ctl.end_point(true);
        }
        let dt = ctl.begin_point(Some(5.0), remaining);
        assert!(
            dt <= remaining + 1e-12,
            "c_acc={c_acc} remaining={remaining}"
        );
    }
}

/// DDG structural identities hold for every tableau: node counts follow
/// the closed forms and the schedule is always legal.
#[test]
fn ddg_counts() {
    for tab in all_tableaux() {
        let ddg = DepthFirstDdg::from_tableau(&tab);
        let s = tab.stages();
        assert_eq!(ddg.num_integral_states(), s, "{}", tab.name());
        assert_eq!(ddg.num_partial_states(), s * (s - 1) / 2, "{}", tab.name());
        if tab.is_adaptive() {
            assert_eq!(ddg.num_error_partials(), s - 1, "{}", tab.name());
        } else {
            assert_eq!(ddg.num_error_partials(), 0, "{}", tab.name());
        }
        assert!(ddg.verify_legal(), "{}", tab.name());
        assert_eq!(ddg.baseline_full_maps(), s + 1, "{}", tab.name());
    }
}

/// Depth-first buffer rows grow linearly with conv depth, with slope
/// kernel−1.
#[test]
fn buffer_rows_linear_in_conv_depth() {
    let ddg = DepthFirstDdg::from_tableau(&ButcherTableau::rk23_bogacki_shampine());
    for n_conv in 1usize..16 {
        for kernel in [3usize, 5, 7] {
            let r1 = ddg.buffer_rows(n_conv, kernel);
            let r2 = ddg.buffer_rows(n_conv + 1, kernel);
            assert_eq!(r2 - r1, kernel - 1, "n_conv={n_conv} kernel={kernel}");
        }
    }
}
