//! Fig 4(b): memory profile of a 4-integration-layer NODE vs ResNet-100
//! (paper: NODE inference needs 2.5× the memory size; NODE training does
//! 41.5× the memory access).

use crate::driver::{conventional_opts, run_bench, Bench};
use crate::report;
use enode_node::profile::{node_inference_memory, node_training_memory};
use enode_workloads::resnet::ResNetProfile;

/// Profiles NODE vs ResNet-100 memory at matched feature scale.
pub fn run() {
    report::banner("Fig 4b", "memory profile: NODE vs ResNet-100");
    let bench = Bench::CifarLike;
    let opts = conventional_opts(bench);
    let r = run_bench(bench, &opts, 2, 13);
    let p = &r.profile;

    // NODE state: the test batch is [20, 4, 16, 16] FP16.
    let state_bytes = (20 * 4 * 16 * 16 * 2) as u64;
    let node_inf = node_inference_memory(state_bytes, 4, &p.forward);
    let node_tr = node_training_memory(state_bytes, 4, p);

    // ResNet-100 at the same feature scale (16x16, 4 base channels),
    // batch-scaled to match. Sizes compare live *activation* state (the
    // quantity the integral states blow up); weights are identical-order
    // and excluded from both sides, as in the paper's Fig 4(b).
    let resnet = ResNetProfile {
        layers: 100,
        input_size: 16,
        base_channels: 4,
    };
    let batch = 20u64;
    let rn_inf_size = resnet.inference_activation_bytes() * batch;
    let rn_inf_access = resnet.inference_access_bytes() * batch;
    let rn_tr_size = resnet.training_activation_bytes() * batch;
    let rn_tr_access = resnet.training_access_bytes() * batch;

    report::header(&["metric", "NODE", "ResNet-100", "ratio", "paper"]);
    report::row(&[
        "inference size",
        &report::mb(node_inf.size_bytes as f64),
        &report::mb(rn_inf_size as f64),
        &report::ratio(node_inf.size_bytes as f64 / rn_inf_size as f64),
        "2.5x",
    ]);
    report::row(&[
        "inference access",
        &report::mb(node_inf.access_bytes as f64),
        &report::mb(rn_inf_access as f64),
        &report::ratio(node_inf.access_bytes as f64 / rn_inf_access as f64),
        "-",
    ]);
    report::row(&[
        "training size",
        &report::mb(node_tr.size_bytes as f64),
        &report::mb(rn_tr_size as f64),
        &report::ratio(node_tr.size_bytes as f64 / rn_tr_size as f64),
        "-",
    ]);
    report::row(&[
        "training access",
        &report::mb(node_tr.access_bytes as f64),
        &report::mb(rn_tr_access as f64),
        &report::ratio(node_tr.access_bytes as f64 / rn_tr_access as f64),
        "41.5x",
    ]);
    println!();
    println!("paper: NODE inference 2.5x ResNet size; NODE training 41.5x ResNet access");
}
