//! A small deterministic PRNG for the whole reproduction.
//!
//! The repo builds fully offline, so instead of the `rand` crate every
//! randomized component (initializers, synthetic datasets, randomized
//! tests) draws from this in-repo generator: a SplitMix64 seeder feeding
//! an xorshift64* stream. Both are tiny, well-studied generators with
//! excellent statistical behaviour for non-cryptographic use, and —
//! crucially for the experiments — every draw is bit-for-bit reproducible
//! from an explicit `u64` seed.
//!
//! # Example
//!
//! ```
//! use enode_tensor::rng::Rng64;
//! let mut a = Rng64::seed_from_u64(42);
//! let mut b = Rng64::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.gen_range_f64(0.5, 2.5);
//! assert!((0.5..2.5).contains(&x));
//! ```

/// Advances a SplitMix64 state and returns the next output.
///
/// Used directly for seed expansion (e.g. deriving per-stream seeds) and
/// internally to initialize [`Rng64`].
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable xorshift64* generator (SplitMix64-seeded).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a `u64` seed. Any seed (including 0) is
    /// valid; SplitMix64 expansion guarantees a non-zero xorshift state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        let mut state = splitmix64(&mut s);
        if state == 0 {
            state = splitmix64(&mut s) | 1;
        }
        Rng64 { state }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// The next 32-bit output (upper half of the 64-bit stream).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits of randomness).
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f32` in `[0, 1)` (24 mantissa bits of randomness).
    #[inline]
    pub fn gen_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "gen_range_f64: lo must be < hi");
        lo + self.gen_f64() * (hi - lo)
    }

    /// A uniform `f32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn gen_range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "gen_range_f32: lo must be < hi");
        lo + self.gen_f32() * (hi - lo)
    }

    /// A uniform integer in `[lo, hi)` (Lemire-style widening reduction;
    /// the tiny modulo bias of plain reduction is avoided).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "gen_range_usize: lo must be < hi");
        let span = (hi - lo) as u64;
        let x = self.next_u64();
        lo + (((x as u128 * span as u128) >> 64) as u64) as usize
    }

    /// `true` with probability 1/2.
    #[inline]
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A standard-normal sample (Box–Muller, cosine branch).
    pub fn gen_normal_f32(&mut self) -> f32 {
        let u1 = self.gen_range_f32(f32::EPSILON, 1.0);
        let u2 = self.gen_f32();
        (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
    }

    /// A fresh generator seeded from this one (independent substream).
    pub fn fork(&mut self) -> Rng64 {
        Rng64::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng64::seed_from_u64(7);
        let mut b = Rng64::seed_from_u64(7);
        let mut c = Rng64::seed_from_u64(8);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn zero_seed_works() {
        let mut r = Rng64::seed_from_u64(0);
        // Must not get stuck at zero.
        assert_ne!(r.next_u64(), 0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = Rng64::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.gen_f32();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = Rng64::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = r.gen_range_f64(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
            let i = r.gen_range_usize(10, 17);
            assert!((10..17).contains(&i));
        }
    }

    #[test]
    fn usize_range_covers_all_values() {
        let mut r = Rng64::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.gen_range_usize(0, 7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn mean_and_variance_sane() {
        let mut r = Rng64::seed_from_u64(4);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gen_f64()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.01, "var {var}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng64::seed_from_u64(5);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gen_normal_f32() as f64).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn fork_gives_independent_stream() {
        let mut r = Rng64::seed_from_u64(6);
        let mut f = r.fork();
        assert_ne!(r.next_u64(), f.next_u64());
    }
}
