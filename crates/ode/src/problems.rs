//! Canonical test problems with analytic solutions.
//!
//! Used by the solver test suites and by the controller experiments: the
//! slope-adaptive stepsize search (§VII-A) pays off exactly when the slope
//! of the solution varies over time, so the problems here span constant,
//! decaying and oscillating slope regimes.

/// A scalar/vector ODE test problem with a known exact solution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Problem {
    /// `y' = −λ y`, solution `y0·e^{−λt}` (slope decays).
    ExponentialDecay,
    /// `y'' = −ω² y` as a 2-D system, solution `cos(ωt)` (slope oscillates).
    HarmonicOscillator,
    /// `y' = r·y·(1 − y)`, logistic growth (slope rises then falls).
    Logistic,
    /// `y' = cos(t²)·t` — a chirp whose slope varies faster and faster,
    /// the adversarial case for fixed-scaling stepsize search.
    Chirp,
}

impl Problem {
    /// Dimension of the state vector.
    pub fn dim(self) -> usize {
        match self {
            Problem::HarmonicOscillator => 2,
            _ => 1,
        }
    }

    /// The standard initial state.
    pub fn initial_state(self) -> Vec<f64> {
        match self {
            Problem::ExponentialDecay => vec![1.0],
            Problem::HarmonicOscillator => vec![1.0, 0.0],
            Problem::Logistic => vec![0.1],
            Problem::Chirp => vec![0.0],
        }
    }

    /// The right-hand side `f(t, y)`.
    pub fn f(self, t: f64, y: &[f64]) -> Vec<f64> {
        match self {
            Problem::ExponentialDecay => vec![-y[0]],
            Problem::HarmonicOscillator => vec![y[1], -y[0]],
            Problem::Logistic => vec![2.0 * y[0] * (1.0 - y[0])],
            Problem::Chirp => vec![(t * t).cos() * t],
        }
    }

    /// The exact solution at time `t` (from the standard initial state).
    pub fn exact(self, t: f64) -> Vec<f64> {
        match self {
            Problem::ExponentialDecay => vec![(-t).exp()],
            Problem::HarmonicOscillator => vec![t.cos(), -t.sin()],
            Problem::Logistic => {
                // y(t) = 1 / (1 + (1/y0 - 1) e^{-rt}), y0 = 0.1, r = 2.
                vec![1.0 / (1.0 + 9.0 * (-2.0 * t).exp())]
            }
            Problem::Chirp => {
                // ∫₀ᵗ s·cos(s²) ds = sin(t²)/2.
                vec![(t * t).sin() / 2.0]
            }
        }
    }

    /// All problems.
    pub fn all() -> [Problem; 4] {
        [
            Problem::ExponentialDecay,
            Problem::HarmonicOscillator,
            Problem::Logistic,
            Problem::Chirp,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ClassicController;
    use crate::solver::{solve_adaptive, AdaptiveOptions};
    use crate::tableau::ButcherTableau;

    #[test]
    fn exact_solutions_satisfy_ode() {
        // d/dt exact(t) ≈ f(t, exact(t)) by central differences.
        let eps = 1e-5;
        for p in Problem::all() {
            for &t in &[0.3, 1.1, 2.7] {
                let lo = p.exact(t - eps);
                let hi = p.exact(t + eps);
                let f = p.f(t, &p.exact(t));
                for i in 0..p.dim() {
                    let fd = (hi[i] - lo[i]) / (2.0 * eps);
                    assert!(
                        (fd - f[i]).abs() < 1e-4 * f[i].abs().max(1.0),
                        "{p:?} component {i} at t={t}: fd {fd} vs f {}",
                        f[i]
                    );
                }
            }
        }
    }

    #[test]
    fn initial_states_match_exact_at_zero() {
        for p in Problem::all() {
            let y0 = p.initial_state();
            let e0 = p.exact(0.0);
            for i in 0..p.dim() {
                assert!((y0[i] - e0[i]).abs() < 1e-12, "{p:?}");
            }
        }
    }

    #[test]
    fn adaptive_solver_matches_exact_on_all_problems() {
        let tab = ButcherTableau::rk23_bogacki_shampine();
        for p in Problem::all() {
            let mut ctl = ClassicController::new(tab.error_order());
            let sol = solve_adaptive(
                |t, y: &Vec<f64>| p.f(t, y),
                0.0,
                3.0,
                p.initial_state(),
                &tab,
                &mut ctl,
                &AdaptiveOptions::new(1e-8),
            )
            .unwrap();
            let exact = p.exact(3.0);
            for i in 0..p.dim() {
                assert!(
                    (sol.final_state()[i] - exact[i]).abs() < 1e-5,
                    "{p:?} component {i}: {} vs {}",
                    sol.final_state()[i],
                    exact[i]
                );
            }
        }
    }
}
