//! Mutation seeds: each test takes a shipped-style artifact, injects one
//! specific defect, and asserts the *exact* lint code fires — and that
//! unrelated codes stay silent. Together with
//! `lint_everything`'s clean-run test this pins the discrimination of the
//! `E05x`/`E06x` families: the lints catch the planted defect without
//! drowning it in collateral noise.

use enode_analysis::consistency::lint_consistency;
use enode_analysis::diag::{Code, Severity};
use enode_analysis::precision::lint_precision;
use enode_analysis::{affine, cost, lint_everything, schedcheck, servecheck, PipelineArtifact};
use enode_hw::config::HwConfig;
use enode_node::inference::NodeSolveOptions;
use enode_node::model::NodeModel;
use enode_serve::ServeConfig;
use enode_tensor::access::{
    AccessKind, KernelAccessSummary, RegionDecl, ScratchDecl, ScratchSource, StridedAccess,
};
use enode_tensor::conv::Conv2d;
use enode_tensor::dense::Dense;
use enode_tensor::network::{Network, Op};
use enode_tensor::norm::GroupNorm;
use enode_tensor::Tensor;

/// The shipped edge-inference pipeline with a (possibly mutated) Table I
/// hardware configuration.
fn image_artifact(cfg: HwConfig) -> PipelineArtifact {
    PipelineArtifact::new(
        "edge image_classifier(4 ch, 2 conv)",
        NodeModel::image_classifier(4, 2, 2, 10, 9),
        vec![1, 4, 16, 16],
        1.0,
        NodeSolveOptions::new(1e-6),
        Some(cfg),
    )
}

#[test]
fn baseline_shipped_artifacts_are_error_clean() {
    // The mutation tests below only mean something if the unmutated
    // pipelines pass: every code asserted here must be absent from the
    // full shipped-artifact run.
    let ds = lint_everything();
    assert!(
        !ds.items().iter().any(|d| d.severity() == Severity::Error),
        "shipped artifacts must lint error-clean:\n{}",
        ds.render()
    );
}

#[test]
fn oversized_groupnorm_gain_overflows_fp16_e050() {
    // Mutation: inflate a GroupNorm gain to 1e4. The normalized value is
    // bounded by sqrt(N-1) ~ 22.6 for the 512-element groups here, so the
    // op's worst-case output is ~2.3e5 — past F16::MAX.
    let mut gn = GroupNorm::new(4, 2);
    for g in gn.gamma_mut().data_mut() {
        *g = 1.0e4;
    }
    let net = Network::new(vec![
        Op::conv2d(Conv2d::new_seeded(4, 4, 3, 9)),
        Op::group_norm(gn),
    ]);
    let artifact = PipelineArtifact::new(
        "mutated groupnorm gain",
        NodeModel::new(vec![net], (0.0, 1.0)),
        vec![1, 4, 16, 16],
        1.0,
        NodeSolveOptions::new(1e-6).with_fp16_storage(),
        None,
    );
    let ds = lint_precision(&artifact);
    assert!(ds.has_code(Code::E050PrecOpOverflow), "{}", ds.render());
    // The defect is in the op, not the parameters or the group geometry.
    assert!(!ds.has_code(Code::E052PrecNonFiniteParam));
    assert!(!ds.has_code(Code::E053PrecDegenerateGroupNorm));
}

#[test]
fn stage_combine_overflow_fires_e051_without_e050() {
    // Every op output stays inside f16 range (tanh caps at 1, the dense
    // row sum is 6e4 < 65504), but the RK combine p1 = y + h*a10*k0 with
    // h = 20 crosses F16::MAX. Only the combine code may fire.
    let dense = Dense::from_parts(Tensor::from_vec(vec![6.0e4], &[1, 1]), Tensor::zeros(&[1]));
    let net = Network::new(vec![Op::tanh(), Op::dense(dense)]);
    let artifact = PipelineArtifact::new(
        "mutated combine overflow",
        NodeModel::new(vec![net], (0.0, 20.0)),
        vec![1, 1],
        4.0,
        NodeSolveOptions::new(1e-2).with_default_dt(20.0),
        None,
    );
    let ds = lint_precision(&artifact);
    assert!(
        ds.has_code(Code::E051PrecCombineOverflow),
        "{}",
        ds.render()
    );
    assert!(!ds.has_code(Code::E050PrecOpOverflow), "{}", ds.render());
}

#[test]
fn nan_parameter_fires_e052_and_suppresses_range_pass() {
    let dense = Dense::from_parts(
        Tensor::from_vec(vec![f32::NAN], &[1, 1]),
        Tensor::zeros(&[1]),
    );
    let net = Network::new(vec![Op::dense(dense)]);
    let artifact = PipelineArtifact::new(
        "mutated nan weight",
        NodeModel::new(vec![net], (0.0, 1.0)),
        vec![1, 1],
        1.0,
        NodeSolveOptions::new(1e-2).with_fp16_storage(),
        None,
    );
    let ds = lint_precision(&artifact);
    assert!(ds.has_code(Code::E052PrecNonFiniteParam), "{}", ds.render());
    // A NaN bound would poison every downstream magnitude; the range pass
    // must bail rather than emit nonsense overflow reports.
    assert!(!ds.has_code(Code::E050PrecOpOverflow));
    assert!(!ds.has_code(Code::E051PrecCombineOverflow));
}

#[test]
fn single_element_groups_fire_e053() {
    // GroupNorm(2, 2) over a [1, 2, 1, 1] state: one element per group,
    // zero variance to normalize by.
    let net = Network::new(vec![Op::group_norm(GroupNorm::new(2, 2))]);
    let artifact = PipelineArtifact::new(
        "mutated degenerate groups",
        NodeModel::new(vec![net], (0.0, 1.0)),
        vec![1, 2, 1, 1],
        1.0,
        NodeSolveOptions::new(1e-2),
        None,
    );
    let ds = lint_precision(&artifact);
    assert!(
        ds.has_code(Code::E053PrecDegenerateGroupNorm),
        "{}",
        ds.render()
    );
}

#[test]
fn overflowing_state_fires_checkpoint_and_replay_codes() {
    // An input bound already past F16::MAX: the fp16 ACA checkpoint that
    // stores it (E054) and the replay that re-expands it (E056) both
    // fail, independently of the (also overflowing) op outputs.
    let net = Network::new(vec![Op::relu()]);
    let artifact = PipelineArtifact::new(
        "mutated checkpoint overflow",
        NodeModel::new(vec![net], (0.0, 1.0)),
        vec![1, 2],
        7.0e4,
        NodeSolveOptions::new(1e-2).with_fp16_storage(),
        None,
    );
    let ds = lint_precision(&artifact);
    assert!(
        ds.has_code(Code::E054PrecCheckpointOverflow),
        "{}",
        ds.render()
    );
    assert!(
        ds.has_code(Code::E056PrecAdjointReplayOverflow),
        "{}",
        ds.render()
    );
}

#[test]
fn mapping_exceeding_sram_residency_fires_e060() {
    // Mutation: shrink the per-core weight SRAM to 512 bytes; the conv
    // stacks mapped onto each core can no longer stay resident.
    let mut cfg = HwConfig::config_a();
    cfg.weight_buffer_bytes = 512;
    let ds = lint_consistency(&image_artifact(cfg));
    assert!(ds.has_code(Code::E060XArtMapResidency), "{}", ds.render());
    assert!(!ds.has_code(Code::E061XArtAcaBuffer), "{}", ds.render());
}

#[test]
fn undersized_aca_checkpoint_buffer_fires_e061() {
    // Mutation: shrink the training buffer to 1 KiB; the checkpoint set
    // plus one recompute interval's activation cache cannot fit.
    let mut cfg = HwConfig::config_a();
    cfg.training_buffer_bytes = 1024;
    let ds = lint_consistency(&image_artifact(cfg));
    assert!(ds.has_code(Code::E061XArtAcaBuffer), "{}", ds.render());
    assert!(!ds.has_code(Code::E060XArtMapResidency), "{}", ds.render());
}

#[test]
fn controller_bound_mutations_fire_e062() {
    // dt_min raised past the nominal stepsize: the controller can never
    // shrink below its own starting point.
    let mut inverted = image_artifact(HwConfig::config_a());
    inverted.solver.dt_min = 0.5;
    let ds = lint_consistency(&inverted);
    assert!(
        ds.has_code(Code::E062XArtControllerBounds),
        "{}",
        ds.render()
    );

    // Trial budget too small to ever walk from default_dt down to dt_min.
    let mut starved = image_artifact(HwConfig::config_a());
    starved.solver.max_trials_per_point = 4;
    let ds = lint_consistency(&starved);
    assert!(
        ds.has_code(Code::E062XArtControllerBounds),
        "{}",
        ds.render()
    );
}

/// A healthy 8-item tile split (64 elements per tile) for the affine
/// mutation seeds below: each mutation breaks exactly one obligation.
fn tile_split() -> KernelAccessSummary {
    KernelAccessSummary {
        kernel: "mutated.tile_split",
        items: 8,
        grain: 1,
        flops_per_item: 32 * 1024,
        regions: vec![RegionDecl::output("y", 8 * 64)],
        accesses: vec![StridedAccess::contiguous("y", AccessKind::Write, 64)],
        scratch: vec![],
    }
}

#[test]
fn affine_baseline_tile_split_proves_clean() {
    let ds = affine::lint_summary(&tile_split());
    assert!(ds.is_empty(), "{}", ds.render());
}

#[test]
fn off_by_one_stride_fires_e080_statically() {
    // Mutation: each tile writes one element too many, reaching into the
    // next item's tile. The congruence check (d0 = 1, m0 = 64 <= count-1)
    // catches the collision without running any schedule.
    let mut s = tile_split();
    s.accesses[0].count = 65;
    let ds = affine::lint_summary(&s);
    assert!(ds.has_code(Code::E080AffineLaneOverlap), "{}", ds.render());
    assert!(
        !ds.has_code(Code::E082AffineScratchAlias),
        "{}",
        ds.render()
    );
    // The brute-force oracle agrees the defect is real at some envelope
    // point (two lanes, one item each per chunk).
    let bf = affine::brute_force_region(&s, "y", 2, 1);
    assert!(bf.overlap);
}

#[test]
fn overlapping_tiles_fire_e080_statically() {
    // Mutation: a second write access shifted half a tile — classic
    // overlapping-tile decomposition bug.
    let mut s = tile_split();
    s.accesses.push(StridedAccess {
        region: "y",
        kind: AccessKind::Write,
        offset: 32,
        stride_per_item: 64,
        elem_stride: 1,
        count: 32,
    });
    let ds = affine::lint_summary(&s);
    assert!(ds.has_code(Code::E080AffineLaneOverlap), "{}", ds.render());
    assert!(!ds.has_code(Code::E081AffineCoverage), "{}", ds.render());
}

#[test]
fn coverage_gap_fires_e081_not_e080() {
    // Mutation: each tile writes one element too few. The writes stay
    // disjoint — only the counting obligation fails.
    let mut s = tile_split();
    s.accesses[0].count = 63;
    let ds = affine::lint_summary(&s);
    assert!(ds.has_code(Code::E081AffineCoverage), "{}", ds.render());
    assert!(!ds.has_code(Code::E080AffineLaneOverlap), "{}", ds.render());
    let bf = affine::brute_force_region(&s, "y", 4, 1);
    assert_eq!(bf.uncovered, 8);
}

#[test]
fn declared_slack_downgrades_gap_to_w080() {
    // Same under-fill, but the region declares the 8-element tail as
    // intentional slack: advisory only, no error.
    let mut s = tile_split();
    s.accesses[0].count = 63;
    s.regions[0].elems = 8 * 63 + 8;
    s.regions[0].slack_elems = 8;
    let ds = affine::lint_summary(&s);
    assert!(
        ds.has_code(Code::W080AffineCoverageSlack),
        "{}",
        ds.render()
    );
    assert_eq!(ds.error_count(), 0, "{}", ds.render());
}

#[test]
fn scratch_carved_from_output_fires_e082() {
    // Mutation: the scratch tile is carved out of the live output instead
    // of a thread-local arena.
    let mut s = tile_split();
    s.scratch.push(ScratchDecl {
        name: "tile",
        elems: 16,
        source: ScratchSource::SubsliceOf {
            region: "y",
            offset_elems: 0,
        },
    });
    let ds = affine::lint_summary(&s);
    assert!(ds.has_code(Code::E082AffineScratchAlias), "{}", ds.render());
    assert!(!ds.has_code(Code::E080AffineLaneOverlap), "{}", ds.render());
}

#[test]
fn fabricated_bench_speedup_fires_w084() {
    // Mutation: a 40x speedup claim on a 4-core host. The roofline tops
    // out near linear, so the deviation gate must trip — through the real
    // parser, not a hand-built struct.
    let json = r#"{
  "schema": "enode-bench-kernels/v1",
  "threads_high": 4,
  "host_cpus": 4,
  "kernels": [
    { "name": "conv2d_forward_b8", "secs_low": 1.0e-3, "secs_high": 2.5e-5, "speedup": 40.0 }
  ]
}"#;
    let b = cost::parse_baseline(json).expect("crafted baseline must parse");
    let ds = cost::cross_check(&cost::RooflineModel::EDGE, &b);
    assert!(ds.has_code(Code::W084CostModelDeviation), "{}", ds.render());
    assert!(!ds.has_code(Code::W085CostFutileSplit), "{}", ds.render());
}

#[test]
fn shrunken_ingress_queue_fires_e071() {
    // Mutation: grow the ingress queue 4x; a request admitted at the deep
    // end now waits past the tightest deadline before it can dispatch.
    let mut p = ServeConfig::edge_default();
    p.queue_capacity = 64;
    let ds = servecheck::lint_config(&p);
    assert!(
        ds.has_code(Code::E071ServeQueueStarvation),
        "{}",
        ds.render()
    );
    assert!(
        !ds.has_code(Code::E070ServeWindowDeadline),
        "{}",
        ds.render()
    );
}

#[test]
fn inverted_degradation_ladder_fires_e072() {
    // Mutation: the second tier loosens less than the first — the walk
    // can never reach it.
    let mut p = ServeConfig::edge_default();
    p.tiers[1].tolerance_scale = 0.5;
    let ds = servecheck::lint_config(&p);
    assert!(ds.has_code(Code::E072ServeTierOrdering), "{}", ds.render());
    assert!(
        !ds.has_code(Code::E071ServeQueueStarvation),
        "{}",
        ds.render()
    );
}

#[test]
fn shrunken_deadline_fires_e090_per_class() {
    // Mutation: tighten the admitted deadline floor to 1ms. Even the
    // cheapest tier's backward-demand worst case (backlog + window +
    // service) exceeds it for every tolerance class, so the WCRT pass
    // must prove infeasibility three times — and nothing else: the
    // deadline is envelope metadata, so the ladder fingerprint still
    // matches and no table-provenance code may fire.
    let table = schedcheck::shipped_table().expect("committed table parses");
    let mut p = ServeConfig::edge_default();
    p.min_deadline_us = 1_000;
    let ds = schedcheck::lint_config(&p, &table);
    assert!(
        ds.has_code(Code::E090SchedDeadlineInfeasible),
        "{}",
        ds.render()
    );
    assert_eq!(
        ds.items()
            .iter()
            .filter(|d| d.code == Code::E090SchedDeadlineInfeasible)
            .count(),
        3,
        "one infeasibility proof per tolerance class:\n{}",
        ds.render()
    );
    assert!(!ds.has_code(Code::E093SchedTableVersion), "{}", ds.render());
    assert!(
        !ds.has_code(Code::E091SchedLadderNoRecovery),
        "{}",
        ds.render()
    );
    assert!(!ds.has_code(Code::E092SchedEnergyBudget), "{}", ds.render());
}

#[test]
fn inverted_ladder_energy_fires_w091() {
    // Mutation: inflate every tier-1 sweep row's energy tenfold in the
    // *parsed table* (not the policy — a ladder edit would change the
    // fingerprint and short-circuit into E093). Degrading to tier 1 now
    // costs more energy than serving at full quality: the per-request
    // monotonicity check must flag it as a warning, while the within-tier
    // batch monotonicity (E095) is preserved by the uniform scaling.
    let mut table = schedcheck::shipped_table().expect("committed table parses");
    for row in &mut table.rows {
        if row.policy == "edge_default" && row.tier == 1 {
            row.energy_uj *= 10;
        }
    }
    let ds = schedcheck::lint_config(&ServeConfig::edge_default(), &table);
    assert!(
        ds.has_code(Code::W091SchedLadderEnergyNonMonotone),
        "{}",
        ds.render()
    );
    assert!(
        !ds.has_code(Code::E095SchedTableNonMonotone),
        "{}",
        ds.render()
    );
    assert_eq!(
        ds.error_count(),
        0,
        "W091 must not fail the run:\n{}",
        ds.render()
    );
}

#[test]
fn stale_table_version_fires_e093_and_short_circuits() {
    // Mutation: a table generated by a different table-format generation.
    // Every schedulability verdict derived from it would be unsound, so
    // E093 must fire alone — no WCRT, energy or monotonicity code may
    // piggyback on stale data.
    let mut table = schedcheck::shipped_table().expect("committed table parses");
    table.version = "enode-cost-table/v2".to_string();
    let ds = schedcheck::lint_config(&ServeConfig::edge_default(), &table);
    assert!(ds.has_code(Code::E093SchedTableVersion), "{}", ds.render());
    assert_eq!(
        ds.len(),
        1,
        "a stale table must short-circuit all downstream verdicts:\n{}",
        ds.render()
    );
}

#[test]
fn infeasible_design_load_fires_w070() {
    // Mutation: a design rate no single worker pool can sustain.
    let mut p = ServeConfig::edge_default();
    p.design_rate_rps = 10_000.0;
    let ds = servecheck::lint_config(&p);
    assert!(
        ds.has_code(Code::W070ServeDesignOverload),
        "{}",
        ds.render()
    );
}

// ---- E10x concurrency-skeleton mutation seeds -------------------------
//
// Each seed doctors the *declared* skeleton of the shipped worker pool or
// serving runtime — the code itself is untouched and stays correct; the
// declaration is mutated into the bug the prover must catch — and asserts
// exactly the pinned code fires with no collateral E10x noise.

use enode_analysis::synccheck;
use enode_serve::skeleton::registered_skeletons;
use enode_tensor::syncmodel::{pool_skeleton, PathDecl, PathRole, Step};

/// Error-severity E10x codes present in a run, as stable strings.
fn e10x_errors(ds: &enode_analysis::Diagnostics) -> Vec<&'static str> {
    let mut codes: Vec<&'static str> = ds
        .items()
        .iter()
        .filter(|d| d.severity() == Severity::Error && d.code.as_str().starts_with("E10"))
        .map(|d| d.code.as_str())
        .collect();
    codes.dedup();
    codes
}

#[test]
fn flipped_lock_order_fires_exactly_e100() {
    // Mutation: a path that nests pool.submit *inside* pool.slot, the
    // reverse of broadcast's declared submit-then-slot order. Two threads
    // running the two paths deadlock; the ancestors fixpoint must find
    // the cycle, and nothing else may fire.
    let mut sk = pool_skeleton();
    sk.paths.push(PathDecl {
        id: "pool.mutated_inverted",
        role: PathRole::Normal,
        runs_on: None,
        steps: vec![
            Step::Acquire("pool.slot"),
            Step::Acquire("pool.submit"),
            Step::Release("pool.submit"),
            Step::Release("pool.slot"),
        ],
    });
    let ds = synccheck::lint_skeletons(std::slice::from_ref(&sk));
    assert_eq!(e10x_errors(&ds), ["E100"], "{}", ds.render());
}

#[test]
fn dropped_notify_fires_exactly_e101() {
    // Mutation: the worker loop no longer notifies pool.done after
    // finishing its slice. broadcast's wait on `pending == 0` would park
    // forever (the wait has no timeout fallback).
    let mut sk = pool_skeleton();
    let worker = sk
        .paths
        .iter_mut()
        .find(|p| p.id == "pool.worker_loop")
        .expect("shipped path");
    worker.steps.retain(|s| *s != Step::Notify("pool.done"));
    let ds = synccheck::lint_skeletons(std::slice::from_ref(&sk));
    assert_eq!(e10x_errors(&ds), ["E101"], "{}", ds.render());
}

#[test]
fn skipped_join_fires_exactly_e102() {
    // Mutation: pool shutdown wakes the workers but never joins them —
    // detached threads outlive the pool and race its teardown.
    let mut sk = pool_skeleton();
    let drop_path = sk
        .paths
        .iter_mut()
        .find(|p| p.id == "pool.drop")
        .expect("shipped path");
    drop_path.steps.retain(|s| *s != Step::Join("pool.worker"));
    let ds = synccheck::lint_skeletons(std::slice::from_ref(&sk));
    assert_eq!(e10x_errors(&ds), ["E102"], "{}", ds.render());
}

#[test]
fn fabricated_trace_edge_fires_e104() {
    // Mutation on the *observation* side: a synthetic trace claims the
    // runtime acquired server.state while holding ticket.slot — an edge
    // outside the declared order's transitive closure.
    let regs = registered_skeletons();
    let mut report = enode_serve::synctrace::TraceReport::default();
    report.locks.insert("ticket.slot".into());
    report.locks.insert("server.state".into());
    report
        .edges
        .insert(("ticket.slot".into(), "server.state".into()));
    let ds = synccheck::lint_trace(&regs, &report);
    assert_eq!(e10x_errors(&ds), ["E104"], "{}", ds.render());
}

#[test]
fn wait_starving_all_notifiers_fires_exactly_e106() {
    // Mutation: the worker loop (sole notifier of pool.done) now also
    // acquires pool.submit — which broadcast holds across its wait on
    // pool.done. The waiter starves its only waker.
    let mut sk = pool_skeleton();
    let worker = sk
        .paths
        .iter_mut()
        .find(|p| p.id == "pool.worker_loop")
        .expect("shipped path");
    worker.steps = vec![
        Step::Acquire("pool.submit"),
        Step::Acquire("pool.slot"),
        Step::Wait("pool.work"),
        Step::Write("pool.done"),
        Step::Notify("pool.done"),
        Step::Release("pool.slot"),
        Step::Release("pool.submit"),
    ];
    let ds = synccheck::lint_skeletons(std::slice::from_ref(&sk));
    assert!(
        ds.has_code(Code::E106SyncWaitHoldsNotifierLock),
        "{}",
        ds.render()
    );
    // The added submit-inside-slot-free nesting keeps one global order,
    // so the lock-order proof itself must stay clean.
    assert!(
        !ds.has_code(Code::E100SyncLockOrderCycle),
        "{}",
        ds.render()
    );
}

// ---- E11x fleet registry & residency mutation seeds -------------------
//
// Each seed doctors the shipped fleet config or registry snapshot — a
// deployment someone *could* write — and asserts exactly the pinned
// fleet code fires through the public `lint_fleet` entry point. `ci.sh`
// runs these four by name as the E11x discrimination gate.

use enode_analysis::fleetcheck;
use enode_hw::config::LayerDims;
use enode_serve::registry::Registry;
use enode_serve::FleetConfig;

/// Error-severity E11x codes present in a run, as stable strings.
fn e11x_errors(ds: &enode_analysis::Diagnostics) -> Vec<&'static str> {
    let mut codes: Vec<&'static str> = ds
        .items()
        .iter()
        .filter(|d| d.severity() == Severity::Error && d.code.as_str().starts_with("E11"))
        .map(|d| d.code.as_str())
        .collect();
    codes.dedup();
    codes
}

#[test]
fn oversized_published_model_fires_exactly_e110() {
    // Mutation: republish the edge model with 8 convs of 512 channels —
    // ~9.4MB per core against the 2.25MB weight-SRAM envelope. Both edge
    // instances fail to warm; nothing else may fire.
    let mut cfg = FleetConfig::shipped();
    let reg = Registry::from_snapshot(cfg.registry.clone());
    reg.publish_with_profile(
        "edge_default",
        ServeConfig::edge_default(),
        LayerDims::new(64, 64, 512),
        8,
    );
    cfg.registry = (*reg.snapshot()).clone();
    let table = schedcheck::shipped_table().expect("committed table parses");
    let ds = fleetcheck::lint_fleet(&cfg, &table);
    assert_eq!(e11x_errors(&ds), ["E110"], "{}", ds.render());
    assert_eq!(
        ds.items()
            .iter()
            .filter(|d| d.code == Code::E110FleetResidencyOverflow)
            .count(),
        2,
        "one overflow proof per edge instance:\n{}",
        ds.render()
    );
}

#[test]
fn single_replica_fleet_fires_exactly_e111_on_loss() {
    // Mutation: shrink the fleet to one instance per model. Losing
    // either leaves its tenants' load with nowhere to rebalance.
    let mut cfg = FleetConfig::shipped();
    cfg.instances = 2;
    cfg.assignment = vec!["edge_default".into(), "streaming_keyword".into()];
    let table = schedcheck::shipped_table().expect("committed table parses");
    let ds = fleetcheck::lint_fleet(&cfg, &table);
    assert_eq!(e11x_errors(&ds), ["E111"], "{}", ds.render());
    // Every loss verdict names the unservable model; the halved fleet
    // also (correctly) oversubscribes the shipped quotas, so W111 rides
    // along as a warning but no other *error* may.
    assert!(
        ds.items()
            .iter()
            .filter(|d| d.code == Code::E111FleetRebalanceInfeasible)
            .all(|d| d.message.contains("nowhere to rebalance")),
        "{}",
        ds.render()
    );
}

#[test]
fn sub_window_sla_fires_exactly_e112() {
    // Mutation: a 100µs SLA on the edge model, whose batch window alone
    // is 2000µs — no degradation tier can cover it.
    let mut cfg = FleetConfig::shipped();
    for b in &mut cfg.registry.tenants {
        if b.tenant == "vision_a" {
            b.sla_deadline_us = 100;
        }
    }
    let table = schedcheck::shipped_table().expect("committed table parses");
    let ds = fleetcheck::lint_fleet(&cfg, &table);
    assert_eq!(e11x_errors(&ds), ["E112"], "{}", ds.render());
}

#[test]
fn tampered_registry_fingerprint_fires_exactly_e113() {
    // Mutation: hand-edit a published fingerprint. Every downstream
    // verdict would read a policy that is not the one published, so
    // provenance must fire alone and short-circuit — the also-planted
    // SLA skew stays unreported until the registry is trustworthy.
    let mut cfg = FleetConfig::shipped();
    cfg.registry.models[0].fingerprint = "deadbeefdeadbeef".to_string();
    cfg.registry.tenants[0].sla_deadline_us = 100;
    let table = schedcheck::shipped_table().expect("committed table parses");
    let ds = fleetcheck::lint_fleet(&cfg, &table);
    assert_eq!(e11x_errors(&ds), ["E113"], "{}", ds.render());
}
