//! Cycle-level model of the eNODE accelerator and its SIMD ASIC baseline
//! (paper §III–§VI, evaluated in §VIII).
//!
//! The paper evaluates a 28 nm RTL prototype; this crate reproduces the
//! *system* as a simulator:
//!
//! * [`config`] — hardware configurations (Table I's Configuration A / B),
//!   workload descriptors, and adapters from algorithm-level traces.
//! * [`pe`] — the unified NN core's PE array (§VI): 64 PEs in modulo
//!   groups, 8-lane adder tree, forward and backward (flipped-kernel)
//!   convolution on the *same* hardware — functionally simulated and
//!   verified against the reference convolution.
//! * [`packet`] — packetized depth-first processing (§V-B): stream-tagged
//!   packets, per-stream state buffers, the later-stream-first priority
//!   selector, and the row-level pipeline model that quantifies packetized
//!   vs blocking execution.
//! * [`dram`] — a "Ramulator-lite" banked DRAM timing/energy model (the
//!   paper uses Ramulator \[17\]).
//! * [`depthfirst`] — buffer sizing and lifetime analysis for depth-first
//!   integration (Fig 14) and depth-first training (Fig 15): on-chip rows
//!   vs full-map baseline, and DRAM spill as a function of buffer capacity.
//! * [`area`] — the 28 nm area model calibrated to Table I.
//! * [`energy`] — MAC/SRAM/DRAM energy model calibrated to Fig 16.
//! * [`perf`] — end-to-end performance/energy simulation of eNODE and the
//!   weight-stationary SIMD baseline on NODE workloads (Figs 16–18).
//! * [`gpu`] — an A100-class GPU cost model for the §VIII-D comparison.
//! * [`fingerprint`] — the shared FNV-1a content hash stamped on every
//!   committed artifact (cost tables, registry model versions) so the
//!   staleness lints (`E093`, `E113`) can prove provenance.

pub mod area;
pub mod config;
pub mod core;
pub mod depthfirst;
pub mod dram;
pub mod energy;
pub mod fingerprint;
pub mod gpu;
pub mod mapping;
pub mod packet;
pub mod pe;
pub mod perf;
pub mod ring;
pub mod system;
pub mod table;

pub use config::{HwConfig, LayerDims, WorkloadRun};
pub use perf::{simulate_baseline, simulate_enode, SimReport};
