//! The unified NN core's PE array (§VI, Fig 9).
//!
//! The core holds 64 PEs supporting 8 input channels × 8 output channels.
//! `PE_{CM}` caches the 3×3 kernel for input channel `C`, output channel
//! `M`. PEs are organized in 8 *groups*: group `g` contains
//! `PE_{i,(i+g)%8}` — a diagonal slice — so that in a forward pass each
//! group's 8 PEs take the 8 channels of a broadcast input packet, and the
//! 8-lane adder tree sums one output channel per lane. In a backward pass
//! the channel roles swap and the kernels flip, but the PEs, cached
//! weights, and adder tree are *reused unchanged*.
//!
//! This module simulates the array functionally (verified against the
//! reference convolution) and counts cycles for the performance model.

use crate::config::HwConfig;
use enode_tensor::conv::Conv2d;
use enode_tensor::Tensor;

/// A functional model of one unified NN core's PE array for a single
/// convolution layer with `C = M = channels` (multiples of 8 are
/// time-multiplexed onto the 8×8 physical array).
#[derive(Clone, Debug)]
pub struct PeArray {
    channels: usize,
    kernel: usize,
    /// Cached weights `[M, C, K, K]`, as distributed across the PEs.
    weights: Tensor,
}

/// Which direction the unified core runs (§VI-B/C).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Forward convolution (inference / local forward step).
    Forward,
    /// Backward convolution with flipped kernels and swapped channel roles
    /// (adjoint computation).
    Backward,
}

impl PeArray {
    /// Loads a convolution's weights into the PE array.
    ///
    /// # Panics
    ///
    /// Panics if input and output channel counts differ (the unified core
    /// maps square convolutions; rectangular ones are split at compile
    /// time).
    pub fn load(conv: &Conv2d) -> Self {
        assert_eq!(
            conv.in_channels(),
            conv.out_channels(),
            "unified core maps square convolutions"
        );
        PeArray {
            channels: conv.in_channels(),
            kernel: conv.kernel(),
            weights: conv.weight().clone(),
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The PE group index that owns `PE_{c,m}`: group `g = (m − c) mod 8`
    /// over the physical 8×8 array.
    pub fn group_of(c: usize, m: usize) -> usize {
        (m + 8 - (c % 8)) % 8
    }

    /// Runs the array over a feature map in the given direction,
    /// reproducing exactly what the grouped PEs + adder tree compute.
    ///
    /// Forward: `y[m] = Σ_c x[c] * w[m,c]` (psums from the 8 groups summed
    /// by the adder-tree lane of output channel `m`).
    /// Backward: `dx[c] = Σ_m dy[m] * flip(w[m,c])` — same pipeline, roles
    /// swapped (Fig 9c).
    pub fn run(&self, x: &Tensor, direction: Direction) -> Tensor {
        let (n, c_in, h, w) = x.shape_obj().nchw();
        assert_eq!(c_in, self.channels, "channel mismatch");
        let k = self.kernel;
        let pad = (k / 2) as isize;
        let mut y = Tensor::zeros(&[n, self.channels, h, w]);
        // Iterate input packets (1×1×8 pixels, §V-B) and distribute to the
        // 8 groups; each PE contributes 9 psums per input element.
        for ni in 0..n {
            for ih in 0..h {
                for iw in 0..w {
                    for cb in (0..self.channels).step_by(8) {
                        for mb in (0..self.channels).step_by(8) {
                            // One pass of the physical 64-PE array.
                            for dc in 0..8.min(self.channels - cb) {
                                let c = cb + dc;
                                let xv = x.at4(ni, c, ih, iw);
                                if xv == 0.0 {
                                    continue;
                                }
                                for dm in 0..8.min(self.channels - mb) {
                                    let m = mb + dm;
                                    for kh in 0..k {
                                        for kw in 0..k {
                                            // Forward: input pixel (ih,iw)
                                            // contributes to output
                                            // (ih−kh+pad, iw−kw+pad) via
                                            // w[m][c][kh][kw].
                                            // Backward: flipped kernel and
                                            // swapped roles — w[c][m] with
                                            // kernel index mirrored.
                                            let (wv, oh, ow) = match direction {
                                                Direction::Forward => (
                                                    self.weights.at4(m, c, kh, kw),
                                                    ih as isize - kh as isize + pad,
                                                    iw as isize - kw as isize + pad,
                                                ),
                                                Direction::Backward => (
                                                    self.weights.at4(c, m, k - 1 - kh, k - 1 - kw),
                                                    ih as isize - kh as isize + pad,
                                                    iw as isize - kw as isize + pad,
                                                ),
                                            };
                                            if oh >= 0
                                                && ow >= 0
                                                && (oh as usize) < h
                                                && (ow as usize) < w
                                            {
                                                *y.at4_mut(ni, m, oh as usize, ow as usize) +=
                                                    xv * wv;
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        y
    }

    /// Cycles to convolve one `H × W` map: each physical array pass covers
    /// 8 input × 8 output channels and takes `K²` cycles per input packet.
    pub fn cycles(&self, h: usize, w: usize) -> u64 {
        let blocks = (self.channels as u64 / 8).max(1);
        (h * w) as u64 * blocks * blocks * (self.kernel * self.kernel) as u64
    }
}

/// Cycles for one embedded-network evaluation on the ring: the `n_conv`
/// layers run concurrently on the `cores` (one layer per core in the
/// prototype), so the steady-state throughput is one layer-time, not the
/// sum (§V-A).
pub fn f_eval_cycles(cfg: &HwConfig) -> u64 {
    let per_layer = {
        let blocks = (cfg.layer.c as u64 / cfg.parallel_channels as u64).max(1);
        (cfg.layer.h * cfg.layer.w) as u64 * blocks * blocks * (cfg.kernel * cfg.kernel) as u64
    };
    // Layers beyond the core count time-multiplex.
    let rounds = cfg.n_conv.div_ceil(cfg.cores) as u64;
    per_layer * rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use enode_tensor::init;

    fn test_conv(channels: usize, seed: u64) -> Conv2d {
        let c = Conv2d::new_seeded(channels, channels, 3, seed);
        // Bias-free: the PE array computes the MAC part; bias is added by
        // the post-processing unit.
        Conv2d::from_parts(c.weight().clone(), Tensor::zeros(&[channels]))
    }

    #[test]
    fn forward_matches_reference_conv() {
        let conv = test_conv(8, 1);
        let array = PeArray::load(&conv);
        let x = init::uniform(&[1, 8, 6, 6], -1.0, 1.0, 2);
        let ours = array.run(&x, Direction::Forward);
        let reference = conv.forward(&x);
        let diff = (&ours - &reference).norm_inf();
        assert!(diff < 1e-4, "PE array deviates from reference conv: {diff}");
    }

    #[test]
    fn forward_matches_with_time_multiplexing() {
        // 16 channels on the 8×8 array: 4 block passes.
        let conv = test_conv(16, 3);
        let array = PeArray::load(&conv);
        let x = init::uniform(&[1, 16, 4, 4], -1.0, 1.0, 4);
        let diff = (&array.run(&x, Direction::Forward) - &conv.forward(&x)).norm_inf();
        assert!(diff < 1e-4);
    }

    #[test]
    fn backward_matches_reference_adjoint() {
        // §VI-C: the backward direction with flipped kernels must equal the
        // reference convolution's input-gradient.
        let conv = test_conv(8, 5);
        let array = PeArray::load(&conv);
        let dy = init::uniform(&[1, 8, 5, 5], -1.0, 1.0, 6);
        let ours = array.run(&dy, Direction::Backward);
        let reference = conv.backward_input(&dy);
        let diff = (&ours - &reference).norm_inf();
        assert!(diff < 1e-4, "backward deviates: {diff}");
    }

    #[test]
    fn same_weights_serve_both_directions() {
        // The point of the unified core: one weight load, two dataflows.
        let conv = test_conv(8, 7);
        let array = PeArray::load(&conv);
        let x = init::uniform(&[1, 8, 4, 4], -1.0, 1.0, 8);
        let fwd = array.run(&x, Direction::Forward);
        let bwd = array.run(&x, Direction::Backward);
        // Adjointness through the array: <A x, x'> == <x, A^T x'>.
        let x2 = init::uniform(&[1, 8, 4, 4], -1.0, 1.0, 9);
        let fwd2 = array.run(&x2, Direction::Forward);
        let lhs = fwd.dot(&x2);
        let rhs = x.dot(&array.run(&x2, Direction::Backward));
        assert!((lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0));
        let _ = (bwd, fwd2);
    }

    #[test]
    fn groups_partition_the_array() {
        // Every (c, m) pair belongs to exactly one of 8 groups; each group
        // has one PE per input channel (Fig 9a).
        for g in 0..8 {
            let members: Vec<(usize, usize)> = (0..8)
                .flat_map(|c| (0..8).map(move |m| (c, m)))
                .filter(|&(c, m)| PeArray::group_of(c, m) == g)
                .collect();
            assert_eq!(members.len(), 8);
            for (c, m) in members {
                assert_eq!(m, (c + g) % 8);
            }
        }
    }

    #[test]
    fn cycle_model_scales() {
        let conv8 = PeArray::load(&test_conv(8, 1));
        let conv16 = PeArray::load(&test_conv(16, 1));
        // 2× channels → 4× block passes.
        assert_eq!(conv16.cycles(8, 8), 4 * conv8.cycles(8, 8));
        assert_eq!(conv8.cycles(8, 8), 64 * 9);
    }

    #[test]
    fn f_eval_cycles_config_a() {
        let cfg = HwConfig::config_a();
        // 4 layers on 4 cores: one layer-time of 64×64 × 8×8 blocks × 9.
        assert_eq!(f_eval_cycles(&cfg), 64 * 64 * 64 * 9);
    }
}
