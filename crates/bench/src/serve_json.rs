//! The machine-readable serving benchmark baseline (`BENCH_serve.json`).
//!
//! Sweeps offered load × batch window over every shipped serving policy
//! using the deterministic discrete-event simulation in
//! [`enode_serve::loadgen`]: batches really run through the solver (true
//! outputs and NFE counts), but service time is charged by a fixed
//! [`CostModel`] with an explicit lane count, so a rerun with the same
//! seed produces the same bytes on any host — only `host_cpus` and
//! `enode_threads_default` are host metadata and may differ.
//!
//! # JSON format (`schema: "enode-bench-serve/v1"`)
//!
//! ```json
//! {
//!   "schema": "enode-bench-serve/v1",
//!   "lanes": 4,                    // CostModel lanes (fixed, not host-derived)
//!   "host_cpus": 1,                // available_parallelism() on the host
//!   "enode_threads_default": 1,    // pool width this host would default to
//!   "quick": false,                // true when run with the reduced grid (CI smoke)
//!   "seed": 24301,                 // master seed for arrivals and inputs
//!   "cost_model": { "per_nfe_us": 20.0, "dispatch_overhead_us": 150, "lanes": 4 },
//!   "rows": [
//!     {
//!       "policy": "edge_default",  // ServeConfig name
//!       "offered_rps": 200.0,      // open-loop offered load
//!       "batch_window_us": 2000,   // batch window this cell ran with
//!       "deadline_us": 50000,      // relative deadline on every request
//!       "offered": 400,            // requests offered (admitted + rejected)
//!       "makespan_us": 1234,       // virtual time of the last event
//!       "tier_counts": [380,15,5], // completed requests per degradation tier
//!       "metrics": {               // drained MetricsSnapshot: the identity
//!         "submitted": 400,        //   submitted == completed+shed+failed+cancelled
//!         "completed": 400,        //   holds exactly
//!         "degraded": 20, "shed": 0, "rejected_full": 0, "failed": 0,
//!         "cancelled": 0, "batches": 58,
//!         "latency_p50_us": 4096,  // bucket upper bounds (powers of two)
//!         "latency_p95_us": 8192, "latency_p99_us": 8192,
//!         "latency_mean_us": 3512.625, "mean_batch": 6.897
//!       }
//!     }
//!   ]
//! }
//! ```
//!
//! Latency percentiles are *simulated virtual-clock* latencies under the
//! cost model, not wall time: they characterise the queueing and batching
//! policy, not the emitting host's CPU.
//!
//! # Simulator-backed Pareto section
//!
//! Two further sections tie the sweep to the cycle-level hardware
//! simulator through `COST_TABLE.json` (the paper's Figs 14–17 story):
//!
//! * `"pareto"` — the static latency×energy frontier: one point per
//!   `(policy, tier)` at the policy's `max_batch`, straight from the
//!   simulated table (µs and µJ *per request*). Deeper tiers must be
//!   strictly cheaper on both axes.
//! * `"hw_sweep"` — the measured ladder walk: the same discrete-event
//!   loadgen, but with service time charged by
//!   [`CostModel::from_table`] (simulator-calibrated, not the guessed
//!   constant above), run per policy at a descending deadline grid.
//!   As deadlines tighten, tier selection walks down the ladder and the
//!   tier-count-weighted `energy_uj_per_req` falls with it.
//!
//! `"cost_table_version"` records which table generation produced both.

use crate::report::{host_cpus, json_escape};
use enode_node::inference::NodeSolveOptions;
use enode_node::model::NodeModel;
use enode_serve::loadgen::{simulate, sweep};
use enode_serve::{shipped_cost_table, CostModel, LoadSpec, RunResult, ServeConfig};
use enode_tensor::parallel;

/// Lane count the cost model charges batches against. Fixed (rather than
/// host-derived) so the committed JSON is byte-identical across hosts.
pub const LANES: usize = 4;

/// Master seed for arrival jitter and request inputs.
pub const SEED: u64 = 24301;

/// The fixed service-time model every sweep cell runs under. 20 µs per
/// function evaluation models an edge-class core (a dim-2 solve lands
/// around 2–4 ms), which puts the top of the rate grid past saturation so
/// the sweep actually exercises shedding, degradation and backpressure.
pub fn cost_model() -> CostModel {
    CostModel {
        per_nfe_us: 20.0,
        dispatch_overhead_us: 150,
        lanes: LANES,
    }
}

/// The model every request solves: the van-der-Pol-sized dynamic system
/// (2 state dims, hidden width 16), cheap enough to sweep thousands of
/// requests yet exercising the adaptive stepsize search.
pub fn bench_model() -> NodeModel {
    NodeModel::dynamic_system(2, 16, 2, 42)
}

/// One (policy, deadline) slice of the sweep grid.
#[derive(Clone, Debug)]
pub struct PolicySweep {
    /// The swept policy (its `batch_window_us` is overridden per row).
    pub policy: ServeConfig,
    /// Relative deadline stamped on every request. The full sweep runs
    /// each policy at two deadlines: its design floor (`min_deadline_us`,
    /// where lints E070/E071 prove nothing can be shed) and a tight 40%
    /// of that floor — clients violating the envelope, which is what
    /// forces the degradation ladder and load shedding to actually fire.
    pub deadline_us: u64,
    /// One result per (batch window, offered load) cell.
    pub rows: Vec<RunResult>,
}

/// Runs the full sweep over every shipped policy. `quick` shrinks the
/// grid and the request count (the CI smoke configuration).
pub fn sweep_shipped(quick: bool) -> Vec<PolicySweep> {
    let model = bench_model();
    let opts = NodeSolveOptions::new(1e-4);
    let cost = cost_model();
    let (requests, rates, windows): (usize, Vec<f64>, Vec<u64>) = if quick {
        (40, vec![200.0], vec![0, 2_000])
    } else {
        (
            400,
            vec![50.0, 200.0, 800.0, 2_400.0, 8_000.0],
            vec![0, 2_000, 8_000],
        )
    };
    let mut out = Vec::new();
    for policy in ServeConfig::shipped() {
        let floor = policy.min_deadline_us;
        let deadlines = if quick {
            vec![floor]
        } else {
            vec![floor, floor * 2 / 5]
        };
        for deadline_us in deadlines {
            let mut spec = LoadSpec::open_loop(requests, rates[0], deadline_us);
            spec.seed = SEED;
            let rows = sweep(&model, &opts, &policy, &rates, &windows, &spec, &cost);
            out.push(PolicySweep {
                policy: policy.clone(),
                deadline_us,
                rows,
            });
        }
    }
    out
}

/// One point of the simulator-backed latency×energy Pareto frontier:
/// a `(policy, tier)` dispatch at the policy's `max_batch`, normalised
/// per request.
#[derive(Clone, Debug)]
pub struct ParetoPoint {
    /// Policy name.
    pub policy: String,
    /// Degradation-ladder index (0 = full quality).
    pub tier: usize,
    /// Batch size of the underlying simulated dispatch.
    pub batch: usize,
    /// Accepted evaluation points per sample (accuracy proxy).
    pub points: usize,
    /// Simulated latency per request, µs.
    pub latency_us_per_req: f64,
    /// Simulated energy per request, µJ.
    pub energy_uj_per_req: f64,
}

/// The static frontier from the committed cost table: per shipped policy,
/// one point per tier at the policy's `max_batch`. The eNODE efficiency
/// claim (paper Figs 14–17) is that walking down the ladder buys *both*
/// latency and energy — `analysis::schedcheck` lints it (E095/W091), and
/// a test below asserts it on the emitted points.
pub fn pareto_frontier() -> Vec<ParetoPoint> {
    let table = shipped_cost_table();
    let mut out = Vec::new();
    for policy in ServeConfig::shipped() {
        for tier in 0..policy.tiers.len() {
            let row = table
                .lookup(policy.name, tier, policy.max_batch)
                .expect("shipped sweep grid covers every max_batch");
            out.push(ParetoPoint {
                policy: policy.name.to_string(),
                tier,
                batch: row.batch,
                points: row.points,
                latency_us_per_req: row.latency_us as f64 / row.batch as f64,
                energy_uj_per_req: row.energy_uj as f64 / row.batch as f64,
            });
        }
    }
    out
}

/// One measured row of the hardware-calibrated ladder walk: a loadgen
/// run under [`CostModel::from_table`] at one deadline.
#[derive(Clone, Debug)]
pub struct HwSweepRow {
    /// Policy name.
    pub policy: String,
    /// Relative deadline stamped on every request (µs).
    pub deadline_us: u64,
    /// The discrete-event run (tier counts, latency percentiles, …).
    pub result: RunResult,
    /// Tier-count-weighted simulated energy per completed request, µJ
    /// (each completion charged its serving tier's frontier cost).
    pub energy_uj_per_req: f64,
}

/// Runs the ladder walk: per shipped policy, the loadgen at the policy's
/// own window and design rate under the simulator-calibrated cost model,
/// across a descending deadline grid (the design floor down to a fifth
/// of it — clients violating the envelope, which drives tier selection
/// down the ladder).
pub fn hw_sweep(quick: bool) -> Vec<HwSweepRow> {
    let model = bench_model();
    let opts = NodeSolveOptions::new(1e-4);
    let table = shipped_cost_table();
    let frontier = pareto_frontier();
    let requests = if quick { 40 } else { 400 };
    let mut out = Vec::new();
    for policy in ServeConfig::shipped() {
        let cost = CostModel::from_table(policy.name, &table, LANES)
            .expect("shipped table has tier-0 calibration rows");
        let floor = policy.min_deadline_us;
        let deadlines = if quick {
            vec![floor, floor / 5]
        } else {
            vec![floor, floor * 3 / 5, floor * 2 / 5, floor / 5]
        };
        for deadline_us in deadlines {
            let mut spec = LoadSpec::open_loop(requests, policy.design_rate_rps, deadline_us);
            spec.seed = SEED;
            let result = simulate(&model, &opts, &policy, &spec, &cost);
            let energy_uj: f64 = result
                .tier_counts
                .iter()
                .enumerate()
                .map(|(tier, &n)| {
                    let per_req = frontier
                        .iter()
                        .find(|p| p.policy == policy.name && p.tier == tier)
                        .map_or(0.0, |p| p.energy_uj_per_req);
                    n as f64 * per_req
                })
                .sum();
            let completed = result.metrics.completed;
            out.push(HwSweepRow {
                policy: policy.name.to_string(),
                deadline_us,
                result,
                energy_uj_per_req: if completed > 0 {
                    energy_uj / completed as f64
                } else {
                    0.0
                },
            });
        }
    }
    out
}

/// Renders the sweeps as the committed `BENCH_serve.json` document.
pub fn render_json(sweeps: &[PolicySweep], hw: &[HwSweepRow], quick: bool) -> String {
    let cost = cost_model();
    let mut s = String::from("{\n");
    s.push_str("  \"schema\": \"enode-bench-serve/v1\",\n");
    s.push_str(&format!("  \"lanes\": {LANES},\n"));
    s.push_str(&format!("  \"host_cpus\": {},\n", host_cpus()));
    s.push_str(&format!(
        "  \"enode_threads_default\": {},\n",
        parallel::default_threads()
    ));
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"seed\": {SEED},\n"));
    s.push_str(&format!(
        "  \"cost_model\": {{ \"per_nfe_us\": {:.1}, \"dispatch_overhead_us\": {}, \"lanes\": {} }},\n",
        cost.per_nfe_us, cost.dispatch_overhead_us, cost.lanes
    ));
    s.push_str("  \"rows\": [\n");
    let total: usize = sweeps.iter().map(|p| p.rows.len()).sum();
    let mut emitted = 0usize;
    for sw in sweeps {
        for r in &sw.rows {
            emitted += 1;
            let tiers = r
                .tier_counts
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(",");
            s.push_str(&format!(
                "    {{ \"policy\": \"{}\", \"offered_rps\": {:.1}, \"batch_window_us\": {}, \
                 \"deadline_us\": {}, \"offered\": {}, \"makespan_us\": {}, \
                 \"tier_counts\": [{}], \"metrics\": {} }}{}\n",
                json_escape(sw.policy.name),
                r.offered_rps,
                r.batch_window_us,
                sw.deadline_us,
                r.offered,
                r.makespan_us,
                tiers,
                r.metrics.to_json(),
                if emitted < total { "," } else { "" }
            ));
        }
    }
    s.push_str("  ],\n");
    let table = shipped_cost_table();
    s.push_str(&format!(
        "  \"cost_table_version\": \"{}\",\n",
        json_escape(&table.version)
    ));
    s.push_str("  \"pareto\": [\n");
    let frontier = pareto_frontier();
    for (i, p) in frontier.iter().enumerate() {
        s.push_str(&format!(
            "    {{ \"policy\": \"{}\", \"tier\": {}, \"batch\": {}, \"points\": {}, \
             \"latency_us_per_req\": {:.3}, \"energy_uj_per_req\": {:.3} }}{}\n",
            json_escape(&p.policy),
            p.tier,
            p.batch,
            p.points,
            p.latency_us_per_req,
            p.energy_uj_per_req,
            if i + 1 < frontier.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"hw_sweep\": [\n");
    for (i, row) in hw.iter().enumerate() {
        let r = &row.result;
        let tiers = r
            .tier_counts
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        s.push_str(&format!(
            "    {{ \"policy\": \"{}\", \"deadline_us\": {}, \"offered_rps\": {:.1}, \
             \"batch_window_us\": {}, \"offered\": {}, \"makespan_us\": {}, \
             \"tier_counts\": [{}], \"energy_uj_per_req\": {:.3}, \"metrics\": {} }}{}\n",
            json_escape(&row.policy),
            row.deadline_us,
            r.offered_rps,
            r.batch_window_us,
            r.offered,
            r.makespan_us,
            tiers,
            row.energy_uj_per_req,
            r.metrics.to_json(),
            if i + 1 < hw.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Validates an emitted document: well-formed JSON and every field the
/// acceptance tracking reads is present. The `serve_bench` binary runs
/// this on its own output (and `--smoke` gates CI on it).
pub fn validate(json: &str) -> Result<(), String> {
    validate_json(json)?;
    for field in [
        "\"schema\": \"enode-bench-serve/v1\"",
        "\"latency_p50_us\"",
        "\"latency_p95_us\"",
        "\"latency_p99_us\"",
        "\"mean_batch\"",
        "\"shed\"",
        "\"degraded\"",
        "\"completed\"",
        "\"tier_counts\"",
        "\"host_cpus\"",
        "\"cost_table_version\"",
        "\"pareto\"",
        "\"hw_sweep\"",
        "\"energy_uj_per_req\"",
    ] {
        if !json.contains(field) {
            return Err(format!("missing required field {field}"));
        }
    }
    Ok(())
}

/// A minimal JSON well-formedness checker (no external deps): accepts
/// exactly one value — object, array, string, number, `true`, `false`,
/// `null` — with nothing but whitespace after it.
pub fn validate_json(s: &str) -> Result<(), String> {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing bytes at offset {}", p.i));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at offset {}", self.i)
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal(b"true"),
            Some(b'f') => self.literal(b"false"),
            Some(b'n') => self.literal(b"null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.eat(b'{')?;
        self.skip_ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.eat(b'[')?;
        self.skip_ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        while let Some(&c) = self.b.get(self.i) {
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(());
                }
                b'\\' => self.i += 2, // escape: skip the escaped byte too
                _ => self.i += 1,
            }
        }
        Err(self.err("unterminated string"))
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.i;
        while matches!(
            self.b.get(self.i),
            Some(c) if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap_or("");
        text.parse::<f64>()
            .map(|_| ())
            .map_err(|_| self.err("malformed number"))
    }

    fn literal(&mut self, lit: &[u8]) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err("malformed literal"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validator_accepts_and_rejects() {
        assert!(validate_json("{\"a\": [1, 2.5e-3, \"x\\\"y\"], \"b\": null}").is_ok());
        assert!(validate_json("  true  ").is_ok());
        assert!(validate_json("{\"a\": }").is_err());
        assert!(validate_json("{\"a\": 1} extra").is_err());
        assert!(validate_json("[1, 2,]").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("1.2.3").is_err());
    }

    #[test]
    fn quick_sweep_emits_a_valid_document() {
        let sweeps = sweep_shipped(true);
        // 2 policies × 1 rate × 2 windows.
        assert_eq!(sweeps.len(), 2);
        assert!(sweeps.iter().all(|p| p.rows.len() == 2));
        assert!(sweeps
            .iter()
            .flat_map(|p| &p.rows)
            .all(|r| r.metrics.reconciles()));
        let hw = hw_sweep(true);
        let json = render_json(&sweeps, &hw, true);
        validate(&json).expect("emitted document must validate");
        assert!(json.contains("\"policy\": \"edge_default\""));
        assert!(json.contains("\"policy\": \"streaming_keyword\""));
        assert!(json.contains("\"quick\": true"));
        assert!(json.contains("\"cost_table_version\": \"enode-cost-table/v1\""));
    }

    #[test]
    fn quick_sweep_is_deterministic() {
        let a = sweep_shipped(true);
        let b = sweep_shipped(true);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.rows, y.rows,
                "{}: rerun must be bit-identical",
                x.policy.name
            );
        }
    }

    #[test]
    fn validate_flags_missing_fields() {
        let err = validate("{\"schema\": \"enode-bench-serve/v1\"}").unwrap_err();
        assert!(err.contains("missing required field"));
    }

    #[test]
    fn pareto_frontier_is_monotone_down_the_ladder() {
        // The paper's Figs 14–17 efficiency claim: every step down the
        // degradation ladder is strictly cheaper on BOTH axes (latency
        // and energy per request) while accepting fewer solution points.
        let frontier = pareto_frontier();
        for policy in enode_serve::ServeConfig::shipped() {
            let points: Vec<&ParetoPoint> = frontier
                .iter()
                .filter(|p| p.policy == policy.name)
                .collect();
            assert_eq!(points.len(), policy.tiers.len(), "{}", policy.name);
            for pair in points.windows(2) {
                assert!(
                    pair[1].latency_us_per_req < pair[0].latency_us_per_req,
                    "{} tier {} must be faster than tier {}",
                    policy.name,
                    pair[1].tier,
                    pair[0].tier
                );
                assert!(
                    pair[1].energy_uj_per_req < pair[0].energy_uj_per_req,
                    "{} tier {} must be cheaper than tier {}",
                    policy.name,
                    pair[1].tier,
                    pair[0].tier
                );
                assert!(
                    pair[1].points < pair[0].points,
                    "{} tier {} must accept fewer points than tier {}",
                    policy.name,
                    pair[1].tier,
                    pair[0].tier
                );
            }
        }
    }

    #[test]
    fn hw_sweep_tightening_deadlines_walks_down_the_ladder() {
        // Under the simulator-calibrated cost model, shrinking the client
        // deadline shrinks dispatch-time slack, which pushes tier
        // selection down the ladder — and the tier-weighted energy per
        // request falls with it.
        let hw = hw_sweep(true);
        for policy in enode_serve::ServeConfig::shipped() {
            let rows: Vec<&HwSweepRow> = hw.iter().filter(|r| r.policy == policy.name).collect();
            assert_eq!(
                rows.len(),
                2,
                "{}: quick grid is [floor, floor/5]",
                policy.name
            );
            let (floor, tight) = (rows[0], rows[1]);
            assert!(floor.deadline_us > tight.deadline_us);
            assert_eq!(
                floor.result.tier_counts[0], floor.result.metrics.completed,
                "{}: at the design floor every completion is full quality",
                policy.name
            );
            assert!(
                tight.result.metrics.degraded > 0,
                "{}: at a fifth of the floor the ladder must engage",
                policy.name
            );
            assert!(
                tight.energy_uj_per_req < floor.energy_uj_per_req,
                "{}: degradation must cut energy per request ({} vs {})",
                policy.name,
                tight.energy_uj_per_req,
                floor.energy_uj_per_req
            );
        }
    }

    #[test]
    fn static_feasibility_matches_loadgen() {
        // The schedcheck verdict is an over-approximation of the loadgen:
        // if the backward demand pass proves every class feasible under
        // COST_TABLE.json (no E09x on the shipped policies), the
        // discrete-event run at the design floor must meet every
        // deadline — nothing shed, nothing failed, p99 under the floor.
        let ds = enode_analysis::schedcheck::lint_shipped_policies();
        assert!(
            ds.is_empty(),
            "shipped policies must be statically schedulable:\n{}",
            ds.render()
        );
        let hw = hw_sweep(true);
        for policy in enode_serve::ServeConfig::shipped() {
            let floor = hw
                .iter()
                .find(|r| r.policy == policy.name && r.deadline_us == policy.min_deadline_us)
                .expect("hw sweep covers the design floor");
            let m = &floor.result.metrics;
            assert_eq!(
                m.shed, 0,
                "{}: feasible policy must shed nothing",
                policy.name
            );
            assert_eq!(m.failed, 0, "{}", policy.name);
            assert_eq!(m.completed, m.submitted, "{}", policy.name);
            assert!(
                m.latency_p99_us <= policy.min_deadline_us,
                "{}: measured p99 {}µs must sit under the statically proven \
                 deadline {}µs",
                policy.name,
                m.latency_p99_us,
                policy.min_deadline_us
            );
        }
    }
}
