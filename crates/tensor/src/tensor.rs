//! Dense row-major `f32` tensors.

use crate::shape::Shape;
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A dense, row-major tensor of `f32` values.
///
/// `Tensor` is the working numeric type of the whole reproduction. The eNODE
/// prototype computes in FP16; we compute in `f32` and account storage in
/// 2-byte elements (see [`crate::f16`]), which keeps the algorithms
/// numerically robust while preserving the paper's memory accounting.
///
/// # Example
///
/// ```
/// use enode_tensor::Tensor;
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
/// let b = a.scale(2.0);
/// assert_eq!(b.data(), &[2.0, 4.0, 6.0]);
/// assert!((a.norm_l2() - 14f32.sqrt()).abs() < 1e-6);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the shape's element count.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {shape} ({} elements)",
            data.len(),
            shape.len()
        );
        Tensor { shape, data }
    }

    /// A tensor of zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.len();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// A tensor of ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.len();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// A rank-1 tensor holding a scalar.
    pub fn scalar(value: f32) -> Self {
        Tensor::from_vec(vec![value], &[1])
    }

    /// A tensor shaped like `other`, filled with zeros.
    pub fn zeros_like(other: &Tensor) -> Self {
        Tensor::zeros(other.shape())
    }

    /// The dimension extents.
    pub fn shape(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The shape object (strides, offsets).
    pub fn shape_obj(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the element storage.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the element storage.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Copies `other`'s elements into `self` without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn copy_from(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "copy_from shape mismatch");
        self.data.copy_from_slice(&other.data);
    }

    /// Element at a 4-D index.
    #[inline]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.shape.offset4(n, c, h, w)]
    }

    /// Mutable element at a 4-D index.
    #[inline]
    pub fn at4_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        let off = self.shape.offset4(n, c, h, w);
        &mut self.data[off]
    }

    /// Returns a tensor with the same data and a new shape of equal length.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshaped(&self, dims: &[usize]) -> Tensor {
        Tensor::from_vec(self.data.clone(), dims)
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise combination of two same-shape tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        self.assert_same_shape(other);
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self * k` (returns a new tensor).
    pub fn scale(&self, k: f32) -> Tensor {
        self.map(|x| x * k)
    }

    /// In-place `self += k * other` (the BLAS `axpy` primitive; this is the
    /// core accumulate operation of a Runge–Kutta partial-state update).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, k: f32, other: &Tensor) {
        self.assert_same_shape(other);
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += k * b;
        }
    }

    /// In-place scale: `self *= k`.
    pub fn scale_mut(&mut self, k: f32) {
        for a in self.data.iter_mut() {
            *a *= k;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.len() as f32
    }

    /// Euclidean (L2) norm over all elements.
    pub fn norm_l2(&self) -> f32 {
        self.data
            .iter()
            .map(|x| (*x as f64).powi(2))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Max-absolute-value (L∞) norm.
    pub fn norm_inf(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, x| m.max(x.abs()))
    }

    /// Dot product of the flattened tensors.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.len(), other.len(), "dot: length mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum::<f64>() as f32
    }

    /// True when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Storage footprint in bytes at the given element width (the eNODE
    /// prototype stores FP16, i.e. 2 bytes/element).
    pub fn storage_bytes(&self, bytes_per_element: usize) -> usize {
        self.len() * bytes_per_element
    }

    fn assert_same_shape(&self, other: &Tensor) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch: {} vs {}",
            self.shape,
            other.shape
        );
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len() <= 8 {
            write!(f, "Tensor({}, {:?})", self.shape, self.data)
        } else {
            write!(
                f,
                "Tensor({}, [{:.4}, {:.4}, ... {:.4}])",
                self.shape,
                self.data[0],
                self.data[1],
                self.data[self.len() - 1]
            )
        }
    }
}

impl Add<&Tensor> for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a + b)
    }
}

impl Sub<&Tensor> for &Tensor {
    type Output = Tensor;
    fn sub(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a - b)
    }
}

impl Mul<f32> for &Tensor {
    type Output = Tensor;
    fn mul(self, k: f32) -> Tensor {
        self.scale(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 2, 2]);
        assert_eq!(t.at4(0, 0, 0, 0), 0.0);
        assert_eq!(t.at4(1, 2, 1, 1), 23.0);
        assert_eq!(t.len(), 24);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn wrong_length_rejected() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[6.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn axpy_shape_checked() {
        let mut a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        a.axpy(1.0, &b);
    }

    #[test]
    fn norms() {
        let t = Tensor::from_vec(vec![3.0, -4.0], &[2]);
        assert!((t.norm_l2() - 5.0).abs() < 1e-6);
        assert_eq!(t.norm_inf(), 4.0);
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert!((a.dot(&b) - 32.0).abs() < 1e-6);
    }

    #[test]
    fn operators() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]);
        assert_eq!((&a + &b).data(), &[4.0, 7.0]);
        assert_eq!((&b - &a).data(), &[2.0, 3.0]);
        assert_eq!((&a * 3.0).data(), &[3.0, 6.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = a.reshaped(&[4]);
        assert_eq!(b.shape(), &[4]);
        assert_eq!(b.data(), a.data());
    }

    #[test]
    fn storage_bytes_fp16() {
        let a = Tensor::zeros(&[64, 64, 64]);
        assert_eq!(a.storage_bytes(2), 64 * 64 * 64 * 2);
    }

    #[test]
    fn finite_detection() {
        let mut a = Tensor::zeros(&[3]);
        assert!(a.is_finite());
        a.data_mut()[1] = f32::NAN;
        assert!(!a.is_finite());
    }
}
