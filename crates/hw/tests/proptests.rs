//! Property-based tests for the hardware simulator.

use enode_hw::config::{HwConfig, LayerDims, WorkloadRun};
use enode_hw::depthfirst::{
    integral_state_bytes_baseline, integral_state_bytes_enode,
    training_spill_bytes_per_interval, training_state_live_bytes_baseline,
    training_state_live_bytes_enode,
};
use enode_hw::dram::{Dram, DramConfig};
use enode_hw::energy::EnergyModel;
use enode_hw::packet::{simulate_pipeline, Schedule};
use enode_hw::perf::{simulate_baseline, simulate_enode};
use proptest::prelude::*;

fn arb_layer() -> impl Strategy<Value = LayerDims> {
    (4usize..9, 4usize..9, 3usize..8)
        .prop_map(|(h, w, c)| LayerDims::new(1 << h, 1 << w, 1 << c))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Depth-first buffering always beats the full-map baseline, and the
    /// advantage grows with the map height.
    #[test]
    fn depthfirst_always_smaller(layer in arb_layer()) {
        let cfg = HwConfig::for_layer(layer);
        prop_assert!(integral_state_bytes_enode(&cfg) < integral_state_bytes_baseline(&cfg));
        prop_assert!(
            training_state_live_bytes_enode(&cfg) <= training_state_live_bytes_baseline(&cfg)
        );
    }

    /// Spill is monotone non-increasing in buffer size and zero at the
    /// provisioning point.
    #[test]
    fn spill_monotone(layer in arb_layer(), frac in 0.0f64..2.0) {
        let cfg = HwConfig::for_layer(layer);
        let live = training_state_live_bytes_enode(&cfg);
        let b1 = (live as f64 * frac) as u64;
        let b2 = b1 + 1024;
        prop_assert!(
            training_spill_bytes_per_interval(live, b2)
                <= training_spill_bytes_per_interval(live, b1)
        );
        prop_assert_eq!(training_spill_bytes_per_interval(live, live), 0);
    }

    /// Pipeline simulation invariants: work conservation (busy slots =
    /// streams × rows) and packetized buffering bounded by streams × lag.
    #[test]
    fn pipeline_work_conserved(streams in 1usize..6, rows in 8u64..128, lag in 1u64..8) {
        for schedule in [Schedule::Packetized, Schedule::Blocking] {
            let r = simulate_pipeline(streams, rows, lag, schedule);
            prop_assert_eq!(r.makespan - r.idle_slots, streams as u64 * rows);
        }
        let p = simulate_pipeline(streams, rows, lag, Schedule::Packetized);
        prop_assert!(p.peak_buffer_rows <= streams as u64 * (lag + 1));
    }

    /// DRAM byte accounting is exact and cycles are positive.
    #[test]
    fn dram_accounting(accesses in prop::collection::vec((0u64..1u64 << 20, 1u64..4096), 1..50)) {
        let mut d = Dram::new(DramConfig::default());
        let mut expect = 0u64;
        for &(addr, bytes) in &accesses {
            let cycles = d.read(addr, bytes);
            prop_assert!(cycles > 0);
            expect += bytes;
        }
        prop_assert_eq!(d.stats().bytes, expect);
        prop_assert_eq!(d.stats().reads as usize, accesses.len());
        prop_assert!(d.energy_j() > 0.0);
    }

    /// Simulator monotonicity: more trials never makes either design
    /// faster or cheaper.
    #[test]
    fn more_trials_cost_more(points in 5usize..50, extra in 1usize..40) {
        let cfg = HwConfig::config_a();
        let e = EnergyModel::default();
        let small = WorkloadRun::analytic(4, points, 1.5, false);
        let mut large = small;
        large.trials += extra;
        for sim in [simulate_enode, simulate_baseline] {
            let a = sim(&cfg, &small, &e);
            let b = sim(&cfg, &large, &e);
            prop_assert!(b.seconds >= a.seconds);
            prop_assert!(b.energy_j() >= a.energy_j());
        }
    }

    /// Ring hop identity: going clockwise then counter-clockwise between
    /// any two nodes sums to the ring size (or zero for the same node).
    #[test]
    fn ring_hops_complementary(cores in 1usize..8, a in 0usize..9, b in 0usize..9) {
        use enode_hw::ring::{LoopDirection, RingNoc};
        let r = RingNoc { cores, link_bytes_per_cycle: 1.0, hop_latency: 1 };
        let n = r.nodes();
        let (a, b) = (a % n, b % n);
        let cw = r.hops(a, b, LoopDirection::Clockwise);
        let ccw = r.hops(a, b, LoopDirection::CounterClockwise);
        if a == b {
            prop_assert_eq!(cw + ccw, 0);
        } else {
            prop_assert_eq!(cw + ccw, n);
        }
    }

    /// Layer mapping covers every layer exactly once and never exceeds the
    /// core count per round.
    #[test]
    fn mapping_covers_layers(n_conv in 1usize..20, cores in 1usize..8) {
        use enode_hw::mapping::map_layers;
        let m = map_layers(n_conv, cores);
        prop_assert_eq!(m.core_of_layer.len(), n_conv);
        prop_assert!(m.core_of_layer.iter().all(|&c| c < cores));
        prop_assert_eq!(m.rounds, n_conv.div_ceil(cores));
        let u = m.utilization(cores);
        prop_assert!(u > 0.0 && u <= 1.0);
    }

    /// Core queueing model: utilization never exceeds 1 and matches the
    /// arrival/service ratio when under-loaded.
    #[test]
    fn core_utilization_bounded(interval_mult in 1u64..6, packets in 10u64..200) {
        use enode_hw::core::{simulate_core, CoreModel};
        let m = CoreModel { channels: 16, parallel_channels: 8, kernel: 3, adder_latency: 2 };
        let r = simulate_core(&m, packets, m.service_cycles() * interval_mult);
        prop_assert!(r.utilization() <= 1.0 + 1e-9);
        let expect = 1.0 / interval_mult as f64;
        prop_assert!((r.utilization() - expect).abs() < 0.1, "{} vs {}", r.utilization(), expect);
    }

    /// eNODE always wins on energy for identical workloads (the DRAM
    /// traffic gap guarantees it even before the expedited algorithms).
    #[test]
    fn enode_energy_wins(points in 5usize..50, tpp in 1usize..5, training in any::<bool>()) {
        let cfg = HwConfig::config_a();
        let e = EnergyModel::default();
        let run = WorkloadRun::analytic(4, points, tpp as f64, training);
        let en = simulate_enode(&cfg, &run, &e);
        let ba = simulate_baseline(&cfg, &run, &e);
        prop_assert!(en.energy_j() < ba.energy_j());
    }
}
