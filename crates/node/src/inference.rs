//! The NODE forward pass: integration layers solved by iterative stepsize
//! search (paper §II-A/B, Fig 3 "forward pass").

use crate::model::{HeadCache, NodeModel};
use crate::priority::{
    find_window, judge_with_priority, num_rows, PriorityOptions, PriorityWindow,
};
use enode_ode::controller::{
    ClassicController, ConventionalSearchController, SlopeAdaptiveController, StepController,
    TrialDecision,
};
use enode_ode::state::StateOps;
use enode_ode::step::{rk_step_with, StepScratch};
use enode_ode::tableau::ButcherTableau;
use enode_tensor::network::Network;
use enode_tensor::Tensor;
use std::error::Error;
use std::fmt;

/// Which stepsize-search policy drives the forward pass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ControllerKind {
    /// The conventional search of §II-B: fixed shrink factor, no growth;
    /// each evaluation point starts from the previous accepted `Δt`.
    Conventional {
        /// Rejection shrink factor (0, 1).
        shrink: f64,
    },
    /// The conventional search restarted from the constant `C` at every
    /// evaluation point — the high-trial-count regime of Fig 4a.
    ConventionalConstantInit {
        /// Rejection shrink factor (0, 1).
        shrink: f64,
    },
    /// A literature-standard error-proportional controller.
    Classic,
    /// eNODE's slope-adaptive search (§VII-A).
    SlopeAdaptive {
        /// Consecutive-accept threshold `s_acc`.
        s_acc: u32,
        /// Consecutive-reject threshold `s_rej`.
        s_rej: u32,
    },
}

impl ControllerKind {
    fn build(&self, tableau: &ButcherTableau, default_dt: f64) -> Box<dyn StepController> {
        match *self {
            ControllerKind::Conventional { shrink } => {
                Box::new(ConventionalSearchController::new(default_dt, shrink))
            }
            ControllerKind::ConventionalConstantInit { shrink } => {
                Box::new(ConventionalSearchController::new(default_dt, shrink).with_constant_init())
            }
            ControllerKind::Classic => {
                Box::new(ClassicController::new(tableau.error_order()).with_default_dt(default_dt))
            }
            ControllerKind::SlopeAdaptive { s_acc, s_rej } => {
                Box::new(SlopeAdaptiveController::new(s_acc, s_rej).with_default_dt(default_dt))
            }
        }
    }
}

/// Failure modes of the NODE forward pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeError {
    /// The stepsize search at some layer could not meet the tolerance.
    StepsizeUnderflow {
        /// Which integration layer failed.
        layer: usize,
    },
    /// A state became non-finite.
    NonFiniteState {
        /// Which integration layer failed.
        layer: usize,
    },
}

impl fmt::Display for NodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeError::StepsizeUnderflow { layer } => {
                write!(
                    f,
                    "stepsize search underflowed in integration layer {layer}"
                )
            }
            NodeError::NonFiniteState { layer } => {
                write!(f, "state became non-finite in integration layer {layer}")
            }
        }
    }
}

impl Error for NodeError {}

/// Options for the NODE forward pass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeSolveOptions {
    /// Error tolerance ε (paper experiments use 1e-6).
    pub tolerance: f64,
    /// The pre-defined initial stepsize `C`.
    pub default_dt: f64,
    /// Stepsize-search policy.
    pub controller: ControllerKind,
    /// Priority processing + early stop, when enabled.
    pub priority: Option<PriorityOptions>,
    /// Integrator (RK23 in all paper experiments).
    pub tableau_kind: TableauKind,
    /// Trial budget per evaluation point.
    pub max_trials_per_point: usize,
    /// Evaluation-point budget per layer.
    pub max_points: usize,
    /// Smallest permissible stepsize.
    pub dt_min: f64,
    /// When true, accepted states are quantized through IEEE binary16
    /// after every step — modeling the prototype's FP16 storage datapath
    /// (paper §VIII: "All designs use FP16 precision").
    pub fp16_storage: bool,
    /// Store every `k`-th accepted state as an ACA checkpoint (1 = every
    /// evaluation point, the paper's setting). Larger strides trade
    /// checkpoint memory for recomputation in the backward pass, which
    /// replays each inter-checkpoint segment with one extra local forward.
    pub checkpoint_stride: usize,
}

/// Which integrator to use (a small enum so options stay `Copy`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TableauKind {
    /// Heun 2(1).
    HeunEuler,
    /// Bogacki–Shampine 3(2) — the paper's RK23.
    Rk23,
    /// Fehlberg 5(4).
    Rkf45,
    /// Dormand–Prince 5(4).
    Dopri5,
}

impl TableauKind {
    /// Materializes the Butcher tableau.
    pub fn tableau(self) -> ButcherTableau {
        match self {
            TableauKind::HeunEuler => ButcherTableau::heun_euler(),
            TableauKind::Rk23 => ButcherTableau::rk23_bogacki_shampine(),
            TableauKind::Rkf45 => ButcherTableau::rkf45(),
            TableauKind::Dopri5 => ButcherTableau::dopri5(),
        }
    }
}

/// A per-call override of the solver knobs a serving runtime trades
/// against deadline headroom: tolerance, trial budget, and integrator.
///
/// `None` fields keep the base [`NodeSolveOptions`] value, so the same
/// model (and the same options it was tuned with) can be re-dispatched at
/// a cheaper solver configuration — a degradation tier — without being
/// rebuilt. [`apply`](SolveOverride::apply) materializes the effective
/// options.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SolveOverride {
    /// Replacement error tolerance ε.
    pub tolerance: Option<f64>,
    /// Replacement trial budget per evaluation point.
    pub max_trials: Option<usize>,
    /// Replacement integrator.
    pub tableau: Option<TableauKind>,
}

impl SolveOverride {
    /// The identity override: every field keeps the base value.
    pub const NONE: SolveOverride = SolveOverride {
        tolerance: None,
        max_trials: None,
        tableau: None,
    };

    /// `true` when no field overrides anything.
    pub fn is_none(&self) -> bool {
        *self == SolveOverride::NONE
    }

    /// The effective options: `base` with every `Some` field replaced.
    ///
    /// # Panics
    ///
    /// Panics if an overriding tolerance is not positive or an overriding
    /// trial budget is zero.
    pub fn apply(&self, base: &NodeSolveOptions) -> NodeSolveOptions {
        let mut opts = *base;
        if let Some(tol) = self.tolerance {
            assert!(tol > 0.0, "override tolerance must be positive");
            opts.tolerance = tol;
        }
        if let Some(trials) = self.max_trials {
            assert!(trials > 0, "override trial budget must be positive");
            opts.max_trials_per_point = trials;
        }
        if let Some(tableau) = self.tableau {
            opts.tableau_kind = tableau;
        }
        opts
    }
}

impl NodeSolveOptions {
    /// Defaults matching the paper's experimental setup: RK23, conventional
    /// search with shrink 0.5, initial stepsize 0.1, no priority.
    pub fn new(tolerance: f64) -> Self {
        assert!(tolerance > 0.0, "tolerance must be positive");
        NodeSolveOptions {
            tolerance,
            default_dt: 0.1,
            controller: ControllerKind::Conventional { shrink: 0.5 },
            priority: None,
            tableau_kind: TableauKind::Rk23,
            max_trials_per_point: 64,
            max_points: 100_000,
            dt_min: 1e-10,
            fp16_storage: false,
            checkpoint_stride: 1,
        }
    }

    /// Sets the checkpoint stride (bounded-memory ACA).
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn with_checkpoint_stride(mut self, stride: usize) -> Self {
        assert!(stride > 0, "checkpoint stride must be positive");
        self.checkpoint_stride = stride;
        self
    }

    /// Enables FP16 quantization of stored states (checkpoints and the
    /// running state) — the prototype's storage precision.
    pub fn with_fp16_storage(mut self) -> Self {
        self.fp16_storage = true;
        self
    }

    /// Switches the stepsize-search policy.
    pub fn with_controller(mut self, kind: ControllerKind) -> Self {
        self.controller = kind;
        self
    }

    /// Enables priority processing + early stop with window `Ĥ`.
    pub fn with_priority(mut self, window_rows: usize) -> Self {
        self.priority = Some(PriorityOptions::new(window_rows));
        self
    }

    /// Sets the initial stepsize constant `C`.
    pub fn with_default_dt(mut self, dt: f64) -> Self {
        assert!(dt > 0.0 && dt.is_finite());
        self.default_dt = dt;
        self
    }

    /// Switches the integrator.
    pub fn with_tableau(mut self, kind: TableauKind) -> Self {
        self.tableau_kind = kind;
        self
    }
}

/// Record of one accepted integration step (one checkpoint interval).
#[derive(Clone, Debug)]
pub struct StepRecord {
    /// Start time of the step.
    pub t0: f64,
    /// Accepted stepsize.
    pub dt: f64,
    /// Trials the search used (1 = accepted immediately).
    pub trials: usize,
}

/// Per-layer statistics of the forward pass — the quantities Figs 11/13
/// plot.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LayerStats {
    /// Evaluation points (accepted steps), `n_eval`.
    pub points: usize,
    /// Total trials (accepted + rejected).
    pub trials: usize,
    /// Rejected trials.
    pub rejected: usize,
    /// Function evaluations.
    pub nfe: usize,
    /// Rows of the feature map processed across all trials.
    pub rows_processed: u64,
    /// Rows a non-prioritized implementation would have processed.
    pub rows_total: u64,
    /// Trials that stopped early in the priority window.
    pub early_stops: usize,
}

/// One stored ACA checkpoint: the state at the *left edge* of step
/// `step` (so `step == 0` is the layer input).
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Index of the step this state precedes.
    pub step: usize,
    /// Time of the checkpoint.
    pub t: f64,
    /// The stored state.
    pub state: Tensor,
}

/// Trace of one integration layer's forward pass. Checkpoints are exactly
/// the states the ACA method stores for the backward pass (§II-C) —
/// every accepted evaluation point at stride 1, sparser otherwise.
#[derive(Clone, Debug)]
pub struct LayerTrace {
    /// Stored checkpoints in increasing step order (always starts at the
    /// layer input, step 0).
    pub checkpoints: Vec<Checkpoint>,
    /// One record per accepted step (`checkpoints.len() - 1` records).
    pub steps: Vec<StepRecord>,
    /// Layer statistics.
    pub stats: LayerStats,
    /// The integrator used (the backward pass replays it).
    pub tableau: TableauKind,
}

impl LayerTrace {
    /// Bytes of checkpoint storage at the given element width — the DRAM
    /// traffic the forward pass generates for the backward pass.
    pub fn checkpoint_bytes(&self, bytes_per_element: usize) -> u64 {
        self.checkpoints
            .iter()
            .map(|c| c.state.storage_bytes(bytes_per_element) as u64)
            .sum()
    }
}

/// Trace of a full forward pass.
#[derive(Clone, Debug)]
pub struct ForwardTrace {
    /// One trace per integration layer.
    pub layers: Vec<LayerTrace>,
    /// Head cache when the model has a classifier head.
    pub head_cache: Option<HeadCache>,
}

impl ForwardTrace {
    /// Sum of layer statistics.
    pub fn total_stats(&self) -> LayerStats {
        let mut acc = LayerStats::default();
        for l in &self.layers {
            acc.points += l.stats.points;
            acc.trials += l.stats.trials;
            acc.rejected += l.stats.rejected;
            acc.nfe += l.stats.nfe;
            acc.rows_processed += l.stats.rows_processed;
            acc.rows_total += l.stats.rows_total;
            acc.early_stops += l.stats.early_stops;
        }
        acc
    }

    /// Mean trials per integration layer (the y-axis of Figs 11 and 13).
    pub fn trials_per_layer(&self) -> f64 {
        self.total_stats().trials as f64 / self.layers.len() as f64
    }
}

/// Solves one integration layer `[t0, t1]` with iterative stepsize search.
///
/// # Errors
///
/// Returns [`NodeError`] on stepsize underflow or non-finite states
/// (`layer` is reported as 0; [`forward_model`] rewrites it).
pub fn forward_layer(
    f: &Network,
    y0: &Tensor,
    t_span: (f64, f64),
    opts: &NodeSolveOptions,
) -> Result<(Tensor, LayerTrace), NodeError> {
    let tableau = opts.tableau_kind.tableau();
    // Preflights mirroring the static lints (E062, E055): a violated
    // bound here means the artifact was never run through `enode-lint`.
    debug_assert!(
        opts.dt_min < opts.default_dt,
        "dt_min {} must be below default_dt {} (lint E062)",
        opts.dt_min,
        opts.default_dt
    );
    // Runtime floor: the smallest positive f16 subnormal (2^-24). The
    // static E055 lint is stricter (it flags the degraded-precision
    // subnormal range too); below 2^-24 the comparison is simply void.
    debug_assert!(
        !opts.fp16_storage || opts.tolerance >= (-24.0f64).exp2(),
        "tolerance {} is unrepresentable in f16 state (lint E055)",
        opts.tolerance
    );
    let mut controller = opts.controller.build(&tableau, opts.default_dt);
    let (t0, t1) = t_span;
    debug_assert!(
        t0.is_finite() && t1.is_finite() && t1 > t0,
        "integration span must be finite and increasing, got ({t0}, {t1})"
    );
    debug_assert!(
        y0.data().iter().all(|v| v.is_finite()),
        "initial state contains NaN/Inf"
    );
    let rows_per_map = num_rows(y0) as u64;

    let mut y = y0.clone();
    let mut t = t0;
    let mut checkpoints = vec![Checkpoint {
        step: 0,
        t: t0,
        state: y0.clone(),
    }];
    let mut steps = Vec::new();
    let mut stats = LayerStats::default();
    let mut dt_hint: Option<f64> = None;
    let mut fsal: Option<Tensor> = None;
    // One buffer pool across the layer's whole stepsize search: rejected
    // trials and spent stages are full feature-map tensors, and recycling
    // them keeps the search loop allocation-free at steady state.
    let mut scratch = StepScratch::new();

    while t < t1 - 1e-12 {
        if checkpoints.len() > opts.max_points {
            return Err(NodeError::StepsizeUnderflow { layer: 0 });
        }
        let remaining = t1 - t;
        let mut dt = controller
            .begin_point(dt_hint, remaining)
            .max(opts.dt_min)
            .min(remaining);
        let mut trials = 0usize;
        let mut k1: Option<Tensor> = fsal.take();
        let mut window: Option<PriorityWindow> = None;
        loop {
            trials += 1;
            stats.trials += 1;
            if trials > opts.max_trials_per_point {
                return Err(NodeError::StepsizeUnderflow { layer: 0 });
            }
            let mut eval = |tt: f64, yy: &Tensor| f.eval(tt as f32, yy);
            let out = rk_step_with(&tableau, &mut eval, t, dt, &y, k1.clone(), &mut scratch);
            stats.nfe += out.nfe;
            if !out.y_next.is_finite() {
                return Err(NodeError::NonFiniteState { layer: 0 });
            }
            // k1 = f(t, y) is dt-independent: reuse it across retrials.
            k1 = Some(out.stages[0].clone());
            let error = out.error.as_ref().expect("adaptive tableau");

            // Decision norm: full map on the first trial (which also
            // initializes the priority window), window-only afterwards.
            let (decision_norm, rows_this_trial, early) = match (opts.priority, trials) {
                (Some(p), 1) => {
                    window = Some(find_window(error, p.window_rows));
                    (StateOps::norm_l2(error), rows_per_map, false)
                }
                (Some(_), _) => {
                    let w = window.expect("window set on first trial");
                    let j = judge_with_priority(error, w, opts.tolerance);
                    (j.decision_norm, j.rows_processed as u64, j.early_stopped)
                }
                (None, _) => (StateOps::norm_l2(error), rows_per_map, false),
            };
            stats.rows_processed += rows_this_trial;
            stats.rows_total += rows_per_map;
            if early {
                stats.early_stops += 1;
            }

            let ratio = decision_norm / opts.tolerance;
            match controller.on_trial(dt, ratio) {
                TrialDecision::Accept { dt_next_hint } => {
                    t += dt;
                    let prev_y = std::mem::replace(&mut y, out.y_next);
                    scratch.recycle([prev_y]);
                    scratch.recycle(out.error);
                    if opts.fp16_storage {
                        for v in y.data_mut() {
                            *v = enode_tensor::F16::from_f32(*v).to_f32();
                        }
                    }
                    if tableau.is_fsal() {
                        let mut stages = out.stages;
                        fsal = stages.pop();
                        scratch.recycle(stages);
                    } else {
                        scratch.recycle(out.stages);
                    }
                    steps.push(StepRecord {
                        t0: t - dt,
                        dt,
                        trials,
                    });
                    if steps.len() % opts.checkpoint_stride == 0 {
                        checkpoints.push(Checkpoint {
                            step: steps.len(),
                            t,
                            state: y.clone(),
                        });
                    }
                    stats.points += 1;
                    dt_hint = Some(dt_next_hint);
                    controller.end_point(trials == 1);
                    break;
                }
                TrialDecision::Reject { dt_retry } => {
                    stats.rejected += 1;
                    scratch.recycle([out.y_next]);
                    scratch.recycle(out.error);
                    scratch.recycle(out.stages);
                    if dt_retry < opts.dt_min {
                        return Err(NodeError::StepsizeUnderflow { layer: 0 });
                    }
                    dt = dt_retry;
                }
            }
        }
    }

    let trace = LayerTrace {
        checkpoints,
        steps,
        stats,
        tableau: opts.tableau_kind,
    };
    Ok((y, trace))
}

/// Runs the full NODE forward pass: every integration layer in sequence,
/// then the classifier head if present. Returns the model output (logits
/// when a head exists, else the final state) and the full trace.
///
/// # Errors
///
/// Returns [`NodeError`] identifying the failing layer.
pub fn forward_model(
    model: &NodeModel,
    x: &Tensor,
    opts: &NodeSolveOptions,
) -> Result<(Tensor, ForwardTrace), NodeError> {
    debug_assert!(
        x.data().iter().all(|v| v.is_finite()),
        "model input contains NaN/Inf"
    );
    let orig_width = x.shape()[1];
    let mut state = crate::augment::augment(x, model.augment_dims());
    let mut layers = Vec::with_capacity(model.num_layers());
    for (li, f) in model.layers().iter().enumerate() {
        let (y, trace) = forward_layer(f, &state, model.t_span(), opts).map_err(|e| match e {
            NodeError::StepsizeUnderflow { .. } => NodeError::StepsizeUnderflow { layer: li },
            NodeError::NonFiniteState { .. } => NodeError::NonFiniteState { layer: li },
        })?;
        state = y;
        layers.push(trace);
    }
    // ANODE: predictions live in the original dimensions.
    let projected = crate::augment::project(&state, orig_width);
    let (output, head_cache) = match model.head() {
        Some(head) => {
            let (logits, cache) = head.forward(&projected);
            (logits, Some(cache))
        }
        None => (projected, None),
    };
    Ok((output, ForwardTrace { layers, head_cache }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use enode_tensor::dense::Dense;
    use enode_tensor::network::Op;

    /// A NODE whose embedded network computes exactly f(t, h) = -h,
    /// so the layer computes h(1) = h(0)·e^{-1}.
    fn decay_network() -> Network {
        let w = Tensor::from_vec(vec![-1.0], &[1, 1]);
        let b = Tensor::zeros(&[1]);
        Network::new(vec![Op::dense(Dense::from_parts(w, b))])
    }

    #[test]
    fn layer_solves_known_ode() {
        let f = decay_network();
        let y0 = Tensor::from_vec(vec![1.0], &[1, 1]);
        let opts = NodeSolveOptions::new(1e-7).with_default_dt(0.05);
        let (y, trace) = forward_layer(&f, &y0, (0.0, 1.0), &opts).unwrap();
        assert!(
            (y.data()[0] - (-1.0f32).exp()).abs() < 1e-4,
            "got {}",
            y.data()[0]
        );
        assert_eq!(trace.checkpoints.len(), trace.steps.len() + 1);
        assert!(trace.stats.points >= 5);
    }

    #[test]
    fn trace_times_are_monotone_and_cover_span() {
        let f = decay_network();
        let y0 = Tensor::from_vec(vec![2.0], &[1, 1]);
        let opts = NodeSolveOptions::new(1e-6);
        let (_, trace) = forward_layer(&f, &y0, (0.0, 1.0), &opts).unwrap();
        let mut prev = -1.0;
        for c in &trace.checkpoints {
            assert!(c.t > prev);
            prev = c.t;
        }
        assert_eq!(trace.checkpoints[0].t, 0.0);
        assert!((prev - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tighter_tolerance_more_points() {
        let f = decay_network();
        let y0 = Tensor::from_vec(vec![1.0], &[1, 1]);
        let loose = forward_layer(&f, &y0, (0.0, 1.0), &NodeSolveOptions::new(1e-3))
            .unwrap()
            .1;
        let tight = forward_layer(&f, &y0, (0.0, 1.0), &NodeSolveOptions::new(1e-8))
            .unwrap()
            .1;
        assert!(tight.stats.points > loose.stats.points);
    }

    #[test]
    fn multi_layer_model_composes() {
        // Two decay layers: h -> h e^{-1} -> h e^{-2}.
        let model = NodeModel::new(vec![decay_network(), decay_network()], (0.0, 1.0));
        let x = Tensor::from_vec(vec![1.0], &[1, 1]);
        let opts = NodeSolveOptions::new(1e-7).with_default_dt(0.05);
        let (y, trace) = forward_model(&model, &x, &opts).unwrap();
        assert!((y.data()[0] - (-2.0f32).exp()).abs() < 1e-3);
        assert_eq!(trace.layers.len(), 2);
    }

    #[test]
    fn slope_adaptive_beats_conventional_on_decay() {
        let f = decay_network();
        let y0 = Tensor::from_vec(vec![1.0], &[1, 1]);
        let conv = NodeSolveOptions::new(1e-6)
            .with_default_dt(0.02)
            .with_controller(ControllerKind::Conventional { shrink: 0.5 });
        let slope = NodeSolveOptions::new(1e-6)
            .with_default_dt(0.02)
            .with_controller(ControllerKind::SlopeAdaptive { s_acc: 3, s_rej: 3 });
        let t_conv = forward_layer(&f, &y0, (0.0, 2.0), &conv).unwrap().1;
        let t_slope = forward_layer(&f, &y0, (0.0, 2.0), &slope).unwrap().1;
        assert!(
            t_slope.stats.trials < t_conv.stats.trials,
            "slope {} vs conventional {}",
            t_slope.stats.trials,
            t_conv.stats.trials
        );
    }

    #[test]
    fn priority_reduces_rows_when_rejections_happen() {
        // Batch of 16 samples; start with a too-large dt to force rejects.
        let f = Network::new(vec![Op::dense(Dense::from_parts(
            Tensor::from_vec(vec![-3.0], &[1, 1]),
            Tensor::zeros(&[1]),
        ))]);
        let mut y0 = Tensor::zeros(&[16, 1]);
        for i in 0..16 {
            y0.data_mut()[i] = 1.0 + i as f32;
        }
        let base = NodeSolveOptions::new(1e-6).with_default_dt(0.5);
        let prio = base.with_priority(4);
        let tb = forward_layer(&f, &y0, (0.0, 1.0), &base).unwrap().1;
        let tp = forward_layer(&f, &y0, (0.0, 1.0), &prio).unwrap().1;
        assert!(
            tb.stats.rejected > 0,
            "test needs rejections to be meaningful"
        );
        assert!(
            tp.stats.early_stops > 0,
            "priority should early-stop rejects"
        );
        assert!(
            tp.stats.rows_processed < tp.stats.rows_total,
            "early stops must save rows"
        );
    }

    #[test]
    fn non_finite_dynamics_reported_with_layer() {
        // Failure injection: a network whose weights explode produces NaN/
        // inf states; the solver must fail cleanly, naming the layer.
        let w = Tensor::from_vec(vec![1e30], &[1, 1]);
        let bad = Network::new(vec![Op::dense(Dense::from_parts(w, Tensor::zeros(&[1])))]);
        let model = NodeModel::new(vec![decay_network(), bad], (0.0, 1.0));
        let x = Tensor::from_vec(vec![1.0], &[1, 1]);
        let err = forward_model(&model, &x, &NodeSolveOptions::new(1e-5)).unwrap_err();
        match err {
            NodeError::NonFiniteState { layer } => assert_eq!(layer, 1),
            NodeError::StepsizeUnderflow { layer } => assert_eq!(layer, 1),
        }
    }

    #[test]
    fn impossible_tolerance_underflows_cleanly() {
        // A tolerance below the f32 noise floor exhausts the trial budget
        // instead of looping forever.
        let f = decay_network();
        let y0 = Tensor::from_vec(vec![1.0], &[1, 1]);
        let mut opts = NodeSolveOptions::new(1e-30);
        opts.max_trials_per_point = 8;
        opts.dt_min = 1e-6;
        let err = forward_layer(&f, &y0, (0.0, 1.0), &opts).unwrap_err();
        assert!(matches!(err, NodeError::StepsizeUnderflow { .. }));
    }

    #[test]
    fn fp16_storage_quantizes_but_stays_accurate() {
        let f = decay_network();
        let y0 = Tensor::from_vec(vec![1.0], &[1, 1]);
        let opts32 = NodeSolveOptions::new(1e-5).with_default_dt(0.05);
        let opts16 = opts32.with_fp16_storage();
        let (y32, _) = forward_layer(&f, &y0, (0.0, 1.0), &opts32).unwrap();
        let (y16, trace) = forward_layer(&f, &y0, (0.0, 1.0), &opts16).unwrap();
        // Different bits (quantization happened) ...
        assert_ne!(y32.data(), y16.data());
        // ... but within FP16 accumulation error of the exact solution.
        let exact = (-1.0f32).exp();
        assert!(
            (y16.data()[0] - exact).abs() < 1e-2,
            "fp16 path drifted: {} vs {exact}",
            y16.data()[0]
        );
        // Every checkpoint is exactly representable in binary16.
        for ck in &trace.checkpoints {
            for &v in ck.state.data() {
                assert_eq!(enode_tensor::F16::from_f32(v).to_f32(), v);
            }
        }
    }

    #[test]
    fn head_output_shape() {
        let model = NodeModel::image_classifier(4, 2, 1, 10, 0);
        let x = Tensor::ones(&[2, 4, 6, 6]);
        let opts = NodeSolveOptions::new(1e-3);
        let (logits, trace) = forward_model(&model, &x, &opts).unwrap();
        assert_eq!(logits.shape(), &[2, 10]);
        assert!(trace.head_cache.is_some());
    }
}
