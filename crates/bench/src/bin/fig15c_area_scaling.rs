//! Regenerates the paper's fig15c experiment. See the module docs in
//! `enode_bench::figures::fig15c_area_scaling`.

fn main() {
    enode_bench::figures::fig15c_area_scaling::run();
}
