//! Deterministic per-(policy, tier, batch) latency/energy cost tables.
//!
//! The serving stack charges service time through an abstract
//! [`CostModel`](../../enode_serve/loadgen/struct.CostModel.html) while
//! the calibrated cycle-level simulator sits one crate away. This module
//! closes the gap: it sweeps [`simulate_enode`] once per (degradation
//! tier × batch size) of a serving policy and emits a versioned,
//! **byte-stable** [`CostTable`] — cycles become µs through the 28 nm
//! clock model, pJ become µJ through [`EnergyModel`], DRAM stalls are
//! included because the simulator takes `max(compute, dram)`.
//!
//! Determinism contract: every number in the table is produced by plain
//! IEEE f64 arithmetic (`+ - * /`, `ceil`, `round`) on exactly
//! representable inputs — no `powf`, no clocks, no host queries — so two
//! generation runs are byte-identical on any host
//! (`ci.sh` diff-checks the committed `COST_TABLE.json` against a fresh
//! regeneration).
//!
//! The derivation of the workload counts is shared with the static
//! scheduler lints (`analysis::schedcheck`): [`points_for`] maps an
//! effective tolerance scale to the evaluation-point count of the
//! adaptive controller ([`BASE_POINTS`] at scale 1.0, shrinking like
//! `scale^(-1/(p+1))` for an embedded order `p` — the classic step-count
//! law, evaluated by integer search instead of `powf`), and
//! [`trials_for`] charges the paper's ~1.5 trials per accepted point.

use crate::config::{HwConfig, LayerDims, WorkloadRun};
use crate::energy::EnergyModel;
use crate::perf::simulate_enode;
use enode_node::inference::TableauKind;

/// Schema/version tag of the emitted table. Bump on any change to the
/// derivation (lint `E093` pins consumers to the matching generator).
pub const TABLE_VERSION: &str = "enode-cost-table/v1";

/// Evaluation points the adaptive controller spends at tolerance scale
/// 1.0 (the full-quality tier on a Standard-class request).
pub const BASE_POINTS: usize = 24;

/// Batch sizes swept per tier (clamped to the policy's `max_batch`).
pub const BATCH_GRID: [usize; 4] = [1, 2, 4, 8];

/// Integrator cost parameters of a tableau: `(stages, embedded_order)`.
///
/// Stages is the f-evaluation count of one trial step (matching
/// `HwConfig::stages` for RK23); the embedded order drives the
/// step-count law in [`points_for`].
pub fn tableau_cost(kind: TableauKind) -> (usize, usize) {
    match kind {
        TableauKind::HeunEuler => (2, 1),
        TableauKind::Rk23 => (4, 2),
        TableauKind::Rkf45 => (6, 4),
        TableauKind::Dopri5 => (7, 4),
    }
}

/// `x^n` by repeated multiplication (exact for the small integer bases
/// used here; keeps the derivation off `powf`/libm).
fn ipow(x: f64, n: u32) -> f64 {
    let mut acc = 1.0;
    for _ in 0..n {
        acc *= x;
    }
    acc
}

/// Evaluation points at effective tolerance scale `scale_eff` for an
/// embedded order-`p` pair: the largest `k` with
/// `k^(p+1) · scale_eff ≤ BASE_POINTS^(p+1)` (i.e. `k ≈ BASE_POINTS ·
/// scale_eff^(-1/(p+1))`), floored at 4 points so even the coarsest tier
/// pays the controller's startup steps.
///
/// `scale_eff` combines the tier's `tolerance_scale` with the request
/// class's tolerance relative to Standard (`1e-4`), so a Strict request
/// (`1e-6`) has `scale_eff = tolerance_scale × 0.01`.
pub fn points_for(embedded_order: usize, scale_eff: f64) -> usize {
    debug_assert!(scale_eff > 0.0 && scale_eff.is_finite());
    let p1 = embedded_order as u32 + 1;
    let budget = ipow(BASE_POINTS as f64, p1);
    let mut k = 1usize;
    while k < 100_000 && ipow((k + 1) as f64, p1) * scale_eff <= budget {
        k += 1;
    }
    k.max(4)
}

/// Trials (accepted + rejected) for `points` accepted evaluation points:
/// the paper's ~1.5 trials/point, rounded up, clamped to a per-point
/// budget of `max_trials`.
pub fn trials_for(points: usize, max_trials: usize) -> usize {
    (points * 3)
        .div_ceil(2)
        .min(points.saturating_mul(max_trials))
}

/// One degradation tier, reduced to what the simulator sweep needs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TierSim {
    /// Integrator at this tier.
    pub tableau: TableauKind,
    /// Multiplier on the request class's base tolerance (≥ 1.0).
    pub tolerance_scale: f64,
    /// Trial budget per evaluation point.
    pub max_trials: usize,
}

/// Everything the sweep needs to know about one serving policy.
#[derive(Clone, Debug, PartialEq)]
pub struct TableSpec {
    /// Policy name (row key).
    pub policy: String,
    /// Content fingerprint of the policy's ladder (hex), recorded in the
    /// table so consumers can detect a stale table (lint `E093`).
    pub fingerprint: String,
    /// Feature-map dimensions of the deployed model's integration layer.
    pub layer: LayerDims,
    /// Convolution layers in the embedded network `f`.
    pub n_conv: usize,
    /// Largest batch the policy's batcher coalesces (caps the grid).
    pub max_batch: usize,
    /// The degradation ladder, tier 0 first.
    pub tiers: Vec<TierSim>,
}

/// One simulated `(policy, tier, batch)` design point. `latency_us` and
/// `energy_uj` are **per batch** (one dispatch of `batch` requests).
#[derive(Clone, Debug, PartialEq)]
pub struct CostRow {
    /// Policy name.
    pub policy: String,
    /// Ladder index (0 = full quality).
    pub tier: usize,
    /// Batch size of this dispatch.
    pub batch: usize,
    /// Accepted evaluation points per sample (Standard class).
    pub points: usize,
    /// f-evaluations per sample (`trials × stages`, Standard class).
    pub f_evals: usize,
    /// Simulated wall-clock of the batch, µs (ceiling).
    pub latency_us: u64,
    /// Simulated total energy of the batch, µJ (rounded).
    pub energy_uj: u64,
}

/// A versioned sweep over one or more policies.
#[derive(Clone, Debug, PartialEq)]
pub struct CostTable {
    /// [`TABLE_VERSION`] at generation time.
    pub version: String,
    /// `(policy, fingerprint)` pairs, in sweep order.
    pub policies: Vec<(String, String)>,
    /// All rows, in `(policy, tier, batch)` sweep order.
    pub rows: Vec<CostRow>,
}

/// The serving hardware profile for a policy's model: Table I
/// Configuration A scaled down to the serving layer (edge feature maps,
/// two-conv `f`), with the ring link provisioned at 2 GB/s so the
/// 8-channel profile is not link-starved, and the integrator stage count
/// matching the tier under sweep.
pub fn serving_profile(layer: LayerDims, n_conv: usize, stages: usize) -> HwConfig {
    let mut cfg = HwConfig::config_a();
    cfg.layer = layer;
    cfg.n_conv = n_conv;
    cfg.stages = stages;
    cfg.stages_backward = 1;
    cfg.link_bandwidth = 2.0e9;
    cfg
}

/// Sweeps the simulator over `spec`'s (tier × batch) grid.
pub fn sweep_policy(spec: &TableSpec) -> Vec<CostRow> {
    let energy = EnergyModel::default();
    let mut rows = Vec::new();
    for (tier, t) in spec.tiers.iter().enumerate() {
        let (stages, order) = tableau_cost(t.tableau);
        let points = points_for(order, t.tolerance_scale);
        let trials = trials_for(points, t.max_trials);
        let cfg = serving_profile(spec.layer, spec.n_conv, stages);
        for &batch in BATCH_GRID.iter().filter(|&&b| b <= spec.max_batch) {
            let run = WorkloadRun {
                n_layers: 1,
                points: points * batch,
                trials: trials * batch,
                rows_fraction: 1.0,
                training: false,
            };
            let sim = simulate_enode(&cfg, &run, &energy);
            rows.push(CostRow {
                policy: spec.policy.clone(),
                tier,
                batch,
                points,
                f_evals: trials * stages,
                latency_us: (sim.seconds * 1e6).ceil() as u64,
                energy_uj: (sim.energy_j() * 1e6).round() as u64,
            });
        }
    }
    rows
}

/// Builds the full table over several policies.
pub fn build_table(specs: &[TableSpec]) -> CostTable {
    CostTable {
        version: TABLE_VERSION.to_string(),
        policies: specs
            .iter()
            .map(|s| (s.policy.clone(), s.fingerprint.clone()))
            .collect(),
        rows: specs.iter().flat_map(sweep_policy).collect(),
    }
}

impl CostTable {
    /// The row for an exact `(policy, tier, batch)` design point.
    pub fn lookup(&self, policy: &str, tier: usize, batch: usize) -> Option<&CostRow> {
        self.rows
            .iter()
            .find(|r| r.policy == policy && r.tier == tier && r.batch == batch)
    }

    /// All rows of one `(policy, tier)`, in batch order.
    pub fn rows_for(&self, policy: &str, tier: usize) -> Vec<&CostRow> {
        self.rows
            .iter()
            .filter(|r| r.policy == policy && r.tier == tier)
            .collect()
    }

    /// Renders the table as the committed `COST_TABLE.json` format: flat,
    /// line-per-row JSON that the hand-rolled `analysis::benchjson`
    /// scanner reads back. Deliberately carries **no** host metadata —
    /// the bytes depend only on the specs.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("\"schema\": \"{}\",\n", self.version));
        out.push_str("\"policies\": [\n");
        for (i, (name, fp)) in self.policies.iter().enumerate() {
            let comma = if i + 1 < self.policies.len() { "," } else { "" };
            out.push_str(&format!(
                "{{ \"policy\": \"{name}\", \"fingerprint\": \"{fp}\" }}{comma}\n"
            ));
        }
        out.push_str("],\n");
        out.push_str("\"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            out.push_str(&format!(
                "{{ \"policy\": \"{}\", \"tier\": {}, \"batch\": {}, \"points\": {}, \
                 \"f_evals\": {}, \"latency_us\": {}, \"energy_uj\": {} }}{comma}\n",
                r.policy, r.tier, r.batch, r.points, r.f_evals, r.latency_us, r.energy_uj
            ));
        }
        out.push_str("]\n");
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge_spec() -> TableSpec {
        TableSpec {
            policy: "test_edge".to_string(),
            fingerprint: "0".repeat(16),
            layer: LayerDims::new(16, 16, 8),
            n_conv: 2,
            max_batch: 8,
            tiers: vec![
                TierSim {
                    tableau: TableauKind::Rk23,
                    tolerance_scale: 1.0,
                    max_trials: 64,
                },
                TierSim {
                    tableau: TableauKind::HeunEuler,
                    tolerance_scale: 256.0,
                    max_trials: 16,
                },
            ],
        }
    }

    #[test]
    fn points_follow_the_step_count_law() {
        // Scale 1.0 spends the base budget; order-2 at 16x tolerance
        // shrinks like 16^(-1/3); the floor catches the coarsest tiers.
        assert_eq!(points_for(2, 1.0), 24);
        assert_eq!(points_for(2, 16.0), 9);
        assert_eq!(points_for(1, 256.0), 4);
        assert_eq!(points_for(1, 64.0), 4);
        // Tighter-than-Standard classes grow the budget (Strict = 0.01).
        assert_eq!(points_for(2, 0.01), 111);
    }

    #[test]
    fn trials_charge_three_halves_per_point() {
        assert_eq!(trials_for(24, 64), 36);
        assert_eq!(trials_for(9, 32), 14); // ceil(13.5)
        assert_eq!(trials_for(4, 16), 6);
        // The per-point budget clamps a pathological request.
        assert_eq!(trials_for(10, 1), 10);
    }

    #[test]
    fn latency_scales_linearly_with_batch() {
        let rows = sweep_policy(&edge_spec());
        let b1 = rows.iter().find(|r| r.tier == 0 && r.batch == 1).unwrap();
        let b8 = rows.iter().find(|r| r.tier == 0 && r.batch == 8).unwrap();
        // Compute-bound at this profile: 8x the samples, ~8x the time.
        assert!(b8.latency_us >= 7 * b1.latency_us);
        assert!(b8.latency_us <= 8 * b1.latency_us + 8);
        // And cheaper tiers are strictly faster.
        let t1 = rows.iter().find(|r| r.tier == 1 && r.batch == 8).unwrap();
        assert!(t1.latency_us < b8.latency_us);
        assert!(t1.energy_uj < b8.energy_uj);
    }

    #[test]
    fn render_is_reproducible_and_parses_shape() {
        let t = build_table(&[edge_spec()]);
        let a = t.render_json();
        let b = build_table(&[edge_spec()]).render_json();
        assert_eq!(a, b, "two sweeps must be byte-identical");
        assert!(a.contains("\"schema\": \"enode-cost-table/v1\""));
        assert_eq!(t.rows.len(), 2 * 4); // 2 tiers x full batch grid
        assert!(t.lookup("test_edge", 0, 8).is_some());
        assert!(t.lookup("test_edge", 2, 8).is_none());
    }

    #[test]
    fn tableau_costs_match_hw_stage_model() {
        // RK23 is the paper's integrator: HwConfig::config_a models it
        // with 4 stages; the tableau map must agree.
        assert_eq!(
            tableau_cost(TableauKind::Rk23).0,
            HwConfig::config_a().stages
        );
        let (heun_stages, heun_order) = tableau_cost(TableauKind::HeunEuler);
        assert!(heun_stages < 4 && heun_order == 1);
    }
}
