//! Fig 3: the theoretical runtime composition of a NODE integration layer
//! — forward O(N·n_eval·n_try·s), backward O(N·n_eval·s) — checked against
//! measured evaluation counts.

use crate::driver::{conventional_opts, run_bench, Bench};
use crate::report;

/// Runs the runtime-model check on Lotka–Volterra.
pub fn run() {
    report::banner("Fig 3", "theoretical runtime model vs measured counts");
    let bench = Bench::LotkaVolterra;
    let opts = conventional_opts(bench);
    let r = run_bench(bench, &opts, 2, 7);
    let p = &r.profile;
    let s = 4.0; // RK23 stages
    let s_bwd = 3.0;

    // Forward: every trial evaluates f s times (minus FSAL reuse).
    let predicted_fwd_max = p.forward.trials as f64 * s;
    let predicted_fwd_min = p.forward.trials as f64 * (s - 1.0);
    // Backward: per evaluation point, a local forward of s stages plus one
    // VJP per contributing stage.
    let predicted_bwd = p.forward.points as f64 * s;

    report::header(&["quantity", "measured", "model"]);
    report::row(&[
        "fwd nfe",
        &format!("{}", p.forward.nfe),
        &format!(
            "{}..{} (= n_try*s w/ FSAL)",
            predicted_fwd_min as u64, predicted_fwd_max as u64
        ),
    ]);
    report::row(&[
        "bwd local-fwd nfe",
        &format!("{}", p.backward.nfe_local_forward),
        &format!("{} (= n_eval*s)", predicted_bwd as u64),
    ]);
    report::row(&[
        "bwd VJPs",
        &format!("{}", p.backward.vjp_evals),
        &format!("<= {} (= n_eval*s_bwd..s)", p.forward.points as f64 * s),
    ]);
    let ok_fwd = (p.forward.nfe as f64) <= predicted_fwd_max + 0.5
        && (p.forward.nfe as f64) >= predicted_fwd_min - 0.5;
    let ok_bwd = p.backward.nfe_local_forward as f64 == predicted_bwd;
    println!();
    println!(
        "model holds: forward {} | backward {} (N={} layers, n_eval={}, n_try/point={:.2}, s={s}, s_bwd={s_bwd})",
        ok_fwd, ok_bwd, p.layers, p.forward.points,
        p.forward.trials as f64 / p.forward.points.max(1) as f64
    );
}
