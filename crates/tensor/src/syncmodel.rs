//! Declared synchronization skeletons and the runtime sync tracer.
//!
//! Mirrors the [`access`](crate::access)/`sanitize` split one layer up: each
//! runtime component that owns a `Mutex`/`Condvar`/atomic protocol *declares*
//! its structure as a [`SyncSkeleton`] — the locks it owns, which lock guards
//! each condvar and what predicate the wait re-checks, the memory-ordering
//! role of each atomic, and the acquire/notify/join step sequence of every
//! code path that touches them. The static prover in `enode-analysis`
//! (`synccheck`, E100–E106/W100–W103) consumes the declarations; the
//! feature-gated [`trace`] recorder captures what the runtime *actually* did
//! (acquisition orders, wait/notify pairings) so a parity test can prove the
//! observed graph is a subgraph of the declared one (E104 model drift).
//!
//! The declaration types live here, in the tensor crate, because the worker
//! pool in [`parallel`](crate::parallel) must be able to declare (and, under
//! `--features synctrace`, trace) its own protocol, and the dependency
//! direction is `tensor ← serve ← analysis`.

/// Memory ordering declared for an atomic's writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Memord {
    /// `Ordering::Relaxed`.
    Relaxed,
    /// `Ordering::Release`.
    Release,
    /// `Ordering::Acquire`.
    Acquire,
    /// `Ordering::AcqRel`.
    AcqRel,
    /// `Ordering::SeqCst`.
    SeqCst,
}

impl Memord {
    /// Stable lower-case name used in diagnostics.
    pub fn as_str(self) -> &'static str {
        match self {
            Memord::Relaxed => "relaxed",
            Memord::Release => "release",
            Memord::Acquire => "acquire",
            Memord::AcqRel => "acqrel",
            Memord::SeqCst => "seqcst",
        }
    }
}

/// What correctness contract an atomic participates in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicRole {
    /// A monotone event counter whose exact value is only read at
    /// quiescence (after joins/drains). `Relaxed` is sound and is recorded
    /// as a deliberate decision (W100), not an error.
    QuiescentCounter,
    /// A value read concurrently by other threads while it is being
    /// written; its writes must publish (`Release` or stronger) so
    /// cross-thread reads observe a coherent protocol (E103 otherwise).
    PublishedValue,
    /// Only ever read/written under a declared lock; ordering is carried by
    /// the lock, any declared `Ordering` is acceptable.
    LockProtected,
}

/// A declared mutex.
#[derive(Debug, Clone)]
pub struct LockDecl {
    /// Stable ID, e.g. `"server.state"`; referenced by paths and condvars.
    pub id: &'static str,
    /// Human description of the protected state.
    pub protects: &'static str,
}

/// A declared condvar and its guarding protocol.
#[derive(Debug, Clone)]
pub struct CondvarDecl {
    /// Stable ID, e.g. `"server.work_cv"`.
    pub id: &'static str,
    /// The lock whose guard the wait releases/reacquires.
    pub lock: &'static str,
    /// Human statement of the predicate the waiter blocks on.
    pub predicate: &'static str,
    /// True iff every wait site re-checks the predicate in a loop
    /// (spurious-wakeup safe). `false` is an immediate E101.
    pub recheck_loop: bool,
    /// True iff the wait is additionally bounded by a timeout, so a missed
    /// notify degrades latency instead of hanging (downgrades a missing
    /// notifier from E101 to W102).
    pub timeout_fallback: bool,
}

/// A declared atomic.
#[derive(Debug, Clone)]
pub struct AtomicDecl {
    /// Stable ID, e.g. `"clock.virtual_now"`.
    pub id: &'static str,
    /// The strongest ordering its writers use.
    pub write_order: Memord,
    /// The contract the atomic participates in.
    pub role: AtomicRole,
}

/// Whether a path is part of normal operation or the shutdown protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathRole {
    /// Normal-operation path.
    Normal,
    /// Runs during `ShuttingDown`; carries join/sweep obligations (E102).
    Shutdown,
}

/// One step of a declared path, in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Acquire the named lock (edges from every currently-held lock).
    Acquire(&'static str),
    /// Release the named lock (must be held).
    Release(&'static str),
    /// A write that can falsify the named condvar's predicate; every such
    /// write must have a reachable `Notify` of the same condvar downstream
    /// (E101 lost-wakeup otherwise).
    Write(&'static str),
    /// Notify the named condvar.
    Notify(&'static str),
    /// Block on the named condvar (its declared lock must be held).
    Wait(&'static str),
    /// Join the named worker thread.
    Join(&'static str),
    /// Drain/sweep the named queue, resolving every entry.
    SweepQueue(&'static str),
}

/// A declared code path through a component's sync protocol.
#[derive(Debug, Clone)]
pub struct PathDecl {
    /// Stable ID, e.g. `"server.shutdown"`.
    pub id: &'static str,
    /// Normal vs shutdown role.
    pub role: PathRole,
    /// The declared worker thread this path runs on, if it is a worker
    /// body (joining a thread from one of its own paths is a deadlock).
    pub runs_on: Option<&'static str>,
    /// Steps in program order.
    pub steps: Vec<Step>,
}

/// A component's full declared synchronization skeleton.
#[derive(Debug, Clone)]
pub struct SyncSkeleton {
    /// Stable component name, e.g. `"serve.server"` / `"tensor.pool"`.
    pub name: &'static str,
    /// Declared mutexes.
    pub locks: Vec<LockDecl>,
    /// Declared condvars.
    pub condvars: Vec<CondvarDecl>,
    /// Declared atomics.
    pub atomics: Vec<AtomicDecl>,
    /// Declared worker threads (must all be `Join`ed on a shutdown path).
    pub threads: Vec<&'static str>,
    /// Declared queues (must all be `SweepQueue`d on a shutdown path).
    pub queues: Vec<&'static str>,
    /// Declared paths.
    pub paths: Vec<PathDecl>,
}

impl SyncSkeleton {
    /// True iff `id` names a declared lock.
    pub fn has_lock(&self, id: &str) -> bool {
        self.locks.iter().any(|l| l.id == id)
    }

    /// Looks up a declared condvar.
    pub fn condvar(&self, id: &str) -> Option<&CondvarDecl> {
        self.condvars.iter().find(|c| c.id == id)
    }
}

/// The declared skeleton of the scoped worker pool in
/// [`parallel`](crate::parallel).
///
/// Protocol summary: `broadcast` serializes submitters on `pool.submit`,
/// publishes the job under `pool.slot`, wakes workers via `pool.work`, and
/// waits for completion on `pool.done` (workers never touch `pool.submit`,
/// so holding it across the wait cannot starve the notifiers). `Drop` sets
/// the shutdown flag under `pool.slot`, wakes everyone, and joins each
/// worker under `pool.handles`.
pub fn pool_skeleton() -> SyncSkeleton {
    use PathRole::*;
    use Step::*;
    SyncSkeleton {
        name: "tensor.pool",
        locks: vec![
            LockDecl {
                id: "pool.submit",
                protects: "submitter serialization (one broadcast at a time)",
            },
            LockDecl {
                id: "pool.slot",
                protects: "job slot: epoch, job ptr, pending count, panic/shutdown flags",
            },
            LockDecl {
                id: "pool.handles",
                protects: "worker JoinHandles",
            },
        ],
        condvars: vec![
            CondvarDecl {
                id: "pool.work",
                lock: "pool.slot",
                predicate: "shutdown || epoch != seen_epoch",
                recheck_loop: true,
                timeout_fallback: false,
            },
            CondvarDecl {
                id: "pool.done",
                lock: "pool.slot",
                predicate: "pending == 0",
                recheck_loop: true,
                timeout_fallback: false,
            },
        ],
        atomics: vec![],
        threads: vec!["pool.worker"],
        queues: vec![],
        paths: vec![
            PathDecl {
                id: "pool.broadcast",
                role: Normal,
                runs_on: None,
                steps: vec![
                    Acquire("pool.submit"),
                    Acquire("pool.slot"),
                    Write("pool.work"),
                    Notify("pool.work"),
                    Release("pool.slot"),
                    Acquire("pool.slot"),
                    Wait("pool.done"),
                    Release("pool.slot"),
                    Release("pool.submit"),
                ],
            },
            PathDecl {
                id: "pool.worker_loop",
                role: Normal,
                runs_on: Some("pool.worker"),
                steps: vec![
                    Acquire("pool.slot"),
                    Wait("pool.work"),
                    Release("pool.slot"),
                    Acquire("pool.slot"),
                    Write("pool.done"),
                    Notify("pool.done"),
                    Release("pool.slot"),
                ],
            },
            PathDecl {
                id: "pool.drop",
                role: Shutdown,
                runs_on: None,
                steps: vec![
                    Acquire("pool.slot"),
                    Write("pool.work"),
                    Notify("pool.work"),
                    Release("pool.slot"),
                    Acquire("pool.handles"),
                    Join("pool.worker"),
                    Release("pool.handles"),
                ],
            },
        ],
    }
}

pub mod trace {
    //! Runtime sync tracer (feature `synctrace`).
    //!
    //! Call sites in the runtime record lock acquisitions (via the RAII
    //! [`HeldToken`]), condvar waits and notifies. The recorder keeps a
    //! thread-local held-lock stack — every acquisition appends one
    //! `held → acquired` edge per currently-held lock to a global store —
    //! plus flat wait/notify event sets. With the feature off every hook
    //! compiles to a no-op but the *types* stay available, so analysis
    //! tests can build synthetic [`TraceReport`]s without the feature.

    use super::SyncSkeleton;
    use std::collections::BTreeSet;

    /// An observed `held → acquired` lock-order edge.
    pub type Edge = (String, String);

    /// Everything the tracer observed since the last [`reset`].
    #[derive(Debug, Clone, Default)]
    pub struct TraceReport {
        /// Observed lock-order edges (held at the moment of acquisition).
        pub edges: BTreeSet<Edge>,
        /// Every lock observed acquired.
        pub locks: BTreeSet<String>,
        /// Every condvar observed waited on.
        pub waits: BTreeSet<String>,
        /// Every condvar observed notified.
        pub notifies: BTreeSet<String>,
    }

    impl TraceReport {
        /// Returns human-readable descriptions of everything observed that
        /// the declared skeletons do not admit: unknown locks/condvars, and
        /// lock-order edges outside the transitive closure of the declared
        /// acquisition graph. Empty means observed ⊆ declared.
        pub fn undeclared(&self, skeletons: &[SyncSkeleton]) -> Vec<String> {
            let mut declared_locks = BTreeSet::new();
            let mut declared_cvs = BTreeSet::new();
            let mut declared_edges = BTreeSet::new();
            for sk in skeletons {
                for l in &sk.locks {
                    declared_locks.insert(l.id.to_string());
                }
                for c in &sk.condvars {
                    declared_cvs.insert(c.id.to_string());
                }
                for p in &sk.paths {
                    let mut held: Vec<&str> = Vec::new();
                    for st in &p.steps {
                        match st {
                            super::Step::Acquire(l) => {
                                for h in &held {
                                    declared_edges.insert((h.to_string(), l.to_string()));
                                }
                                held.push(l);
                            }
                            super::Step::Release(l) => {
                                held.retain(|h| h != l);
                            }
                            _ => {}
                        }
                    }
                }
            }
            // Transitive closure of the declared graph: an observed edge
            // a→c is admitted if the declaration admits a path a→…→c
            // (nesting through an intermediate lock is still the declared
            // order, just with an inner guard elided at the call site).
            let nodes: Vec<String> = declared_locks.iter().cloned().collect();
            let idx = |s: &str| nodes.iter().position(|n| n == s);
            let n = nodes.len();
            let mut reach = vec![false; n * n];
            for (a, b) in &declared_edges {
                if let (Some(i), Some(j)) = (idx(a), idx(b)) {
                    reach[i * n + j] = true;
                }
            }
            for k in 0..n {
                for i in 0..n {
                    if reach[i * n + k] {
                        for j in 0..n {
                            if reach[k * n + j] {
                                reach[i * n + j] = true;
                            }
                        }
                    }
                }
            }
            let mut out = Vec::new();
            for l in &self.locks {
                if !declared_locks.contains(l) {
                    out.push(format!("undeclared lock acquired: {l}"));
                }
            }
            for c in self.waits.union(&self.notifies) {
                if !declared_cvs.contains(c) {
                    out.push(format!("undeclared condvar used: {c}"));
                }
            }
            for (a, b) in &self.edges {
                let admitted = match (idx(a), idx(b)) {
                    (Some(i), Some(j)) => reach[i * n + j],
                    _ => false,
                };
                if !admitted {
                    out.push(format!("undeclared lock-order edge: {a} -> {b}"));
                }
            }
            out
        }
    }

    #[cfg(feature = "synctrace")]
    mod imp {
        use super::TraceReport;
        use std::cell::RefCell;
        use std::sync::{Mutex, OnceLock};

        thread_local! {
            static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
        }

        fn store() -> &'static Mutex<TraceReport> {
            static STORE: OnceLock<Mutex<TraceReport>> = OnceLock::new();
            STORE.get_or_init(|| Mutex::new(TraceReport::default()))
        }

        fn with_store(f: impl FnOnce(&mut TraceReport)) {
            let mut g = store().lock().unwrap_or_else(|p| p.into_inner());
            f(&mut g);
        }

        pub fn record_acquire(id: &'static str) {
            HELD.with(|h| {
                let held = h.borrow();
                with_store(|r| {
                    r.locks.insert(id.to_string());
                    for held_id in held.iter() {
                        r.edges.insert((held_id.to_string(), id.to_string()));
                    }
                });
            });
            HELD.with(|h| h.borrow_mut().push(id));
        }

        pub fn record_release(id: &'static str) {
            HELD.with(|h| {
                let mut held = h.borrow_mut();
                if let Some(pos) = held.iter().rposition(|x| *x == id) {
                    held.remove(pos);
                }
            });
        }

        pub fn record_wait(id: &'static str) {
            with_store(|r| {
                r.waits.insert(id.to_string());
            });
        }

        pub fn record_notify(id: &'static str) {
            with_store(|r| {
                r.notifies.insert(id.to_string());
            });
        }

        pub fn reset() {
            with_store(|r| *r = TraceReport::default());
        }

        pub fn capture() -> TraceReport {
            let g = store().lock().unwrap_or_else(|p| p.into_inner());
            g.clone()
        }
    }

    /// RAII record of a traced lock acquisition; dropping it marks the
    /// lock released in the thread-local held stack. Construct one
    /// immediately after taking the corresponding `MutexGuard` and bind it
    /// for the guard's full scope.
    #[must_use = "binds the traced hold; dropping immediately records a zero-length hold"]
    pub struct HeldToken {
        #[cfg(feature = "synctrace")]
        id: &'static str,
    }

    impl Drop for HeldToken {
        fn drop(&mut self) {
            #[cfg(feature = "synctrace")]
            imp::record_release(self.id);
        }
    }

    /// Records an acquisition of `id`, with edges from every lock the
    /// current thread already holds. No-op without `synctrace`.
    pub fn lock_acquired(id: &'static str) -> HeldToken {
        #[cfg(feature = "synctrace")]
        {
            imp::record_acquire(id);
            HeldToken { id }
        }
        #[cfg(not(feature = "synctrace"))]
        {
            let _ = id;
            HeldToken {}
        }
    }

    /// Records a wait on condvar `id`. No-op without `synctrace`.
    pub fn wait_event(id: &'static str) {
        #[cfg(feature = "synctrace")]
        imp::record_wait(id);
        #[cfg(not(feature = "synctrace"))]
        let _ = id;
    }

    /// Records a notify of condvar `id`. No-op without `synctrace`.
    pub fn notify_event(id: &'static str) {
        #[cfg(feature = "synctrace")]
        imp::record_notify(id);
        #[cfg(not(feature = "synctrace"))]
        let _ = id;
    }

    /// Clears the global trace store. No-op without `synctrace`.
    pub fn reset() {
        #[cfg(feature = "synctrace")]
        imp::reset();
    }

    /// Snapshots the global trace store. Always empty without `synctrace`.
    pub fn capture() -> TraceReport {
        #[cfg(feature = "synctrace")]
        {
            imp::capture()
        }
        #[cfg(not(feature = "synctrace"))]
        {
            TraceReport::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_skeleton_is_well_formed() {
        let sk = pool_skeleton();
        assert_eq!(sk.name, "tensor.pool");
        for cv in &sk.condvars {
            assert!(
                sk.has_lock(cv.lock),
                "condvar {} guards unknown lock",
                cv.id
            );
        }
        for p in &sk.paths {
            let mut held: Vec<&str> = Vec::new();
            for st in &p.steps {
                match st {
                    Step::Acquire(l) => {
                        assert!(sk.has_lock(l), "{}: unknown lock {l}", p.id);
                        held.push(l);
                    }
                    Step::Release(l) => {
                        assert!(held.contains(l), "{}: release of unheld {l}", p.id);
                        held.retain(|h| h != l);
                    }
                    Step::Wait(cv) => {
                        let c = sk.condvar(cv).expect("declared condvar");
                        assert!(held.contains(&c.lock), "{}: wait without guard", p.id);
                    }
                    _ => {}
                }
            }
            assert!(held.is_empty(), "{}: leaks a guard", p.id);
        }
    }

    #[test]
    fn synthetic_trace_subset_check_works() {
        let sk = pool_skeleton();
        let mut report = trace::TraceReport::default();
        report.locks.insert("pool.submit".into());
        report.locks.insert("pool.slot".into());
        report
            .edges
            .insert(("pool.submit".into(), "pool.slot".into()));
        assert!(report.undeclared(std::slice::from_ref(&sk)).is_empty());

        // Inverted edge is not admitted.
        report
            .edges
            .insert(("pool.slot".into(), "pool.submit".into()));
        let bad = report.undeclared(std::slice::from_ref(&sk));
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("pool.slot -> pool.submit"));
    }
}
