//! Micro-benchmarks of the NN kernels (the inner loops every table/figure
//! workload exercises): conv forward / input-gradient / weight-gradient,
//! the functional PE-array model, and the embedded-NN forward + VJP.
//!
//! ```sh
//! cargo bench -p enode-bench --bench kernels
//! ```

use enode_bench::micro::Micro;
use enode_hw::pe::{Direction, PeArray};
use enode_tensor::conv::Conv2d;
use enode_tensor::dense::Dense;
use enode_tensor::init;
use enode_tensor::network::{Network, Op};
use enode_tensor::Tensor;
use std::hint::black_box;

fn conv_kernels(m: &Micro) {
    let conv = Conv2d::new_seeded(8, 8, 3, 1);
    let x = init::uniform(&[1, 8, 16, 16], -1.0, 1.0, 2);
    let dy = init::uniform(&[1, 8, 16, 16], -1.0, 1.0, 3);
    m.bench("conv2d_forward_8c_16x16", || conv.forward(black_box(&x)));
    m.bench("conv2d_backward_input_8c_16x16", || {
        conv.backward_input(black_box(&dy))
    });
    m.bench("conv2d_backward_params_8c_16x16", || {
        conv.backward_params(black_box(&x), black_box(&dy))
    });
}

fn pe_array(m: &Micro) {
    let conv = Conv2d::new_seeded(8, 8, 3, 4);
    let conv = Conv2d::from_parts(conv.weight().clone(), Tensor::zeros(&[8]));
    let array = PeArray::load(&conv);
    let x = init::uniform(&[1, 8, 16, 16], -1.0, 1.0, 5);
    m.bench("pe_array_forward_8c_16x16", || {
        array.run(black_box(&x), Direction::Forward)
    });
    m.bench("pe_array_backward_8c_16x16", || {
        array.run(black_box(&x), Direction::Backward)
    });
}

fn embedded_network(m: &Micro) {
    let f = Network::new(vec![
        Op::ConcatTime,
        Op::dense(Dense::new_seeded(13, 32, 6)),
        Op::tanh(),
        Op::dense(Dense::new_seeded(32, 12, 7)),
    ]);
    let h = init::uniform(&[8, 12], -1.0, 1.0, 8);
    m.bench("embedded_nn_eval_3body", || f.eval(0.5, black_box(&h)));
    m.bench("embedded_nn_vjp_3body", || {
        let (y, caches) = f.forward_at(0.5, black_box(&h));
        f.backward(&caches, &y)
    });
}

fn main() {
    let m = Micro::default();
    conv_kernels(&m);
    pe_array(&m);
    embedded_network(&m);
}
