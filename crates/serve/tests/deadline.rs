//! Deadline semantics: expired work is shed before it ever reaches the
//! solver, thin slack degrades instead of missing, and the metrics
//! counters reconcile with the submitted count exactly.

use enode_node::inference::NodeSolveOptions;
use enode_node::model::NodeModel;
use enode_serve::{Clock, Priority, Rejected, Request, ServeConfig, Server, ToleranceClass};
use enode_tensor::init;

fn server(clock: Clock) -> Server {
    let mut cfg = ServeConfig::edge_default();
    cfg.workers = 1;
    Server::new(
        NodeModel::dynamic_system(2, 8, 1, 42),
        NodeSolveOptions::new(1e-4),
        cfg,
        clock,
    )
}

fn req(seed: u64, deadline_us: u64) -> Request {
    Request {
        input: init::uniform(&[1, 2], -1.0, 1.0, seed),
        deadline_us,
        tolerance_class: ToleranceClass::Standard,
        priority: Priority::Normal,
    }
}

#[test]
fn expired_request_is_shed_before_dispatch() {
    let clock = Clock::virtual_at(0);
    let s = server(clock.clone());
    let t = s.submit(req(1, 5_000)).unwrap();
    // The deadline passes while the request is still queued.
    clock.set_us(10_000);
    s.drain();
    match t.wait() {
        Err(Rejected::DeadlineExpired {
            deadline_us,
            now_us,
        }) => {
            assert_eq!(deadline_us, 5_000);
            assert!(now_us >= 10_000);
        }
        other => panic!("expected DeadlineExpired, got {other:?}"),
    }
    let snap = s.snapshot();
    assert_eq!(snap.shed, 1);
    assert_eq!(
        snap.batches, 0,
        "a shed request must never reach the solver"
    );
    assert_eq!(snap.completed, 0);
}

#[test]
fn nearly_expired_request_degrades_but_completes() {
    let clock = Clock::virtual_at(0);
    let s = server(clock);
    // edge_default tier 0 wants >= 20ms of slack; offer only 3ms.
    let t = s.submit(req(2, 3_000)).unwrap();
    s.drain();
    let resp = t.wait().expect("thin slack must degrade, not miss");
    assert!(resp.tier > 0, "expected a degraded tier, got tier 0");
    let snap = s.snapshot();
    assert_eq!(snap.completed, 1);
    assert_eq!(snap.degraded, 1);
    assert_eq!(snap.shed, 0);
}

#[test]
fn slack_bands_map_to_the_configured_ladder() {
    let clock = Clock::virtual_at(0);
    let s = server(clock);
    // Slack per tier in edge_default: >=20ms -> 0, >=8ms -> 1, else 2.
    let full = s.submit(req(3, 500_000)).unwrap();
    let mid = s.submit(req(4, 10_000)).unwrap();
    let thin = s.submit(req(5, 1_000)).unwrap();
    s.drain();
    assert_eq!(full.wait().unwrap().tier, 0);
    assert_eq!(mid.wait().unwrap().tier, 1);
    assert_eq!(thin.wait().unwrap().tier, 2);
    assert_eq!(s.snapshot().degraded, 2);
}

#[test]
fn counters_reconcile_exactly_with_submissions() {
    let clock = Clock::virtual_at(0);
    let mut s = server(clock.clone());
    // 4 completed (2 of them degraded), 2 shed, 1 cancelled at shutdown.
    let mut tickets = Vec::new();
    for i in 0..2 {
        tickets.push(s.submit(req(10 + i, 1_000_000)).unwrap()); // tier 0
    }
    for i in 0..2 {
        tickets.push(s.submit(req(20 + i, 15_000)).unwrap()); // tier 1
    }
    for i in 0..2 {
        tickets.push(s.submit(req(30 + i, 2_000)).unwrap()); // will expire
    }
    clock.set_us(5_000); // expire the 2ms-deadline pair
    s.drain();
    let late = s.submit(req(40, 1_000_000)).unwrap();
    s.shutdown(); // sweeps the late request as cancelled

    let mut completed = 0;
    let mut shed = 0;
    for t in tickets {
        match t.wait() {
            Ok(_) => completed += 1,
            Err(Rejected::DeadlineExpired { .. }) => shed += 1,
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    assert_eq!(late.wait(), Err(Rejected::ShuttingDown));
    assert_eq!(completed, 4);
    assert_eq!(shed, 2);

    let snap = s.snapshot();
    assert_eq!(snap.submitted, 7);
    assert_eq!(snap.completed, 4);
    assert_eq!(snap.degraded, 2);
    assert_eq!(snap.shed, 2);
    assert_eq!(snap.cancelled, 1);
    assert_eq!(snap.failed, 0);
    assert!(
        snap.reconciles(),
        "submitted != completed + shed + failed + cancelled"
    );
}

#[test]
fn queue_full_backpressure_is_not_counted_as_submitted() {
    let clock = Clock::virtual_at(0);
    let mut cfg = ServeConfig::edge_default();
    cfg.queue_capacity = 1;
    cfg.workers = 0; // pump mode: keep the queue full deterministically
    let s = Server::new(
        NodeModel::dynamic_system(2, 8, 1, 42),
        NodeSolveOptions::new(1e-4),
        cfg,
        clock,
    );
    let _held = s.submit(req(50, 1_000_000)).unwrap();
    assert!(matches!(
        s.submit(req(51, 1_000_000)),
        Err(Rejected::QueueFull { capacity: 1 })
    ));
    let snap = s.snapshot();
    assert_eq!(snap.submitted, 1);
    assert_eq!(snap.rejected_full, 1);
}
