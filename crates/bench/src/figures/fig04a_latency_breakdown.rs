//! Fig 4(a): runtime breakdown of a training iteration — the iterative
//! stepsize search dominates (87% on the paper's A100 profile).

use crate::driver::{conventional_opts, run_bench, Bench};
use crate::report;

/// Profiles a CIFAR-like training iteration under the conventional search.
pub fn run() {
    report::banner(
        "Fig 4a",
        "training-iteration latency breakdown (CIFAR-like)",
    );
    let bench = Bench::CifarLike;
    // The profiled setup restarts the search from C each point (§II-B's
    // constant-init option) — the regime where search dominates.
    let mut opts = conventional_opts(bench);
    opts.default_dt = 0.5; // deliberately coarse C: every point searches
    let r = run_bench(bench, &opts, 2, 11);
    let p = &r.profile;

    let total = p.total_latency_units();
    let search = p.search_latency_units();
    let fwd_other = p.forward_latency_units() - search;
    let bwd = p.backward_latency_units();

    report::header(&["component", "units", "share"]);
    report::row(&[
        "fwd: stepsize search",
        &report::f(search),
        &format!("{:.0}%", 100.0 * search / total),
    ]);
    report::row(&[
        "fwd: integration",
        &report::f(fwd_other),
        &format!("{:.0}%", 100.0 * fwd_other / total),
    ]);
    report::row(&[
        "backward pass",
        &report::f(bwd),
        &format!("{:.0}%", 100.0 * bwd / total),
    ]);
    println!();
    println!("paper: stepsize search = 87% of training latency (A100, eps=1e-6)");
    println!(
        "ours : stepsize search = {:.0}% (trials/point = {:.2})",
        100.0 * search / total,
        p.forward.trials as f64 / p.forward.points.max(1) as f64
    );
}
