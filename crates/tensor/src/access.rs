//! Affine access summaries: the symbolic interface between the parallel
//! kernels and the static prover in `enode-analysis`.
//!
//! Every `parallel_for_disjoint*` call site in this crate registers a
//! [`KernelAccessSummary`] (constructed by a `*_access` function placed
//! beside the kernel) describing, **per item**, which elements of each
//! named region the kernel reads and writes, as a strided interval
//! expression: item `t` of an access `(offset, stride_per_item,
//! elem_stride, count)` touches
//!
//! ```text
//! { offset + t·stride_per_item + j·elem_stride : 0 ≤ j < count }
//! ```
//!
//! The parallel layer always assigns each lane a *contiguous* item range
//! (the balanced [`item_chunk`] decomposition, for every pool width,
//! grain, and schedule), so per-lane read/write sets are unions of
//! per-item sets over disjoint item ranges. That reduction is what lets
//! the prover in `enode-analysis::affine` discharge disjointness and
//! coverage obligations once, symbolically, for the *entire* (thread
//! count × grain × lane index) envelope instead of one executed schedule
//! at a time — the static counterpart of the runtime shadow-memory
//! sanitizer.
//!
//! Scratch checkouts are summarized too ([`ScratchDecl`]): the prover
//! verifies they never alias live outputs.

/// Whether an access reads or writes its region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// The kernel only loads from the region during the parallel phase.
    Read,
    /// The kernel stores to the region (lane-exclusive by contract).
    Write,
}

/// One per-item strided access to a named region.
///
/// Item `t` touches `{ offset + t·stride_per_item + j·elem_stride :
/// 0 ≤ j < count }` (element indices into the region). A broadcast
/// access shared by every item uses `stride_per_item == 0`.
#[derive(Clone, Copy, Debug)]
pub struct StridedAccess {
    /// Name of the [`RegionDecl`] this access touches.
    pub region: &'static str,
    /// Read or write.
    pub kind: AccessKind,
    /// Element index of item 0's first element.
    pub offset: usize,
    /// Elements between consecutive items' first elements.
    pub stride_per_item: usize,
    /// Elements between consecutive touched elements within one item.
    pub elem_stride: usize,
    /// Elements touched per item.
    pub count: usize,
}

impl StridedAccess {
    /// The common dense decomposition: item `t` owns the contiguous
    /// stride `[t·stride, (t+1)·stride)`.
    pub fn contiguous(region: &'static str, kind: AccessKind, stride: usize) -> Self {
        StridedAccess {
            region,
            kind,
            offset: 0,
            stride_per_item: stride,
            elem_stride: 1,
            count: stride,
        }
    }

    /// A read of the same `count` elements by every item (shared
    /// read-only input, e.g. resident weights).
    pub fn broadcast_read(region: &'static str, count: usize) -> Self {
        StridedAccess {
            region,
            kind: AccessKind::Read,
            offset: 0,
            stride_per_item: 0,
            elem_stride: 1,
            count,
        }
    }
}

/// A named buffer the kernel touches during its parallel phase.
#[derive(Clone, Copy, Debug)]
pub struct RegionDecl {
    /// Region name, unique within the summary.
    pub name: &'static str,
    /// Element count.
    pub elems: usize,
    /// Bytes per element.
    pub elem_bytes: usize,
    /// `true` for buffers that outlive the kernel (outputs); `false`
    /// for read-only inputs and per-call partial buffers.
    pub live_output: bool,
    /// Elements deliberately left unwritten (e.g. padding). A nonzero
    /// declaration downgrades an exact-coverage failure to the
    /// intentional-slack warning, and must match the uncovered count.
    pub slack_elems: usize,
}

impl RegionDecl {
    /// A live output region expected to be covered exactly.
    pub fn output(name: &'static str, elems: usize) -> Self {
        RegionDecl {
            name,
            elems,
            elem_bytes: 4,
            live_output: true,
            slack_elems: 0,
        }
    }

    /// A read-only input region (no coverage obligation).
    pub fn input(name: &'static str, elems: usize) -> Self {
        RegionDecl {
            name,
            elems,
            elem_bytes: 4,
            live_output: false,
            slack_elems: 0,
        }
    }

    /// A per-call partial buffer: written by the split, reduced serially
    /// after the join, not live past the kernel. Coverage obligations
    /// still apply (a gap would leave stale partials in the fold).
    pub fn partials(name: &'static str, elems: usize) -> Self {
        RegionDecl {
            name,
            elems,
            elem_bytes: 4,
            live_output: false,
            slack_elems: 0,
        }
    }
}

/// Where a scratch checkout's backing memory comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScratchSource {
    /// `with_scratch_f32`: a thread-local arena, disjoint from every
    /// kernel region by construction.
    ThreadLocalArena,
    /// Scratch carved out of a declared region at an element offset —
    /// legal only if the carved range never intersects lane writes.
    SubsliceOf {
        /// The region the scratch is carved from.
        region: &'static str,
        /// Element offset of the carved range within that region.
        offset_elems: usize,
    },
}

/// One scratch arena the kernel checks out for its parallel phase.
#[derive(Clone, Copy, Debug)]
pub struct ScratchDecl {
    /// Scratch name (for diagnostics).
    pub name: &'static str,
    /// f32 element count per checkout.
    pub elems: usize,
    /// Backing memory.
    pub source: ScratchSource,
}

impl ScratchDecl {
    /// A `with_scratch_f32` checkout.
    pub fn arena(name: &'static str, elems: usize) -> Self {
        ScratchDecl {
            name,
            elems,
            source: ScratchSource::ThreadLocalArena,
        }
    }
}

/// The affine access summary of one registered kernel split: the shape
/// of its item decomposition plus every per-item region access.
#[derive(Clone, Debug)]
pub struct KernelAccessSummary {
    /// Kernel label, matching the `parallelcheck` registry (e.g.
    /// `"conv2d.forward (batch split)"`).
    pub kernel: &'static str,
    /// Number of independent items the kernel splits.
    pub items: usize,
    /// Grain passed to the parallel layer (minimum items per chunk).
    pub grain: usize,
    /// Approximate scalar operations per item (drives the roofline).
    pub flops_per_item: usize,
    /// Every region the parallel phase touches.
    pub regions: Vec<RegionDecl>,
    /// Every per-item access.
    pub accesses: Vec<StridedAccess>,
    /// Every scratch checkout.
    pub scratch: Vec<ScratchDecl>,
}

impl KernelAccessSummary {
    /// A coarse one-slot-per-item fan-out (batched solves, bench jobs):
    /// each item writes its own `elem_bytes`-sized result slot.
    pub fn coarse_fanout(
        kernel: &'static str,
        items: usize,
        flops_per_item: usize,
        elem_bytes: usize,
    ) -> Self {
        KernelAccessSummary {
            kernel,
            items,
            grain: 1,
            flops_per_item,
            regions: vec![RegionDecl {
                name: "data",
                elems: items,
                elem_bytes,
                live_output: true,
                slack_elems: 0,
            }],
            accesses: vec![StridedAccess {
                region: "data",
                kind: AccessKind::Write,
                offset: 0,
                stride_per_item: 1,
                elem_stride: 1,
                count: 1,
            }],
            scratch: Vec::new(),
        }
    }

    /// The region declaration named `name`, if any.
    pub fn region(&self, name: &str) -> Option<&RegionDecl> {
        self.regions.iter().find(|r| r.name == name)
    }
}

/// The balanced contiguous item range lane `lane` of `ways` receives
/// over `items` items — the exact decomposition every
/// `parallel_for_disjoint*` broadcast uses (earlier lanes absorb the
/// remainder). Exposed so the prover's brute-force soundness checks can
/// materialize real lane sets without running a kernel.
pub fn item_chunk(items: usize, ways: usize, lane: usize) -> (usize, usize) {
    assert!(ways >= 1 && lane < ways, "lane {lane} of {ways} ways");
    let base = items / ways;
    let rem = items % ways;
    let start = lane * base + lane.min(rem);
    let len = base + usize::from(lane < rem);
    (start, start + len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel;

    #[test]
    fn item_chunks_partition_for_every_way_count() {
        for items in 0..40usize {
            for ways in 1..12usize {
                let mut next = 0;
                for lane in 0..ways {
                    let (lo, hi) = item_chunk(items, ways, lane);
                    assert_eq!(lo, next, "items={items} ways={ways} lane={lane}");
                    assert!(hi >= lo);
                    // Balanced: lane sizes differ by at most one.
                    assert!(hi - lo <= items / ways + 1);
                    next = hi;
                }
                assert_eq!(next, items, "chunks must cover [0, items)");
            }
        }
    }

    #[test]
    fn item_chunk_matches_the_live_parallel_decomposition() {
        // Drive a real disjoint split and record which item range each
        // chunk received; it must be exactly `item_chunk`'s answer.
        for &threads in &[1usize, 2, 4, 7] {
            parallel::with_threads(threads, || {
                let items = 11usize;
                let mut buf = vec![0.0f32; items];
                let observed = std::sync::Mutex::new(Vec::new());
                parallel::parallel_for_disjoint(&mut buf, items, 1, |range, _| {
                    observed.lock().unwrap().push((range.start, range.end));
                });
                let mut got = observed.into_inner().unwrap();
                got.sort_unstable();
                let ways = got.len();
                let want: Vec<_> = (0..ways).map(|l| item_chunk(items, ways, l)).collect();
                assert_eq!(got, want, "threads={threads}");
            });
        }
    }

    #[test]
    fn coarse_fanout_is_one_slot_per_item() {
        let s = KernelAccessSummary::coarse_fanout("k", 5, 1 << 20, 64);
        assert_eq!(s.items, 5);
        assert_eq!(s.regions[0].elems, 5);
        assert_eq!(s.accesses[0].count, 1);
        assert_eq!(s.accesses[0].stride_per_item, 1);
        assert!(s.region("data").is_some());
        assert!(s.region("nope").is_none());
    }
}
