//! Regenerates the paper's fig04b experiment. See the module docs in
//! `enode_bench::figures::fig04b_memory_profile`.

fn main() {
    enode_bench::figures::fig04b_memory_profile::run();
}
