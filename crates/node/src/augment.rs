//! Augmented Neural ODEs (ANODE, Dupont et al. — the paper's reference
//! \[7\]): the ODE state is padded with extra zero-initialized dimensions,
//! giving the flow room to avoid the topology constraints of plain NODEs.
//!
//! Augmentation happens at the model input (zeros appended as channels for
//! rank-4 states, features for rank-2); the prediction projects back onto
//! the original dimensions. The adjoint of the projection pads the
//! gradient with zeros; the adjoint of the augmentation slices them off.

use enode_tensor::Tensor;

/// Appends `extra` zero channels (rank 4) or features (rank 2).
///
/// # Panics
///
/// Panics for other ranks.
pub fn augment(x: &Tensor, extra: usize) -> Tensor {
    if extra == 0 {
        return x.clone();
    }
    match x.shape().len() {
        4 => {
            let (n, c, h, w) = x.shape_obj().nchw();
            let mut y = Tensor::zeros(&[n, c + extra, h, w]);
            for ni in 0..n {
                for ci in 0..c {
                    for hi in 0..h {
                        for wi in 0..w {
                            *y.at4_mut(ni, ci, hi, wi) = x.at4(ni, ci, hi, wi);
                        }
                    }
                }
            }
            y
        }
        2 => {
            let (n, d) = (x.shape()[0], x.shape()[1]);
            let mut y = Tensor::zeros(&[n, d + extra]);
            for ni in 0..n {
                for di in 0..d {
                    y.data_mut()[ni * (d + extra) + di] = x.data()[ni * d + di];
                }
            }
            y
        }
        r => panic!("augmentation supports rank 2 or 4 states, got rank {r}"),
    }
}

/// Keeps the first `keep` channels/features, dropping the augmented ones.
///
/// # Panics
///
/// Panics if `keep` exceeds the state's channel/feature extent.
pub fn project(y: &Tensor, keep: usize) -> Tensor {
    match y.shape().len() {
        4 => {
            let (n, c, h, w) = y.shape_obj().nchw();
            assert!(keep <= c, "cannot keep {keep} of {c} channels");
            if keep == c {
                return y.clone();
            }
            let mut out = Tensor::zeros(&[n, keep, h, w]);
            for ni in 0..n {
                for ci in 0..keep {
                    for hi in 0..h {
                        for wi in 0..w {
                            *out.at4_mut(ni, ci, hi, wi) = y.at4(ni, ci, hi, wi);
                        }
                    }
                }
            }
            out
        }
        2 => {
            let (n, d) = (y.shape()[0], y.shape()[1]);
            assert!(keep <= d, "cannot keep {keep} of {d} features");
            if keep == d {
                return y.clone();
            }
            let mut out = Tensor::zeros(&[n, keep]);
            for ni in 0..n {
                for di in 0..keep {
                    out.data_mut()[ni * keep + di] = y.data()[ni * d + di];
                }
            }
            out
        }
        r => panic!("augmentation supports rank 2 or 4 states, got rank {r}"),
    }
}

/// Adjoint of [`project`]: pads a gradient over the kept dimensions back
/// to the augmented extent with zeros (the augmented dims received no
/// loss signal from the projection).
pub fn project_adjoint(grad: &Tensor, extra: usize) -> Tensor {
    augment(grad, extra)
}

/// Adjoint of [`augment`]: slices a gradient over the augmented state down
/// to the original dimensions.
pub fn augment_adjoint(grad: &Tensor, keep: usize) -> Tensor {
    project(grad, keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use enode_tensor::init;

    #[test]
    fn augment_then_project_is_identity() {
        for dims in [vec![3usize, 4], vec![2, 3, 4, 4]] {
            let x = init::uniform(&dims, -1.0, 1.0, 1);
            let keep = dims[1];
            let padded = augment(&x, 5);
            assert_eq!(padded.shape()[1], keep + 5);
            let back = project(&padded, keep);
            assert_eq!(back.data(), x.data());
        }
    }

    #[test]
    fn augmented_dims_are_zero() {
        let x = init::uniform(&[2, 3], -1.0, 1.0, 2);
        let padded = augment(&x, 2);
        for ni in 0..2 {
            assert_eq!(padded.data()[ni * 5 + 3], 0.0);
            assert_eq!(padded.data()[ni * 5 + 4], 0.0);
        }
    }

    #[test]
    fn adjoint_identity_holds() {
        // <project(y), g> == <y, project_adjoint(g)>.
        let y = init::uniform(&[2, 6], -1.0, 1.0, 3);
        let g = init::uniform(&[2, 4], -1.0, 1.0, 4);
        let lhs = project(&y, 4).dot(&g);
        let rhs = y.dot(&project_adjoint(&g, 2));
        assert!((lhs - rhs).abs() < 1e-5);
        // <augment(x), h> == <x, augment_adjoint(h)>.
        let x = init::uniform(&[2, 4], -1.0, 1.0, 5);
        let h = init::uniform(&[2, 6], -1.0, 1.0, 6);
        let lhs = augment(&x, 2).dot(&h);
        let rhs = x.dot(&augment_adjoint(&h, 4));
        assert!((lhs - rhs).abs() < 1e-5);
    }

    #[test]
    fn zero_extra_is_noop() {
        let x = init::uniform(&[1, 2, 3, 3], -1.0, 1.0, 7);
        assert_eq!(augment(&x, 0).data(), x.data());
    }

    #[test]
    #[should_panic(expected = "cannot keep")]
    fn overproject_rejected() {
        let x = init::uniform(&[1, 2], -1.0, 1.0, 8);
        let _ = project(&x, 5);
    }
}
