//! Serving-policy lints (`E070`–`E072`, `W070`–`W071`): static
//! feasibility checks over [`enode_serve::ServeConfig`] deployments.
//!
//! A serving policy couples runtime knobs (queue bound, batch window,
//! degradation ladder) with a *design envelope* (offered load, worst-case
//! service estimate, tightest admitted deadline). The runtime enforces
//! none of the envelope — it just sheds what misses — so an infeasible
//! policy fails silently in production as a high shed rate. These lints
//! prove the arithmetic before anything runs:
//!
//! * **E070** — a worst-case request admitted at the tightest deadline
//!   must survive `batch_window + est_service`; otherwise the batcher
//!   itself guarantees deadline misses.
//! * **E071** — a request admitted at the back of a *full* queue waits
//!   `ceil(capacity / max_batch) · est_service` before dispatch; if that
//!   alone reaches the tightest deadline, admission control is admitting
//!   work the policy can only shed.
//! * **E072** — the degradation ladder must be ordered cheapest-last:
//!   tier 0 at full quality, every later tier strictly coarser and with
//!   a trial budget no larger than its predecessor's. A mis-ordered
//!   ladder makes "degrade" mean "pay more".
//! * **W070** — the declared design load exceeds the policy's peak
//!   service rate `max_batch / est_service`; shedding becomes the steady
//!   state rather than an overload response.
//! * **W071** — a tier whose slack threshold is not strictly below its
//!   predecessor's can never be selected, and a last tier with a nonzero
//!   threshold leaves the thinnest-slack requests relying on the
//!   fall-through default rather than a designed tier.

use crate::diag::{Code, Diagnostic, Diagnostics};
use enode_serve::ServeConfig;

/// Lints one serving policy against its own design envelope.
pub fn lint_config(policy: &ServeConfig) -> Diagnostics {
    let mut ds = Diagnostics::new();
    let subject = format!("serve policy {}", policy.name);

    // E072 / W071: ladder integrity first — an empty or mis-ordered
    // ladder makes the deadline arithmetic below moot.
    if policy.tiers.is_empty() {
        ds.push(Diagnostic::new(
            Code::E072ServeTierOrdering,
            &subject,
            "degradation ladder is empty: no tier can serve any request",
        ));
        return ds;
    }
    let t0 = &policy.tiers[0];
    if t0.tolerance_scale != 1.0 {
        ds.push(
            Diagnostic::new(
                Code::E072ServeTierOrdering,
                &subject,
                format!(
                    "tier 0 scales the tolerance by {} — the top tier must serve \
                     at the request's own accuracy (scale 1.0)",
                    t0.tolerance_scale
                ),
            )
            .with_note("tier0_tolerance_scale", t0.tolerance_scale),
        );
    }
    for (i, pair) in policy.tiers.windows(2).enumerate() {
        let (prev, next) = (&pair[0], &pair[1]);
        if next.tolerance_scale <= prev.tolerance_scale || next.max_trials > prev.max_trials {
            ds.push(
                Diagnostic::new(
                    Code::E072ServeTierOrdering,
                    &subject,
                    format!(
                        "tier {} is not strictly cheaper than tier {i}: degrading \
                         must coarsen the tolerance and never raise the trial budget",
                        i + 1
                    ),
                )
                .with_note("prev_tolerance_scale", prev.tolerance_scale)
                .with_note("next_tolerance_scale", next.tolerance_scale)
                .with_note("prev_max_trials", prev.max_trials)
                .with_note("next_max_trials", next.max_trials),
            );
        }
        if next.min_slack_us >= prev.min_slack_us {
            ds.push(
                Diagnostic::new(
                    Code::W071ServeUnreachableTier,
                    &subject,
                    format!(
                        "tier {} is unreachable: its slack threshold ({}µs) is not \
                         strictly below tier {i}'s ({}µs), so selection always stops earlier",
                        i + 1,
                        next.min_slack_us,
                        prev.min_slack_us
                    ),
                )
                .with_note("tier", i + 1)
                .with_note("min_slack_us", next.min_slack_us),
            );
        }
    }
    if let Some(last) = policy.tiers.last() {
        if last.min_slack_us > 0 {
            ds.push(
                Diagnostic::new(
                    Code::W071ServeUnreachableTier,
                    &subject,
                    format!(
                        "the cheapest tier still demands {}µs of slack: requests below \
                         it are served only by the fall-through default, not a designed tier",
                        last.min_slack_us
                    ),
                )
                .with_note("last_tier_min_slack_us", last.min_slack_us),
            );
        }
    }

    // E070: the batcher may hold a request for the full window before the
    // worst-case service even starts.
    let worst_path_us = policy.batch_window_us.saturating_add(policy.est_service_us);
    if worst_path_us > policy.min_deadline_us {
        ds.push(
            Diagnostic::new(
                Code::E070ServeWindowDeadline,
                &subject,
                format!(
                    "batch window {}µs + worst-case service {}µs = {}µs exceeds the \
                     tightest admitted deadline {}µs: a worst-case request is shed by design",
                    policy.batch_window_us,
                    policy.est_service_us,
                    worst_path_us,
                    policy.min_deadline_us
                ),
            )
            .with_note("batch_window_us", policy.batch_window_us)
            .with_note("est_service_us", policy.est_service_us)
            .with_note("min_deadline_us", policy.min_deadline_us),
        );
    }

    // E071: tail wait of a full queue. A request admitted into the last
    // slot sits behind ceil(capacity / max_batch) batch services.
    if policy.max_batch > 0 {
        let backlog_batches = policy.queue_capacity.div_ceil(policy.max_batch) as u64;
        let tail_wait_us = backlog_batches.saturating_mul(policy.est_service_us);
        if tail_wait_us >= policy.min_deadline_us {
            ds.push(
                Diagnostic::new(
                    Code::E071ServeQueueStarvation,
                    &subject,
                    format!(
                        "a full queue ({} requests, {} batches) takes {}µs to drain, \
                         at or beyond the tightest deadline {}µs: the tail of the queue \
                         is admitted only to be shed — shrink the queue or the service time",
                        policy.queue_capacity,
                        backlog_batches,
                        tail_wait_us,
                        policy.min_deadline_us
                    ),
                )
                .with_note("queue_capacity", policy.queue_capacity)
                .with_note("backlog_batches", backlog_batches)
                .with_note("tail_wait_us", tail_wait_us)
                .with_note("min_deadline_us", policy.min_deadline_us),
            );
        }
    }

    // W070: sustained offered load vs peak service rate.
    if policy.est_service_us > 0 && policy.design_rate_rps > 0.0 {
        let capacity_rps = policy.max_batch as f64 * 1.0e6 / policy.est_service_us as f64;
        if policy.design_rate_rps > capacity_rps {
            ds.push(
                Diagnostic::new(
                    Code::W070ServeDesignOverload,
                    &subject,
                    format!(
                        "design load {:.1} req/s exceeds the peak service rate {:.1} req/s \
                         (batch {} every {}µs): shedding is the steady state at the declared load",
                        policy.design_rate_rps,
                        capacity_rps,
                        policy.max_batch,
                        policy.est_service_us
                    ),
                )
                .with_note("design_rate_rps", policy.design_rate_rps)
                .with_note("capacity_rps", format!("{capacity_rps:.1}")),
            );
        }
    }

    ds
}

/// Lints every policy the repository ships
/// ([`enode_serve::ServeConfig::shipped`]); all must be clean.
pub fn lint_shipped_policies() -> Diagnostics {
    let mut ds = Diagnostics::new();
    for policy in ServeConfig::shipped() {
        ds.extend(lint_config(&policy));
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use enode_node::inference::TableauKind;
    use enode_serve::TierSpec;

    fn clean() -> ServeConfig {
        ServeConfig::edge_default()
    }

    #[test]
    fn shipped_policies_are_clean() {
        let ds = lint_shipped_policies();
        assert!(ds.is_empty(), "shipped policies must lint clean:\n{ds}");
    }

    #[test]
    fn window_deadline_infeasibility_fires_e070() {
        let mut p = clean();
        p.batch_window_us = 40_000; // window + 15ms service > 50ms deadline
        let ds = lint_config(&p);
        assert!(ds.has_code(Code::E070ServeWindowDeadline), "{ds}");
        assert_eq!(ds.error_count(), 1);
    }

    #[test]
    fn full_queue_tail_starvation_fires_e071() {
        let mut p = clean();
        p.queue_capacity = 64; // 8 batches x 15ms = 120ms >= 50ms deadline
        let ds = lint_config(&p);
        assert!(ds.has_code(Code::E071ServeQueueStarvation), "{ds}");
        assert_eq!(ds.error_count(), 1);
    }

    #[test]
    fn misordered_ladder_fires_e072() {
        // A "degraded" tier that tightens the tolerance.
        let mut p = clean();
        p.tiers[1].tolerance_scale = 0.5;
        let ds = lint_config(&p);
        assert!(ds.has_code(Code::E072ServeTierOrdering), "{ds}");

        // A degraded tier that raises the trial budget.
        let mut p = clean();
        p.tiers[2].max_trials = 128;
        let ds = lint_config(&p);
        assert!(ds.has_code(Code::E072ServeTierOrdering), "{ds}");

        // Tier 0 not at full quality.
        let mut p = clean();
        p.tiers[0].tolerance_scale = 4.0;
        let ds = lint_config(&p);
        assert!(ds.has_code(Code::E072ServeTierOrdering), "{ds}");
    }

    #[test]
    fn empty_ladder_is_e072() {
        let mut p = clean();
        p.tiers.clear();
        let ds = lint_config(&p);
        assert!(ds.has_code(Code::E072ServeTierOrdering), "{ds}");
        assert_eq!(ds.len(), 1, "empty ladder short-circuits further checks");
    }

    #[test]
    fn design_overload_fires_w070_as_warning() {
        let mut p = clean();
        p.design_rate_rps = 10_000.0; // capacity is ~533 req/s
        let ds = lint_config(&p);
        assert!(ds.has_code(Code::W070ServeDesignOverload), "{ds}");
        assert_eq!(ds.error_count(), 0, "W070 must not fail the run");
        assert_eq!(ds.warning_count(), 1);
    }

    #[test]
    fn unreachable_tier_and_uncovered_band_fire_w071() {
        // Tier 2's threshold not strictly below tier 1's -> unreachable.
        let mut p = clean();
        p.tiers[2].min_slack_us = p.tiers[1].min_slack_us;
        let ds = lint_config(&p);
        assert!(ds.has_code(Code::W071ServeUnreachableTier), "{ds}");

        // Last tier demanding slack leaves the thin-slack band uncovered.
        let mut p = clean();
        p.tiers[2].min_slack_us = 500;
        let ds = lint_config(&p);
        assert!(ds.has_code(Code::W071ServeUnreachableTier), "{ds}");
        assert_eq!(ds.error_count(), 0);
    }

    #[test]
    fn single_tier_policy_can_be_clean() {
        let p = ServeConfig {
            name: "single_tier",
            queue_capacity: 4,
            max_batch: 4,
            batch_window_us: 1_000,
            tiers: vec![TierSpec {
                tolerance_scale: 1.0,
                max_trials: 32,
                tableau: TableauKind::Rk23,
                min_slack_us: 0,
            }],
            workers: 1,
            design_rate_rps: 50.0,
            est_service_us: 5_000,
            min_deadline_us: 20_000,
            energy_budget_uj: 2_500,
            power_budget_mw: 1_200,
        };
        let ds = lint_config(&p);
        assert!(ds.is_empty(), "{ds}");
    }
}
