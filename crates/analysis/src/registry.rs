//! The lint-code registry: one rustc-style long explanation per stable
//! [`Code`], feeding both `enode-lint --explain <CODE>` and the generated
//! `docs/LINTS.md` table.
//!
//! A test enforces that every code in [`Code::ALL`] has a non-empty
//! explanation, so a new lint cannot ship undocumented.

use crate::diag::{Code, Severity};

/// Parses the textual form of a code (e.g. `"E050"`, case-insensitive)
/// back to the [`Code`] variant, or `None` for unknown codes.
pub fn parse_code(s: &str) -> Option<Code> {
    let want = s.to_ascii_uppercase();
    Code::ALL.into_iter().find(|c| c.as_str() == want)
}

/// The long, rustc-style explanation of what the lint checks, why it
/// matters for the eNODE co-design, and what typically fixes it.
pub fn explanation(code: Code) -> &'static str {
    match code {
        Code::E001TableauRowSum => {
            "Each Butcher-tableau row must satisfy the node condition Σ_j a_ij = c_i: stage i \
             evaluates f at time t + c_i·h, and the stage input is built from the a-row. A \
             mismatch means the stage samples f at a time inconsistent with its input, silently \
             destroying the method's order. Fix the offending a-row or c entry."
        }
        Code::E002TableauNotExplicit => {
            "The a matrix must be strictly lower triangular for an explicit Runge–Kutta method: \
             stage i may only consume stages 0..i. A nonzero entry on or above the diagonal \
             makes the stage system implicit, which the eNODE integrator (and hardware schedule) \
             cannot execute."
        }
        Code::E003TableauOrderCondition => {
            "A polynomial order condition (checked through order 4) fails for the tableau's \
             claimed order. The method will converge at a lower rate than advertised, and the \
             stepsize controller — which scales steps assuming the claimed order — will pick \
             wrong steps. Correct the coefficients or lower the claimed order."
        }
        Code::E004TableauEmbeddedOrder => {
            "The embedded (error-estimating) weights b̂ fail their claimed order conditions. The \
             error estimate e = h·Σ(b_i − b̂_i)k_i then misjudges the local error and adaptive \
             stepping accepts steps it should reject (or vice versa)."
        }
        Code::E005TableauErrorWeights => {
            "The error weights d = b − b̂ of an adaptive pair must sum to ~0 (both weight rows \
             sum to 1). A nonzero sum means d contains a zeroth-order term: the error estimate \
             no longer vanishes for constant solutions."
        }
        Code::E006TableauShape => {
            "The tableau's stage counts disagree: c, the a-rows, and b must all describe the \
             same number of stages, with a-row i holding exactly i coefficients. A structural \
             mismatch cannot be scheduled at all."
        }
        Code::W001TableauFsalFlag => {
            "The FSAL (first-same-as-last) flag disagrees with the coefficients: FSAL requires \
             the last a-row to equal b, so the last stage of one step can be reused as the \
             first stage of the next. A wrong flag costs one f evaluation per step (or reuses a \
             stale stage)."
        }
        Code::W002TableauOrderGap => {
            "The gap between the advancing order and the embedded order is not 1. Production \
             pairs use a gap of exactly 1; larger gaps make the error estimate much cruder than \
             the solution, and a gap of 0 gives no estimate headroom at all."
        }
        Code::E010DdgCycle => {
            "The data-dependence graph of the solver schedule contains a cycle, so no execution \
             order exists. This indicates a malformed stage dependency (e.g. a stage consuming \
             its own output)."
        }
        Code::E011DdgIllegalEdge => {
            "A DDG edge does not go strictly deeper in the wave-pipeline order. The depth-first \
             schedule the hardware executes requires producers to finish strictly before \
             consumers in pipeline depth; an illegal edge breaks the wavefront invariant."
        }
        Code::E012DdgLivenessExceedsBuffer => {
            "Peak simultaneous liveness in the depth-first schedule exceeds the state-buffer \
             rows the hardware provisions. The schedule would overflow on-chip memory at \
             runtime; either deepen the buffer or re-stage the schedule."
        }
        Code::W010DdgPartialLifetime => {
            "A partial state outlives the one-row-lag retirement bound the depth-first analysis \
             assumes. The schedule still fits, but the liveness model under which the buffers \
             were sized no longer matches the schedule's actual behavior."
        }
        Code::E020ShapeMismatch => {
            "Symbolic NCHW shape inference failed: an op in the embedded network rejects the \
             shape its predecessor produces (wrong rank, channel count, feature count, or a \
             kernel larger than its input). The network cannot execute on any input of the \
             declared state shape."
        }
        Code::E021ShapeNotPreserved => {
            "The embedded network f maps the state shape to a different shape. dh/dt = f(t, h) \
             requires f to be an endomap of the state space — the integrator adds h·f(h) to h, \
             which is undefined across shapes. Adjust the final layer to restore the input \
             shape."
        }
        Code::E022Fp16Overflow => {
            "Interval propagation proves some intermediate value of the network can exceed \
             f16::MAX (65504) for inputs within the declared magnitude bound. On the FP16 \
             datapath this saturates to infinity. Rescale weights, add a saturating activation, \
             or normalize earlier."
        }
        Code::W020Fp16NearOverflow => {
            "The worst-case intermediate magnitude is within 2x of f16::MAX. No overflow is \
             proven, but the bound is worst-case over the declared input magnitude only — \
             training drift or a larger input range could push it over."
        }
        Code::E030HwConfigInvalid => {
            "A structural field of the hardware configuration is zero or inconsistent (layer \
             dims, core count, clock, buffer sizes). The analytical model cannot evaluate such \
             a configuration."
        }
        Code::E031HwTrainingBufferTooSmall => {
            "The on-chip training-state buffer is smaller than the peak live bytes of the \
             depth-first training schedule, so intermediate states would spill to DRAM — \
             exactly the traffic the eNODE buffer exists to eliminate."
        }
        Code::E032HwWeightsNotResident => {
            "The embedded network's weights exceed the weight buffer, so each ring loop \
             re-fetches the overflow from DRAM. Function reuse across stages and steps — the \
             core of eNODE's energy story — assumes resident weights."
        }
        Code::E033HwDramBandwidth => {
            "The configuration's DRAM bandwidth is below the streaming demand of the workload \
             (input/output activations at the target rate). The accelerator would stall on \
             memory regardless of compute throughput."
        }
        Code::W030HwLinkBandwidth => {
            "The ring link bandwidth is below the inter-core activation traffic of the layer \
             mapping. Cores will stall on the ring; the paper provisions 1 GB/s per link for \
             full 4-core utilization."
        }
        Code::W031HwIdleCores => {
            "The layer-to-core mapping leaves cores idle in the last time-multiplexing round \
             (layers % cores != 0). Utilization drops proportionally; consider splitting wide \
             layers across the idle cores."
        }
        Code::W032HwMultiRound => {
            "The mapping needs multiple time-multiplexing rounds per ring loop (more layers \
             than cores), so per-round weight swaps occur on every integrator step. Latency \
             and energy scale with the round count."
        }
        Code::W033HwBufferHeadroom => {
            "The integral-state buffer demand is within 10% of the training buffer capacity. \
             The configuration works for the nominal workload but has no headroom for deeper \
             integration or larger states."
        }
        Code::W044ParSerialFloorEngaged => {
            "The split planner's work-size floor decided the whole kernel invocation is too \
             small to amortize chunk dispatch, so it runs serially on one lane even though a \
             worker pool is live. This is the deliberate fix for kernels (GroupNorm at bench \
             shapes, small dense layers) that were measurably *slower* parallel than serial: \
             below SERIAL_FLOOR_FLOPS of total work, coordination overhead exceeds the compute \
             being distributed. The lint records the decision so a shape change that crosses \
             the floor is visible, rather than a silent slow path. No action is needed unless \
             the shape has grown — then re-check the floor constant against a fresh bench."
        }
        Code::W034HwDegenerateParallelSplit => {
            "A parallel worker pool is live but the work decomposition is degenerate (e.g. \
             batch size 1 with per-batch splitting), so execution is silently serial while \
             paying the pool's coordination overhead."
        }
        Code::E040ParStrideIndivisible => {
            "A buffer registered for parallel splitting is not a whole number of per-item \
             strides, so the disjoint chunk decomposition would misalign item boundaries and \
             be rejected at runtime. Fix the declared stride or the buffer length."
        }
        Code::E041ParScratchUndersized => {
            "A per-lane scratch arena is smaller than the bytes the kernel decomposition \
             writes through it; lanes would overrun the arena at runtime."
        }
        Code::E042ParUnorderedReduction => {
            "A reduction kernel declares a non-serial partial combine. Floating-point addition \
             is not associative: combining partials in pool-dependent order breaks the \
             repository's bit-identical determinism contract. Combine partials in lane order."
        }
        Code::W040ParDegenerateSplit => {
            "The kernel split degenerates to a single chunk on a live pool despite substantial \
             work, so the kernel runs serially while the pool idles. Usually the split axis is \
             too coarse for the problem shape."
        }
        Code::W041ParPartialBlowup => {
            "Per-lane partial buffers are much larger than the reduced output; memory scales \
             with pool width. Consider tree reduction or smaller partials."
        }
        Code::W042ParFalseSharing => {
            "Every split gives each lane less than one cache line of output, so lanes \
             ping-pong ownership of shared lines and the parallel run can be slower than \
             serial. Coarsen the split."
        }
        Code::W043ParScratchOverprovision => {
            "The scratch arena is provisioned far beyond what the decomposition can touch; \
             on-chip memory is wasted that the training buffer could use."
        }
        Code::E050PrecOpOverflow => {
            "Range propagation through the unrolled solver schedule proves a network op's \
             output can exceed f16::MAX. Unlike E022 (one network in isolation), this bound \
             accounts for state growth across RK stages and accepted steps: a network that is \
             safe on the raw input can still overflow after the solution combine feeds it \
             back. Rescale weights or shorten the integration span."
        }
        Code::E051PrecCombineOverflow => {
            "An RK combine — a stage input y + hΣa_ij·k_j, the solution y + hΣb_i·k_i, or the \
             embedded error estimate — can exceed f16::MAX even though each operand fits. \
             Large stepsizes multiply stage magnitudes before the sum; shrink default_dt or \
             the stage magnitudes."
        }
        Code::E052PrecNonFiniteParam => {
            "A trainable parameter tensor contains NaN or infinity, usually the residue of a \
             diverged training run. Every range and error bound downstream of the op is \
             meaningless, and inference will produce non-finite outputs. Reinitialize or \
             reload the parameters."
        }
        Code::E053PrecDegenerateGroupNorm => {
            "A GroupNorm group contains ≤ 1 element for the declared state shape, so its \
             variance is identically zero: normalization divides by the epsilon floor and the \
             op degenerates to a constant gain with an undefined gradient direction. Reduce \
             the group count or enlarge the spatial extent."
        }
        Code::E054PrecCheckpointOverflow => {
            "An FP16 ACA checkpoint stores a state whose worst-case magnitude exceeds \
             f16::MAX. The forward pass may survive (wide accumulators), but the checkpoint \
             write saturates to infinity and the adjoint replay restarts from garbage."
        }
        Code::E055PrecToleranceSubnormal => {
            "The solver tolerance is below the FP16 subnormal threshold (2⁻¹⁴ ≈ 6.1e-5). With \
             binary16 state the embedded error estimate flushes to zero before the controller \
             compares it against the tolerance, so step acceptance becomes vacuous: every step \
             is accepted regardless of error. Loosen the tolerance or keep FP32 state."
        }
        Code::E056PrecAdjointReplayOverflow => {
            "Replaying a checkpoint interval amplifies the stored state's worst-case magnitude \
             past f16::MAX — the interval's growth factor (1 + h·Σ|b_i|)^steps applied to the \
             checkpoint pushes it over. Shorten the checkpoint stride."
        }
        Code::W050PrecToleranceNearSubnormal => {
            "The solver tolerance is within 16x of the FP16 subnormal threshold. Error \
             estimates near the tolerance lose most of their significand to gradual underflow, \
             making accept/reject decisions noisy."
        }
        Code::W051PrecCancellation => {
            "The embedded error estimate is a difference of nearly equal sums, so its operands' \
             FP16 rounding noise (half-ulp of the stage magnitudes) is a significant fraction \
             (> 10%) of the tolerance. The controller is then steering on rounding noise as \
             much as on truncation error."
        }
        Code::W052PrecErrorBudget => {
            "FP16 rounding injected across a single accepted step (one rounding per stored \
             value, amplified by each op's gain) exceeds 10x the solver tolerance. The \
             controller budgets ~tolerance of truncation error per step; rounding of this \
             size dominates the budget and the reported accuracy is fictitious."
        }
        Code::W053PrecAdjointQuantization => {
            "The FP16 quantization error of an ACA checkpoint, amplified over its multi-step \
             recompute interval, is a significant fraction (> 10%) of the tolerance. Replayed \
             states then differ measurably from the forward pass, biasing the adjoint \
             gradients. Shorten the stride or store checkpoints in FP32."
        }
        Code::E060XArtMapResidency => {
            "The layer-to-core mapping assumes weights stay resident, but the model's actual \
             per-layer footprints exceed the weight buffer — in total, or on one core under \
             the round-robin placement. E032 checks the HwConfig's nominal dims; this check \
             uses the real model, so the two artifacts can disagree only here."
        }
        Code::E061XArtAcaBuffer => {
            "The ACA checkpoint plan's working set — live checkpoints plus the per-interval \
             replay caches the backward pass demands — exceeds the on-chip training buffer. \
             The checkpoint stride in the solver options and the buffer in the HwConfig were \
             chosen independently; this lint is where they must agree. Increase the stride \
             (fewer checkpoints, more recompute) or provision a larger buffer."
        }
        Code::E062XArtControllerBounds => {
            "The stepsize-controller bounds are unsatisfiable against the solver schedule: \
             dt_min is not below the nominal stepsize, the shrink factor is outside (0, 1), \
             or the rejection-trial budget cannot walk the stepsize from default_dt down to \
             dt_min. The search would either never terminate or give up before reaching its \
             own lower bound."
        }
        Code::E070ServeWindowDeadline => {
            "The serving policy's batch window plus its worst-case service estimate exceeds the \
             tightest deadline the policy admits. The dynamic batcher may hold an underfull \
             batch for the full window before the solve even starts, so a worst-case request \
             admitted at the deadline floor is shed (or force-degraded) by construction — not \
             by load. Shrink the batch window, cut the service estimate (cheaper tiers, smaller \
             max_batch), or raise the deadline floor."
        }
        Code::E071ServeQueueStarvation => {
            "A request admitted into the last slot of a full ingress queue waits behind \
             ceil(capacity / max_batch) batch services before it can dispatch. If that tail \
             wait alone reaches the tightest admitted deadline, the queue's deep end is dead on \
             arrival: admission control accepts work the deadline shedder is guaranteed to \
             throw away, wasting queue memory and hiding overload from the caller (who sees \
             accepted-then-shed instead of an immediate QueueFull). Shrink the queue so \
             backpressure surfaces at the door, or speed up service."
        }
        Code::E072ServeTierOrdering => {
            "The degradation ladder is not ordered cheapest-last. Tier 0 must serve at the \
             request's own tolerance (scale 1.0), and every later tier must be strictly coarser \
             (larger tolerance scale) with a trial budget no larger than its predecessor's. A \
             mis-ordered ladder inverts the policy's promise: thin-slack requests get *more* \
             expensive solves exactly when there is no time for them."
        }
        Code::W070ServeDesignOverload => {
            "The policy's declared design load exceeds its peak service rate (max_batch served \
             every est_service). Under sustained load at the declared rate the queue fills and \
             stays full, so shedding and QueueFull rejections become the steady state rather \
             than an overload response. Either the design rate is aspirational (lower it) or \
             the deployment needs more capacity (bigger batches, cheaper tiers, more workers)."
        }
        Code::W071ServeUnreachableTier => {
            "Tier selection walks the ladder and picks the first tier whose slack threshold \
             fits, so a tier whose min_slack is not strictly below its predecessor's can never \
             be chosen — it is dead configuration. Separately, a last tier with a nonzero \
             threshold leaves the thinnest-slack requests to the fall-through default (cheapest \
             tier) rather than a deliberately designed one. Make thresholds strictly decreasing \
             and end the ladder at zero slack."
        }
        Code::E080AffineLaneOverlap => {
            "The kernel's affine access summary admits two items whose write sets intersect, so \
             some lane assignment makes two threads store to the same element — a data race the \
             runtime sanitizer could only catch on schedules it happens to execute. The prover \
             checks stride congruence (gcd of item stride and element stride) across the whole \
             thread-count × grain envelope at once; fix the item stride or per-item extent so \
             consecutive items cannot reach each other's elements, or restructure the split so \
             each item owns a private slice."
        }
        Code::E081AffineCoverage => {
            "Lane writes proven disjoint do not tile the declared output region exactly: either \
             the union spills past the region's element count (out-of-bounds store), or counting \
             shows a gap the region does not declare as intentional slack, meaning some output \
             elements are never produced and the consumer reads stale or uninitialized data. \
             Adjust the per-item extent so items × count equals the region size, or declare the \
             deliberate remainder via slack_elems to downgrade this to W080."
        }
        Code::E082AffineScratchAlias => {
            "A scratch buffer is carved out of a region the kernel is still writing (or out of a \
             live output), so lane-private temporaries and final results share storage: whichever \
             lane flushes last silently corrupts the other's data. Thread-local arenas from the \
             parallel layer's checkout API are disjoint by construction — route the temporary \
             through an arena, or carve from a region the split provably never writes."
        }
        Code::W080AffineCoverageSlack => {
            "Lane writes are pairwise disjoint and in-bounds but leave a gap exactly equal to \
             the region's declared slack_elems, an intentional under-fill (padding tails, \
             alignment rounding). This is advisory: the prover has verified the gap matches the \
             declaration, but consumers must not read the slack elements. Shrink the region or \
             the declaration if the slack is unintentional."
        }
        Code::W084CostModelDeviation => {
            "The static roofline model (peak flops per lane, memory bandwidth, dispatch \
             overhead, bytes from the proven access footprints) predicts a parallel speedup \
             that disagrees with the committed BENCH_kernels.json measurement by more than the \
             tolerance ratio. Either the measurement is stale (re-run the bench and commit), \
             the summary's flops or footprint is wrong, or the kernel hits an effect the \
             roofline cannot see (cache thrash, false sharing) worth investigating."
        }
        Code::W085CostFutileSplit => {
            "Arithmetic intensity says this split cannot pay for its dispatch overhead on the \
             measurement host: the committed baseline was captured with fewer physical cores \
             than the bench's high thread count, and the measured parallel speedup is below \
             1×. This machine-checks the host_cpus caveat in BENCH_kernels.json — the slowdown \
             is a property of the 1-core container, not a kernel defect. Re-measure on a \
             multi-core host before drawing scheduling conclusions."
        }
        Code::E090SchedDeadlineInfeasible => {
            "The backward demand pass over the serving pipeline (admission queue → batch \
             window → worker lanes) computes, per tolerance class, a worst-case response time \
             of full-queue drain + batch window + the simulator-calibrated service time from \
             COST_TABLE.json — and it exceeds the tightest admitted deadline at *every* tier \
             of the degradation ladder. No runtime policy can save such a deployment: even a \
             request served maximally degraded misses by construction. Raise the deadline \
             floor, shrink the queue/window, or make the cheapest tier cheaper."
        }
        Code::E091SchedLadderNoRecovery => {
            "Tier selection routes a request to tier t when its remaining slack is at least \
             the tier's min_slack_us — the tier's contract is that min_slack_us of headroom \
             suffices to finish there. This lint checks the contract against the simulated \
             table: the worst-case (Strict-class, full-batch) service time at the tier \
             exceeds its own admission threshold, so a request routed at the threshold is \
             guaranteed to miss even though degradation 'worked'. Raise the threshold or \
             cheapen the tier."
        }
        Code::E092SchedEnergyBudget => {
            "The policy declares a per-request energy budget (µJ at full quality), and the \
             cycle-level simulator says the tier-0 dispatch at max_batch costs more than that \
             per request (batch energy / batch size, DRAM stalls included). The deployment \
             would drain its battery envelope on every full-quality request — the exact \
             failure eNODE's energy story exists to prevent. Cheapen tier 0 (fewer trials, \
             lower-order tableau), batch wider, or raise the declared budget."
        }
        Code::E093SchedTableVersion => {
            "COST_TABLE.json carries the generator's schema version and, per policy, an \
             FNV-1a fingerprint of the ladder fields the sweep depends on (tolerance scales, \
             trial budgets, tableau stages, slack thresholds). This lint fires when either \
             disagrees with the analysis's own constants: the committed table was generated \
             by a different generator, or the ladder changed after the sweep. Every verdict \
             derived from a stale table is unsound, so the analysis stops at this error. \
             Regenerate with `cargo run --release -p enode-bench --bin cost_table_json`."
        }
        Code::E094SchedTableMissing => {
            "A shipped policy (or one of its ladder tiers) has no rows in the committed cost \
             table, so the schedulability and energy analysis has nothing to reason from — \
             which usually means a policy was added or a ladder deepened without re-running \
             the sweep. The deployment is not proven infeasible; it is unproven, which the \
             repo treats the same way. Regenerate COST_TABLE.json."
        }
        Code::E095SchedTableNonMonotone => {
            "Within one (policy, tier), the simulated batch rows must be monotone: a larger \
             batch does strictly more work, so its per-dispatch latency and energy cannot \
             decrease. A violation cannot come out of the simulator sweep (it is a pure \
             function of batch size) — the committed table is corrupted or hand-edited, and \
             every interpolation or worst-case bound drawn from it would be wrong. \
             Regenerate the table; never edit it by hand."
        }
        Code::E096SchedPowerBudget => {
            "Sustained device power is offered load times energy per request: \
             design_rate_rps × the simulated tier-0 per-request energy. This lint fires when \
             that product exceeds the policy's declared power budget (mW) — the deployment \
             cannot hold its design throughput at full quality within its thermal/battery \
             envelope, and the runtime would be forced into permanent degradation instead of \
             using the ladder for transients. Lower the design rate, cheapen tier 0, or \
             provision more power."
        }
        Code::W090SchedLastTierOnly => {
            "The worst-case response time fits the tightest deadline only at the final \
             (cheapest) tier of the ladder for some tolerance class. The policy is feasible, \
             but with zero quality headroom: any worst-case request admitted at the deadline \
             floor is served maximally degraded, and the intermediate tiers exist only for \
             requests with slack to spare. Usually a sign the window or queue is oversized \
             for the deadline."
        }
        Code::W091SchedLadderEnergyNonMonotone => {
            "Degrading is supposed to buy latency *and* energy, yet the simulated per-request \
             energy at some tier is not lower than its predecessor's: the ladder trades \
             accuracy away without getting the energy back. This happens when a tier lowers \
             the tableau order (fewer f-evals per trial) but its tolerance/trial settings \
             make the controller spend more accepted points. The battery-ladder story (paper \
             Figs 14–17) depends on monotone energy; re-tune the offending tier."
        }
        Code::W092SchedTableExtrapolated => {
            "The analysis needs the policy's max_batch design point, but the committed table \
             has no simulated row at that batch (the sweep grid stops earlier), so the \
             verdict was derived from a linear extrapolation of the largest simulated batch. \
             Linear-in-batch is exactly what the simulator shows on this compute-bound \
             profile, but an extrapolated bound is a model, not a measurement — widen \
             BATCH_GRID or shrink max_batch to make the verdict simulator-backed."
        }
        Code::W093SchedThinMargin => {
            "The policy is feasible at full quality, but barely: the tier-0 worst-case \
             response time leaves less than 10% of the tightest admitted deadline as slack \
             for some tolerance class. Any drift the static model does not see — clock \
             scaling, DRAM contention beyond the simulator's stall model, a deeper queue — \
             eats straight into deadline misses. Treat it as a capacity-planning alarm, not \
             an error."
        }
        Code::E100SyncLockOrderCycle => {
            "The union of every declared path's nested lock acquisitions forms a graph with an \
             edge held→acquired; a forward ancestors fixpoint over that graph found a lock \
             reachable from itself. Two interleavings can then acquire the same pair of locks \
             in opposite orders and block on each other forever — the classic ABBA deadlock, \
             fatal for a serving runtime that must keep draining its queue under deadline. \
             Establish one global acquisition order (the skeleton's declaration order is the \
             intended one) and release before re-acquiring against it."
        }
        Code::E101SyncLostWakeup => {
            "A condvar wait can sleep through the event it is waiting for. Three obligations \
             are proven per condvar: the wait must re-check its predicate in a loop (spurious \
             wakeups and stale predicates race through otherwise), some declared path must \
             notify it at all, and every path that falsifies its predicate must have a notify \
             reachable *after* the write — a backward reachable-notify pass over the path's \
             step chain catches a predicate write whose wakeup was dropped or hoisted before \
             it. A timeout-bounded wait (see W102) trades this proof for bounded staleness."
        }
        Code::E102SyncShutdownLeak => {
            "Shutdown must leave the runtime quiescent: every declared worker thread joined, \
             every declared queue swept (parked tickets resolved, not leaked), and no join \
             executed while holding a lock the joined thread's own paths acquire — the worker \
             could be blocked on exactly that lock, deadlocking the join. The obligations are \
             collected by a backward pass from each shutdown path's entry; a thread or queue \
             missing from the union means a detached worker or a caller parked forever on a \
             ticket that nobody will fill."
        }
        Code::E103SyncAtomicOrdering => {
            "An atomic declared as a published value — read by threads other than its writer \
             to observe completed work — writes with an ordering below Release. Without a \
             Release/Acquire edge the reader can observe the flag while the data it publishes \
             is still in flight, which on a weakly-ordered edge core (the deployment target \
             this stack models) is a real reordering, not a theoretical one. Strengthen the \
             write to Release (or SeqCst) or re-declare the role if the value is genuinely a \
             statistic (see W100)."
        }
        Code::E104SyncTraceDrift => {
            "The feature-gated `synctrace` recorder observed the runtime doing something the \
             declared skeletons do not admit: an acquisition edge outside the transitive \
             closure of the declared lock order, or a lock/condvar that was never declared at \
             all. The declarations are the ground truth every E10x proof rests on, so drift \
             means the proofs are about a runtime that no longer exists. Update the skeleton \
             to match the code (and re-run the prover), or fix the code if the observed \
             behaviour was unintended."
        }
        Code::E105SyncSkeletonMalformed => {
            "A declared path is structurally inconsistent before any deeper analysis can run: \
             it acquires or waits on an undeclared primitive, releases a lock it does not \
             hold, waits on a condvar without holding its declared guard lock, or ends with \
             locks still held. Malformed declarations poison every downstream proof, so the \
             E100/E101/E102 passes are skipped until the skeleton is repaired — fix the \
             declaration to mirror what the code actually does."
        }
        Code::E106SyncWaitHoldsNotifierLock => {
            "A path waits on a condvar while holding an extra lock (beyond the condvar's \
             guard), and every declared notifier of that condvar must acquire one of those \
             held locks before it can reach its notify. The waiter therefore starves its own \
             wakers: they queue on the lock the sleeper holds, and nobody ever calls notify. \
             Release the foreign lock before waiting, or move the notify before the \
             notifier's conflicting acquisition. (Holding an unrelated lock across a wait is \
             allowed when at least one notifier path never touches it.)"
        }
        Code::W100SyncRelaxedCounter => {
            "Statistics counters declared as quiescent-only increment with Relaxed ordering: \
             cheap on the hot path, but a concurrent snapshot may observe increments out of \
             order across counters, so cross-counter identities (submitted ≥ completed + shed \
             + failed + cancelled) are only exact once the runtime is drained. This is a \
             deliberate-decision record, not a defect — the resolution counters that feed \
             under-load invariants use Release/Acquire instead (see the memory-ordering audit \
             in serve::metrics)."
        }
        Code::W101SyncDeadCondvar => {
            "A condvar is declared in a skeleton but no declared path ever waits on it. Either \
             the declaration is stale (the code stopped waiting and the skeleton was not \
             updated — which E104's tracer would eventually catch from the other side) or the \
             condvar is dead weight in the runtime. Remove the declaration or the primitive."
        }
        Code::W102SyncTimeoutWakeup => {
            "Waits on this condvar are bounded by a timeout rather than relying solely on a \
             notify: a missed wakeup costs one timeout period of latency instead of liveness. \
             The serving runtime uses this deliberately for the wall-clock batch window — the \
             worker must wake when the window expires even if no new request arrives to \
             notify it. The record documents that the E101 lost-wakeup proof is intentionally \
             weakened to bounded staleness here; keep the timeout no larger than the batch \
             window."
        }
        Code::W103SyncDeadLock => {
            "A lock is declared in a skeleton but no declared path ever acquires it. A stale \
             declaration hides real coverage gaps: the lock-order proof (E100) only sees \
             edges between locks that paths actually touch, so an undeclared-but-real \
             acquisition pattern would be invisible. Remove the declaration or add the \
             missing paths."
        }
        Code::E110FleetResidencyOverflow => {
            "An instance of the fleet must pin its assigned model's live version into the \
             per-core weight SRAM, but some core's round-robin share of the version's weight \
             bytes alone exceeds the configured weight-buffer capacity. The residency manager \
             would reject the warm-up outright (nothing can be evicted to make a single \
             too-large version fit), so the fleet cannot even start: every request for that \
             model would be refused NotResident. Shrink the deployed profile (channels or \
             conv depth), deepen the per-core buffer, or assign the model to a configuration \
             with more cores so the round-robin shares fall under the envelope."
        }
        Code::E111FleetRebalanceInfeasible => {
            "Some single-instance loss (or the nominal deployment itself) leaves tenant load \
             unservable: either no surviving instance serves a model that still has bound \
             tenants, or the consistent-hash rebalance concentrates more offered req/s onto \
             a survivor than its policy's declared design_rate_rps. The verdict comes from \
             the fixpoint load pass: tenant nodes originate their bound rates, instance \
             nodes accumulate per-survivor shares, and every loss scenario is re-converged. \
             A fleet that only works while all instances are up has no failure story — add \
             a replica of the starved model or lower the tenant rates until one loss is \
             absorbable."
        }
        Code::E112FleetSlaUncovered => {
            "A tenant's SLA deadline is covered by no tier of its model's degradation \
             ladder: at every tier, either the tier's min_slack_us admission threshold \
             exceeds the SLA (the router can never route to it) or the batch window plus \
             one in-flight batch plus the tier's own class-scaled service time — read from \
             the simulator-calibrated cost table — overruns the SLA. Every request the \
             tenant submits is then shed or completed late by construction. Relax the SLA, \
             bind the tenant to a cheaper tolerance class, or extend the ladder with a \
             tier cheap enough to fit."
        }
        Code::E113FleetStaleFingerprint => {
            "A published model version's recorded fingerprint does not match the FNV-1a \
             digest recomputed from its name, version number, and degradation ladder. \
             Publish computes and stores this digest atomically, so a mismatch means the \
             registry entry was edited outside the publish path, survived a ladder change \
             it should not have, or was corrupted in transit — and every other fleet \
             verdict would be reasoning about a policy that is not the one actually \
             deployed. The check short-circuits the rest of the fleet analysis. Republish \
             the model through the registry instead of patching its snapshot."
        }
        Code::E114FleetConfigMalformed => {
            "The fleet config fails structural invariants that every other fleet check \
             assumes: it declares zero instances, its assignment does not name exactly one \
             model per instance, an assigned model has no live published version in the \
             registry, or a tenant is bound to a model no instance serves. The runtime \
             constructor panics on the same conditions; this lint reports them statically \
             and short-circuits the rest of the family, since residency, rebalance, and \
             SLA verdicts are meaningless over a fleet that cannot be built."
        }
        Code::W110FleetResidencyHeadroom => {
            "An instance's pinned live set fits its weight SRAM, but leaves less than 1/8 \
             of some core's buffer free. The publish protocol keeps the predecessor \
             version warm (unpinned) for instant rollback; with this little headroom the \
             next publish must evict it immediately, so rollback degrades from an SRAM \
             pointer-flip to a full re-warm from DRAM. Deploy a smaller profile or a \
             larger weight buffer if warm rollback matters for the model."
        }
        Code::W111FleetQuotaOversubscribed => {
            "The per-tenant admission quotas bound against one model sum to more \
             outstanding requests than the ingress queues of the instances serving that \
             model can buffer. Quotas are the fleet's door-level backpressure; when they \
             overcommit the queues, tenants within quota can still be refused QueueFull by \
             the instance, making admission behavior depend on arrival interleaving \
             rather than on the declared contract. Lower the quotas or add replicas until \
             the aggregate queue capacity covers them."
        }
    }
}

/// The full `--explain` text for one code: header line, summary, and the
/// long explanation.
pub fn explain(code: Code) -> String {
    let kind = match code.severity() {
        Severity::Error => "error",
        Severity::Warning => "warning",
    };
    format!(
        "{} ({kind}): {}\n\n{}\n",
        code.as_str(),
        code.summary(),
        explanation(code)
    )
}

/// Renders the generated `docs/LINTS.md`: one table row per code plus the
/// long explanations, in code order. `enode-lint --emit-lints-md` prints
/// this; a golden test keeps the checked-in file in sync.
pub fn render_lints_md() -> String {
    let mut out = String::new();
    out.push_str(
        "# Lint codes\n\n\
         <!-- Generated by `enode-lint --emit-lints-md`. Do not edit by hand. -->\n\n\
         Every diagnostic the `enode-analysis` crate emits carries one of the stable\n\
         codes below. `E` codes are errors (`enode-lint` exits nonzero), `W` codes are\n\
         warnings. Run `enode-lint --explain <CODE>` for the same text offline.\n\n\
         | Code | Severity | Summary |\n|---|---|---|\n",
    );
    for code in Code::ALL {
        let kind = match code.severity() {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        out.push_str(&format!(
            "| [{0}](#{1}) | {kind} | {2} |\n",
            code.as_str(),
            code.as_str().to_ascii_lowercase(),
            code.summary()
        ));
    }
    out.push('\n');
    for code in Code::ALL {
        out.push_str(&format!(
            "## {}\n\n*{}*\n\n{}\n\n",
            code.as_str(),
            code.summary(),
            explanation(code)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_code_has_an_explanation() {
        for code in Code::ALL {
            assert!(
                explanation(code).len() > 80,
                "{} needs a real explanation",
                code.as_str()
            );
            let text = explain(code);
            assert!(text.starts_with(code.as_str()), "{text}");
            assert!(text.contains(code.summary()));
        }
    }

    #[test]
    fn parse_code_roundtrips_and_rejects_unknown() {
        for code in Code::ALL {
            assert_eq!(parse_code(code.as_str()), Some(code));
            assert_eq!(parse_code(&code.as_str().to_ascii_lowercase()), Some(code));
        }
        assert_eq!(parse_code("E999"), None);
        assert_eq!(parse_code(""), None);
        assert_eq!(parse_code("bogus"), None);
    }

    #[test]
    fn lints_md_lists_every_code() {
        let md = render_lints_md();
        for code in Code::ALL {
            assert!(md.contains(&format!("## {}", code.as_str())));
        }
    }

    #[test]
    fn checked_in_lints_md_is_current() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/LINTS.md");
        let on_disk = std::fs::read_to_string(path)
            .expect("docs/LINTS.md missing; run `enode-lint --emit-lints-md > docs/LINTS.md`");
        assert_eq!(
            on_disk,
            render_lints_md(),
            "docs/LINTS.md is stale; regenerate with `enode-lint --emit-lints-md > docs/LINTS.md`"
        );
    }
}
