//! `enode-lint`: runs every static-analysis pass over the repository's
//! shipped tableaux, depth-first DDG schedules, paper models, and Table I
//! hardware configurations. Exits nonzero if any error-severity
//! diagnostic fires, so it can gate CI.

use enode_analysis::{ddg, hwcheck, lint_everything, shape, tableau};
use enode_node::model::NodeModel;

fn main() {
    println!("enode-lint: static analysis of the eNODE stack\n");

    println!(
        "-- tableaux ({} methods) --",
        enode_ode::tableau::all_tableaux().len()
    );
    print!("{}", tableau::lint_all_tableaux().render());

    println!("\n-- depth-first DDG schedules --");
    print!("{}", ddg::lint_all_ddgs().render());

    println!("\n-- embedded-network shapes and FP16 range --");
    let m = NodeModel::dynamic_system(12, 32, 2, 5);
    let mut sample = enode_analysis::Diagnostics::new();
    for (l, layer) in m.layers().iter().enumerate() {
        sample.extend(shape::lint_network(
            &format!("three_body layer {l}"),
            layer,
            &[1, 12],
            4.0,
        ));
    }
    print!("{}", sample.render());

    println!("\n-- hardware configurations (Table I) --");
    print!("{}", hwcheck::lint_paper_configs().render());

    // The authoritative verdict covers every model, not just the sample
    // printed above.
    let all = lint_everything();
    println!("\n-- total --");
    print!("{}", all.render());

    if all.has_errors() {
        std::process::exit(1);
    }
}
