//! Simulator-backed serving costs: maps a [`ServeConfig`] onto the
//! cycle-level hardware simulator's cost tables.
//!
//! This is the bridge the ROADMAP calls "hardware-in-the-loop cost
//! model": [`table_spec`] reduces a policy's degradation ladder to the
//! sweep spec `enode_hw::table` understands, [`shipped_cost_table`]
//! builds the deterministic per-(tier, batch) latency/energy table for
//! every shipped policy (the committed `COST_TABLE.json`), and
//! [`CostModel::from_table`] calibrates the load generator's abstract
//! per-NFE cost from those simulated numbers, so `serve_bench` sweeps
//! run on simulator-derived service times instead of a guessed constant.
//!
//! [`fingerprint`] content-hashes exactly the policy fields the sweep
//! depends on (name + ladder), so the static lints (`E093`) can prove a
//! committed table was generated from the ladder it is being applied to
//! — without the fingerprint changing when unrelated envelope fields
//! (deadlines, budgets) are tuned.

use crate::loadgen::CostModel;
use crate::policies::ServeConfig;
use enode_hw::config::LayerDims;
use enode_hw::fingerprint::Fnv64;
use enode_hw::table::{build_table, tableau_cost, CostTable, TableSpec, TierSim};

/// The serving-scale model profile a policy deploys: feature-map
/// dimensions and conv depth of the integration layer the simulator is
/// swept with. The edge policy serves a 16×16×8 two-conv classifier
/// head; the always-on keyword spotter runs an 8×8×8 front-end.
pub fn serve_profile(cfg: &ServeConfig) -> (LayerDims, usize) {
    match cfg.name {
        "streaming_keyword" => (LayerDims::new(8, 8, 8), 2),
        _ => (LayerDims::new(16, 16, 8), 2),
    }
}

/// FNV-1a 64-bit content hash (hex) of the policy fields the cost sweep
/// depends on: the name and, per tier, the tolerance scale (exact bit
/// pattern), trial budget, integrator stage count, and slack threshold.
/// Envelope fields (rates, deadlines, budgets) and batching knobs are
/// deliberately excluded — they do not change the simulated rows.
pub fn fingerprint(cfg: &ServeConfig) -> String {
    let mut h = Fnv64::new();
    h.write(cfg.name.as_bytes());
    for t in &cfg.tiers {
        h.write_f64_bits(t.tolerance_scale);
        h.write_u64(t.max_trials as u64);
        h.write_u64(tableau_cost(t.tableau).0 as u64);
        h.write_u64(t.min_slack_us);
    }
    h.hex()
}

/// The sweep spec for one policy.
pub fn table_spec(cfg: &ServeConfig) -> TableSpec {
    let (layer, n_conv) = serve_profile(cfg);
    TableSpec {
        policy: cfg.name.to_string(),
        fingerprint: fingerprint(cfg),
        layer,
        n_conv,
        max_batch: cfg.max_batch,
        tiers: cfg
            .tiers
            .iter()
            .map(|t| TierSim {
                tableau: t.tableau,
                tolerance_scale: t.tolerance_scale,
                max_trials: t.max_trials,
            })
            .collect(),
    }
}

/// Builds the cost table for every shipped policy — the exact content of
/// the committed `COST_TABLE.json` (`cost_table_json` renders it;
/// `ci.sh` diff-checks the bytes).
pub fn shipped_cost_table() -> CostTable {
    let specs: Vec<TableSpec> = ServeConfig::shipped().iter().map(table_spec).collect();
    build_table(&specs)
}

impl CostModel {
    /// Calibrates a load-generator cost model from a policy's simulated
    /// tier-0 rows: the marginal per-f-evaluation cost is read off the
    /// batch-1 → batch-2 latency difference (pure compute growth), and
    /// whatever the batch-1 latency holds beyond `f_evals` marginal
    /// costs is charged as fixed dispatch overhead.
    ///
    /// Returns `None` if the table has no tier-0 rows at batches 1 and 2
    /// for `policy`.
    pub fn from_table(policy: &str, table: &CostTable, lanes: usize) -> Option<CostModel> {
        let b1 = table.lookup(policy, 0, 1)?;
        let b2 = table.lookup(policy, 0, 2)?;
        let f_evals = b1.f_evals.max(1) as f64;
        let marginal = b2.latency_us.saturating_sub(b1.latency_us);
        let per_nfe_us = if marginal > 0 {
            marginal as f64 / f_evals
        } else {
            b1.latency_us as f64 / f_evals
        };
        let modeled = (f_evals * per_nfe_us).round() as u64;
        Some(CostModel {
            per_nfe_us,
            dispatch_overhead_us: b1.latency_us.saturating_sub(modeled),
            lanes: lanes.max(1),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_tracks_ladder_not_envelope() {
        let base = ServeConfig::edge_default();
        let fp = fingerprint(&base);
        assert_eq!(fp.len(), 16);

        // Envelope tuning must not invalidate the table...
        let mut envelope = base.clone();
        envelope.min_deadline_us /= 2;
        envelope.energy_budget_uj += 1;
        envelope.max_batch = 4;
        assert_eq!(fingerprint(&envelope), fp);

        // ...but any ladder change must.
        let mut ladder = base.clone();
        ladder.tiers[1].max_trials -= 1;
        assert_ne!(fingerprint(&ladder), fp);
        let mut ladder = base;
        ladder.tiers[2].min_slack_us += 1;
        assert_ne!(fingerprint(&ladder), fp);
    }

    /// The shipped ladders' digests, pinned to the values recorded in
    /// the committed `COST_TABLE.json`. A failure here means the shared
    /// FNV-1a helper (`enode_hw::fingerprint`) or the hashed field order
    /// drifted — which would silently invalidate every committed table
    /// and published registry version.
    #[test]
    fn shipped_fingerprints_are_pinned() {
        let shipped = ServeConfig::shipped();
        assert_eq!(fingerprint(&shipped[0]), "85ed0d4c8528085a");
        assert_eq!(fingerprint(&shipped[1]), "d5df13b27c1d51cd");
    }

    #[test]
    fn shipped_table_covers_every_tier_and_batch() {
        let t = shipped_cost_table();
        for cfg in ServeConfig::shipped() {
            for tier in 0..cfg.tiers.len() {
                let rows = t.rows_for(cfg.name, tier);
                assert!(!rows.is_empty(), "{} tier {tier} missing", cfg.name);
                assert!(
                    rows.iter().any(|r| r.batch == cfg.max_batch),
                    "{} tier {tier} lacks the max_batch row",
                    cfg.name
                );
            }
        }
        // edge: 3 tiers x 4 batches; streaming: 2 tiers x 3 batches.
        assert_eq!(t.rows.len(), 12 + 6);
    }

    #[test]
    fn from_table_reconstructs_the_batch_rows() {
        let t = shipped_cost_table();
        for cfg in ServeConfig::shipped() {
            let cm = CostModel::from_table(cfg.name, &t, 4).expect("tier-0 rows exist");
            assert!(cm.per_nfe_us > 0.0);
            // Charging f_evals identical per-sample NFEs through the
            // model must land within rounding of the simulated batch-8
            // (or max_batch) latency: the calibration is faithful, not a
            // curve fit.
            let row = t.lookup(cfg.name, 0, cfg.max_batch).unwrap();
            let nfe = vec![row.f_evals as u64; cfg.max_batch];
            let lanes1 = CostModel { lanes: 1, ..cm };
            let modeled = lanes1.service_us(&nfe);
            let sim = row.latency_us;
            let err = modeled.abs_diff(sim);
            assert!(
                err * 100 <= sim.max(1),
                "{}: modeled {modeled}µs vs simulated {sim}µs",
                cfg.name
            );
        }
    }

    #[test]
    fn from_table_missing_policy_is_none() {
        let t = shipped_cost_table();
        assert!(CostModel::from_table("no_such_policy", &t, 4).is_none());
    }
}
