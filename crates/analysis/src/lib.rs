//! Static analysis for the eNODE stack.
//!
//! Four lint families over the repository's core data structures, each
//! reporting [`Diagnostic`]s with stable codes:
//!
//! * [`tableau`] — Butcher-tableau consistency (`E001`–`E006`,
//!   `W001`–`W002`): row sums, explicitness, order conditions through
//!   order 4, embedded-pair order, FSAL flags.
//! * [`ddg`] — depth-first DDG schedules (`E010`–`E012`, `W010`): cycle
//!   detection, wave-pipeline edge legality, peak buffer liveness, the
//!   one-row-lag retirement bound.
//! * [`shape`] — embedded-network shapes and FP16 range (`E020`–`E022`,
//!   `W020`): NCHW shape inference and worst-case interval propagation
//!   against `F16::MAX`.
//! * [`hwcheck`] — hardware-configuration feasibility (`E030`–`E033`,
//!   `W030`–`W033`): buffer provisioning, weight residency, DRAM and
//!   ring-link bandwidth, layer-to-core mapping.
//! * [`parallelcheck`] — parallel kernel-split decompositions
//!   (`E040`–`E042`, `W040`–`W043`): stride divisibility, scratch
//!   provisioning, reduction order, grain degeneracy, false sharing.
//!
//! The `enode-lint` binary runs every family over the paper's shipped
//! tableaux, models and Table I configurations and exits nonzero if any
//! error-severity diagnostic fires.

pub mod ddg;
pub mod diag;
pub mod hwcheck;
pub mod parallelcheck;
pub mod shape;
pub mod tableau;

pub use diag::{Code, Diagnostic, Diagnostics, Severity};

use enode_node::model::NodeModel;

/// The paper's representative embedded networks, with the state shape and
/// worst-case input magnitude each is linted against.
fn paper_models() -> Vec<(String, NodeModel, Vec<usize>, f64)> {
    vec![
        (
            "three_body dynamic_system(12, 32, 2)".into(),
            NodeModel::dynamic_system(12, 32, 2, 5),
            vec![1, 12],
            4.0,
        ),
        (
            "lotka_volterra dynamic_system(2, 24, 2)".into(),
            NodeModel::dynamic_system(2, 24, 2, 7),
            vec![1, 2],
            4.0,
        ),
        (
            "van_der_pol dynamic_system(2, 16, 2)".into(),
            NodeModel::dynamic_system(2, 16, 2, 42),
            vec![1, 2],
            4.0,
        ),
        (
            "edge image_classifier(4 ch, 2 conv)".into(),
            NodeModel::image_classifier(4, 2, 2, 10, 9),
            vec![1, 4, 16, 16],
            1.0,
        ),
        (
            "normed image_classifier(8 ch, 4 conv)".into(),
            NodeModel::image_classifier_normed(8, 4, 2, 10, 4, 11),
            vec![1, 8, 16, 16],
            1.0,
        ),
    ]
}

/// Nominal pool width the kernel-split lints model, fixed so the results
/// do not depend on the linting host's core count.
const NOMINAL_POOL: usize = 4;

/// Runs all five lint families over everything the repository ships: the
/// tableau catalog, their depth-first DDGs, the paper's embedded networks,
/// both Table I hardware configurations, and the registered parallel
/// kernel splits.
pub fn lint_everything() -> Diagnostics {
    let mut ds = Diagnostics::new();
    ds.extend(tableau::lint_all_tableaux());
    ds.extend(ddg::lint_all_ddgs());
    for (name, model, shape, bound) in paper_models() {
        for (l, layer) in model.layers().iter().enumerate() {
            ds.extend(shape::lint_network(
                &format!("{name} layer {l}"),
                layer,
                &shape,
                bound,
            ));
        }
    }
    ds.extend(hwcheck::lint_paper_configs());
    ds.extend(parallelcheck::lint_registered_splits(NOMINAL_POOL));
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everything_shipped_lints_clean() {
        let ds = lint_everything();
        assert!(
            ds.is_empty(),
            "shipped artifacts must lint clean:\n{}",
            ds.render()
        );
    }
}
