//! Runtime SIMD feature dispatch for the microkernels.
//!
//! The workspace compiles against the baseline x86-64 target (SSE2), so
//! the autovectorizer can never emit wider vectors no matter how the
//! loops are written. The hot microkernels ([`crate::matmul`],
//! [`crate::norm`], [`crate::conv`]) therefore carry explicit
//! `std::arch` AVX bodies behind the runtime check here, falling back to
//! the portable loops elsewhere.
//!
//! # Determinism
//!
//! The AVX bodies are *transcriptions*, not reassociations: every output
//! element runs the identical IEEE-754 operation sequence as the portable
//! loop (mul then add, per-element chains in the same reduction order —
//! never FMA, which would fuse the rounding). A lane of a vector op is
//! the same `f32`/`f64` operation as its scalar counterpart, so the AVX
//! and portable paths are bitwise identical, and the cross-thread-count
//! determinism contract (DESIGN.md §8) holds unchanged on every host.

/// True when the host supports AVX (256-bit float vectors). The result
/// is cached by `std::arch`'s detection macro, so calling this in a
/// kernel prologue costs one relaxed atomic load.
#[cfg(target_arch = "x86_64")]
#[inline]
pub(crate) fn avx() -> bool {
    std::arch::is_x86_feature_detected!("avx")
}

/// Non-x86 hosts always take the portable loops.
#[cfg(not(target_arch = "x86_64"))]
#[inline]
pub(crate) fn avx() -> bool {
    false
}

#[cfg(test)]
mod tests {
    #[test]
    fn detection_is_stable() {
        // Whatever the host supports, repeated queries must agree — the
        // kernels assume one dispatch decision per process.
        assert_eq!(super::avx(), super::avx());
    }
}
