//! Console table formatting shared by the experiment harnesses.

/// Prints an experiment banner.
pub fn banner(id: &str, title: &str) {
    println!();
    println!("=== {id}: {title} ===");
}

/// Prints a table header row followed by a separator.
pub fn header(cols: &[&str]) {
    row(cols);
    let widths: Vec<usize> = cols.iter().map(|c| c.len().max(12)).collect();
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", sep.join("-+-"));
}

/// Prints one table row with 12-char-min columns.
pub fn row(cols: &[&str]) {
    let padded: Vec<String> = cols.iter().map(|c| format!("{c:>12}")).collect();
    println!("{}", padded.join(" | "));
}

/// Formats a float compactly.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 || v.abs() < 0.01 {
        format!("{v:.3e}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats a ratio as `N.NNx`.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats bytes as MB.
pub fn mb(bytes: f64) -> String {
    format!("{:.2} MB", bytes / (1024.0 * 1024.0))
}
