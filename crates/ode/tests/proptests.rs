//! Property-based tests for the integrator substrate.

use enode_ode::controller::{
    ClassicController, ConventionalSearchController, SlopeAdaptiveController, StepController,
    TrialDecision,
};
use enode_ode::ddg::DepthFirstDdg;
use enode_ode::solver::{solve_adaptive, solve_fixed, AdaptiveOptions};
use enode_ode::tableau::{all_tableaux, ButcherTableau};
use proptest::prelude::*;

proptest! {
    /// Linearity: for the linear ODE y' = A y, integrating a scaled initial
    /// condition scales the solution (every RK method is linear in y0).
    #[test]
    fn rk_linear_in_initial_condition(scale in 0.1f64..10.0, steps in 1usize..50) {
        let tab = ButcherTableau::rk23_bogacki_shampine();
        let f = |_t: f64, y: &Vec<f64>| vec![-0.7 * y[0]];
        let base = solve_fixed(f, 0.0, 1.0, vec![1.0], &tab, steps);
        let scaled = solve_fixed(f, 0.0, 1.0, vec![scale], &tab, steps);
        let expect = base.final_state()[0] * scale;
        prop_assert!((scaled.final_state()[0] - expect).abs() < 1e-9 * expect.abs().max(1.0));
    }

    /// Time-grid invariance: splitting a fixed-step solve into two spans
    /// gives the same answer as one solve with the same total steps.
    #[test]
    fn fixed_solve_composes(n1 in 1usize..20, n2 in 1usize..20) {
        let tab = ButcherTableau::rk4();
        let f = |t: f64, y: &Vec<f64>| vec![y[0] * (0.2 * t).sin()];
        let total = n1 + n2;
        let t_mid = n1 as f64 / total as f64;
        let whole = solve_fixed(f, 0.0, 1.0, vec![1.0], &tab, total);
        let first = solve_fixed(f, 0.0, t_mid, vec![1.0], &tab, n1);
        let second = solve_fixed(f, t_mid, 1.0, first.final_state().clone(), &tab, n2);
        prop_assert!(
            (whole.final_state()[0] - second.final_state()[0]).abs() < 1e-10,
            "{} vs {}", whole.final_state()[0], second.final_state()[0]
        );
    }

    /// The adaptive solver always lands exactly on the end time and its
    /// accepted count equals the number of evaluation points.
    #[test]
    fn adaptive_reaches_end(t1 in 0.5f64..5.0, tol_exp in 3i32..8) {
        let tab = ButcherTableau::rk23_bogacki_shampine();
        let mut ctl = ClassicController::new(tab.error_order());
        let opts = AdaptiveOptions::new(10f64.powi(-tol_exp));
        let sol = solve_adaptive(
            |t, y: &Vec<f64>| vec![(t).cos() * y[0].max(-10.0).min(10.0)],
            0.0, t1, vec![1.0], &tab, &mut ctl, &opts,
        ).unwrap();
        prop_assert!((sol.final_time() - t1).abs() < 1e-9);
        prop_assert_eq!(sol.stats.accepted, sol.n_eval());
    }

    /// Controller sanity: the classic controller's retry stepsize is always
    /// strictly smaller on rejection, and decisions are deterministic.
    #[test]
    fn classic_controller_shrinks_on_reject(dt in 1e-6f64..10.0, ratio in 1.0001f64..1e6) {
        let mut c = ClassicController::new(2);
        match c.on_trial(dt, ratio) {
            TrialDecision::Reject { dt_retry } => prop_assert!(dt_retry < dt),
            TrialDecision::Accept { .. } => prop_assert!(false, "must reject ratio > 1"),
        }
    }

    /// Conventional search: retry is exactly dt * shrink.
    #[test]
    fn conventional_fixed_shrink(dt in 1e-6f64..10.0, shrink in 0.1f64..0.9) {
        let mut c = ConventionalSearchController::new(0.1, shrink);
        match c.on_trial(dt, 2.0) {
            TrialDecision::Reject { dt_retry } =>
                prop_assert!((dt_retry - dt * shrink).abs() < 1e-15),
            TrialDecision::Accept { .. } => prop_assert!(false),
        }
    }

    /// Slope-adaptive invariant: β factors stay in their stated ranges for
    /// any counter value, and the initial dt never exceeds the remaining
    /// time.
    #[test]
    fn slope_adaptive_bounds(c_acc in 1u32..100, remaining in 0.01f64..10.0) {
        prop_assert!(SlopeAdaptiveController::beta_plus(c_acc) > 1.0);
        prop_assert!(SlopeAdaptiveController::beta_plus(c_acc) <= 2.0);
        let bm = SlopeAdaptiveController::beta_minus(c_acc);
        prop_assert!(bm > 0.0 && bm < 1.0);
        let mut ctl = SlopeAdaptiveController::new(1, 1);
        for _ in 0..c_acc { ctl.end_point(true); }
        let dt = ctl.begin_point(Some(5.0), remaining);
        prop_assert!(dt <= remaining + 1e-12);
    }

    /// DDG structural identities hold for every tableau: node counts follow
    /// the closed forms and the schedule is always legal.
    #[test]
    fn ddg_counts(idx in 0usize..8) {
        let tab = &all_tableaux()[idx];
        let ddg = DepthFirstDdg::from_tableau(tab);
        let s = tab.stages();
        prop_assert_eq!(ddg.num_integral_states(), s);
        prop_assert_eq!(ddg.num_partial_states(), s * (s - 1) / 2);
        if tab.is_adaptive() {
            prop_assert_eq!(ddg.num_error_partials(), s - 1);
        } else {
            prop_assert_eq!(ddg.num_error_partials(), 0);
        }
        prop_assert!(ddg.verify_legal());
        prop_assert_eq!(ddg.baseline_full_maps(), s + 1);
    }

    /// Depth-first buffer rows grow linearly with conv depth, with slope
    /// kernel−1.
    #[test]
    fn buffer_rows_linear_in_conv_depth(n_conv in 1usize..16, kernel in 1usize..4) {
        let kernel = kernel * 2 + 1; // 3, 5, 7
        let ddg = DepthFirstDdg::from_tableau(&ButcherTableau::rk23_bogacki_shampine());
        let r1 = ddg.buffer_rows(n_conv, kernel);
        let r2 = ddg.buffer_rows(n_conv + 1, kernel);
        prop_assert_eq!(r2 - r1, kernel - 1);
    }
}
