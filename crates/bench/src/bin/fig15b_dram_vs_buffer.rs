//! Regenerates the paper's fig15b experiment. See the module docs in
//! `enode_bench::figures::fig15b_dram_vs_buffer`.

fn main() {
    enode_bench::figures::fig15b_dram_vs_buffer::run();
}
