//! FP16 precision lints over the lowered solver schedule.
//!
//! Codes: `E050`–`E056`, `W050`–`W053`.
//!
//! One forward pass on the fixpoint engine propagates a
//! magnitude/rounding-error pair (`RangeErr`) through every node of the
//! [`crate::ir::lower_pipeline`] graph: network ops amplify the incoming
//! error by their perturbation gain, RK combines mix stage values with
//! the tableau weights, and — when the artifact stores state in binary16
//! — every node output injects one half-ulp relative rounding
//! (`2⁻¹¹·magnitude`, the paper's PE design: wide accumulation, one
//! FP16 writeback per value). ACA checkpoints add a quantization on
//! store, and adjoint replays amplify it by the interval's growth factor
//! `(1 + h·Σ|b|)^steps`.
//!
//! Guaranteed failures are errors: any op (`E050`), RK combine (`E051`),
//! checkpoint (`E054`), or replay (`E056`) whose worst-case magnitude
//! exceeds `f16::MAX`; non-finite parameters (`E052`); degenerate
//! GroupNorm groups (`E053`); a tolerance below the subnormal threshold
//! (`E055`). Possible precision loss is a warning: a near-subnormal
//! tolerance (`W050`), error-estimate cancellation noise (`W051`),
//! per-step rounding above the error budget (`W052`), and checkpoint
//! quantization that rivals the tolerance after replay (`W053`).

use crate::diag::{Code, Diagnostic, Diagnostics};
use crate::engine::{run_to_fixpoint, Lattice, Pass};
use crate::ir::{
    group_elems, lower_pipeline, op_error_gain, op_output_bound, LoweredPipeline, NodeKind,
    PipelineArtifact, ProgramGraph,
};
use enode_tensor::f16::F16;
use enode_tensor::network::Op;
use std::collections::HashSet;

/// Relative magnitude of one FP16 rounding: half an ulp, `2⁻¹¹`.
const F16_REL: f64 = 1.0 / 2048.0;

/// Abstract value per node: worst-case magnitude plus accumulated
/// rounding error, both absolute.
#[derive(Clone, Copy, Debug, PartialEq)]
struct RangeErr {
    reached: bool,
    mag: f64,
    err: f64,
}

impl RangeErr {
    fn new(mag: f64, err: f64) -> Self {
        RangeErr {
            reached: true,
            mag,
            err,
        }
    }
}

impl Lattice for RangeErr {
    fn bottom() -> Self {
        RangeErr {
            reached: false,
            mag: 0.0,
            err: 0.0,
        }
    }
    fn join_from(&mut self, other: &Self) -> bool {
        let mut changed = false;
        if other.reached && !self.reached {
            self.reached = true;
            changed = true;
        }
        if other.mag > self.mag {
            self.mag = other.mag;
            changed = true;
        }
        if other.err > self.err {
            self.err = other.err;
            changed = true;
        }
        changed
    }
    fn widen_from(&mut self, other: &Self) -> bool {
        let mut changed = false;
        if other.mag > self.mag {
            self.mag = f64::INFINITY;
            changed = true;
        }
        if other.err > self.err {
            self.err = f64::INFINITY;
            changed = true;
        }
        self.reached |= other.reached;
        changed
    }
}

/// The forward range/error pass. Holds the schedule facts the transfer
/// function needs alongside the graph.
struct PrecisionPass<'a> {
    artifact: &'a PipelineArtifact,
    lowered: &'a LoweredPipeline,
}

impl PrecisionPass<'_> {
    /// One FP16 rounding injected when a value of magnitude `mag` is
    /// written back to storage; zero when the artifact keeps FP32 state.
    fn round(&self, mag: f64) -> f64 {
        if self.artifact.solver.fp16_storage {
            mag * F16_REL
        } else {
            0.0
        }
    }

    fn op(&self, layer: usize, op_index: usize) -> &Op {
        &self.artifact.model.layers()[layer].ops()[op_index]
    }

    fn op_in_shape(&self, layer: usize, op_index: usize) -> &[usize] {
        &self.lowered.op_shapes[layer]
            .as_ref()
            .expect("shapes checked")[op_index]
    }
}

impl Pass<ProgramGraph> for PrecisionPass<'_> {
    type Value = RangeErr;

    fn transfer(&self, graph: &ProgramGraph, node: usize, deps: &[RangeErr]) -> RangeErr {
        if !deps.is_empty() && deps.iter().any(|d| !d.reached) {
            return RangeErr::bottom();
        }
        let h = self.lowered.h;
        let tab = &self.lowered.tableau;
        match &graph.node(node).kind {
            NodeKind::StateInput { .. } => match deps.first() {
                // Layer 0 boundary: the caller's input bound, exact.
                None => RangeErr::new(self.artifact.input_bound, 0.0),
                Some(d) => *d,
            },
            NodeKind::NetOp {
                layer, op_index, ..
            } => {
                let d = deps[0];
                let op = self.op(*layer, *op_index);
                let shape = self.op_in_shape(*layer, *op_index);
                let mag = op_output_bound(op, shape, d.mag);
                let err = d.err * op_error_gain(op, shape) + self.round(mag);
                RangeErr::new(mag, err)
            }
            NodeKind::StageInput { stage, .. } => {
                // p_i = y + h Σ_j a_ij k_j; stage 0 is y itself (no new
                // arithmetic, no new rounding).
                let y = deps[0];
                if *stage == 0 {
                    return y;
                }
                let row = &tab.a()[*stage];
                let mut mag = y.mag;
                let mut err = y.err;
                for (j, k) in deps[1..].iter().enumerate() {
                    mag += h * row[j].abs() * k.mag;
                    err += h * row[j].abs() * k.err;
                }
                RangeErr::new(mag, err + self.round(mag))
            }
            NodeKind::Solution { .. } => {
                // y⁺ = y + h Σ_i b_i k_i.
                let y = deps[0];
                let mut mag = y.mag;
                let mut err = y.err;
                for (i, k) in deps[1..].iter().enumerate() {
                    mag += h * tab.b()[i].abs() * k.mag;
                    err += h * tab.b()[i].abs() * k.err;
                }
                RangeErr::new(mag, err + self.round(mag))
            }
            NodeKind::ErrorEstimate { .. } => {
                // e = h Σ_i d_i k_i (only lowered for adaptive tableaux).
                let d = tab.error_weights().expect("adaptive tableau");
                let mut mag = 0.0;
                let mut err = 0.0;
                for (i, k) in deps.iter().enumerate() {
                    mag += h * d[i].abs() * k.mag;
                    err += h * d[i].abs() * k.err;
                }
                RangeErr::new(mag, err + self.round(mag))
            }
            NodeKind::Checkpoint { fp16, .. } => {
                let d = deps[0];
                let quant = if *fp16 { d.mag * F16_REL } else { 0.0 };
                RangeErr::new(d.mag, d.err + quant)
            }
            NodeKind::AdjointReplay { steps, fp16, .. } => {
                // Replaying from a quantized checkpoint: the store error
                // grows by the interval's Lipschitz-style bound
                // (1 + h·Σ|b|)^steps before the backward pass consumes it.
                let ck = deps[0];
                let end = deps[1];
                let quant = if *fp16 { ck.mag * F16_REL } else { 0.0 };
                let gain = (1.0 + h * tab.abs_b_sum()).powi(*steps as i32);
                RangeErr::new(end.mag + quant * gain, end.err + quant * gain)
            }
            // Placement nodes carry no numeric value.
            NodeKind::MapLayer { .. } => RangeErr::bottom(),
        }
    }
}

/// Runs the FP16 precision pass family on one pipeline artifact.
pub fn lint_precision(artifact: &PipelineArtifact) -> Diagnostics {
    let mut ds = Diagnostics::new();
    let subject = artifact.name.as_str();
    let f16_max = F16::MAX.to_f32() as f64;
    let f16_min_pos = F16::MIN_POSITIVE.to_f32() as f64;
    let tol = artifact.solver.tolerance;

    // E055 / W050: the controller compares the error estimate against the
    // tolerance; in FP16 state that comparison dies below the subnormals.
    if artifact.solver.fp16_storage {
        if tol < f16_min_pos {
            ds.push(
                Diagnostic::new(
                    Code::E055PrecToleranceSubnormal,
                    subject,
                    format!(
                        "tolerance {tol:.1e} is below the f16 subnormal threshold {f16_min_pos:.1e}"
                    ),
                )
                .with_note("tolerance", format!("{tol:.1e}"))
                .with_note("f16_min_positive", format!("{f16_min_pos:.1e}")),
            );
        } else if tol < 16.0 * f16_min_pos {
            ds.push(
                Diagnostic::new(
                    Code::W050PrecToleranceNearSubnormal,
                    subject,
                    format!(
                        "tolerance {tol:.1e} is within 16x of the f16 subnormal threshold \
                         {f16_min_pos:.1e}"
                    ),
                )
                .with_note("tolerance", format!("{tol:.1e}"))
                .with_note("f16_min_positive", format!("{f16_min_pos:.1e}")),
            );
        }
    }

    let lowered = lower_pipeline(artifact);

    // E052 / E053: parameter-level checks, independent of the dataflow.
    let mut params_finite = true;
    for (layer, net) in artifact.model.layers().iter().enumerate() {
        for (op_index, op) in net.ops().iter().enumerate() {
            let tensors: Vec<&[f32]> = match op {
                Op::Conv2d(c) => vec![c.weight().data(), c.bias().data()],
                Op::Dense(d) => vec![d.weight().data(), d.bias().data()],
                Op::GroupNorm(g) => vec![g.gamma().data(), g.beta().data()],
                Op::Activation(_) | Op::ConcatTime => vec![],
            };
            if tensors.iter().any(|t| t.iter().any(|v| !v.is_finite())) {
                params_finite = false;
                ds.push(
                    Diagnostic::new(
                        Code::E052PrecNonFiniteParam,
                        subject,
                        format!("layer {layer} op {op_index} has non-finite parameter values"),
                    )
                    .with_note("layer", layer)
                    .with_note("op_index", op_index),
                );
            }
            if let (Op::GroupNorm(g), Some(shapes)) = (op, &lowered.op_shapes[layer]) {
                let n = group_elems(g, &shapes[op_index]);
                if n <= 1 {
                    ds.push(
                        Diagnostic::new(
                            Code::E053PrecDegenerateGroupNorm,
                            subject,
                            format!(
                                "layer {layer} op {op_index}: GroupNorm group of {n} element(s) \
                                 has no variance to normalize"
                            ),
                        )
                        .with_note("layer", layer)
                        .with_note("op_index", op_index)
                        .with_note("group_elems", n),
                    );
                }
            }
        }
    }

    // The dataflow pass needs inferrable shapes (E02x reports failures)
    // and finite parameters (E052 above; bounds would be NaN).
    if !params_finite || lowered.op_shapes.iter().any(|s| s.is_none()) {
        return ds;
    }

    let pass = PrecisionPass {
        artifact,
        lowered: &lowered,
    };
    let fx = run_to_fixpoint(&lowered.graph, &pass);
    let fp16 = artifact.solver.fp16_storage;

    // Emission walk: first offending site per (layer, op / combine kind),
    // in node-id order (earliest step first).
    let mut op_overflow = HashSet::new();
    let mut combine_overflow = HashSet::new();
    let mut layer_once: HashSet<(u8, usize)> = HashSet::new();
    for (id, node) in lowered.graph.nodes().iter().enumerate() {
        let v = fx.values[id];
        if !v.reached {
            continue;
        }
        let loc = lowered.graph.location(id);
        match &node.kind {
            NodeKind::NetOp {
                layer, op_index, ..
            } => {
                if v.mag > f16_max && op_overflow.insert((*layer, *op_index)) {
                    ds.push(
                        Diagnostic::new(
                            Code::E050PrecOpOverflow,
                            subject,
                            format!(
                                "worst-case magnitude {:.1} at {loc} exceeds F16::MAX = {f16_max}",
                                v.mag
                            ),
                        )
                        .with_note("location", &loc)
                        .with_note("magnitude", format!("{:.1}", v.mag)),
                    );
                }
            }
            NodeKind::StageInput { layer, .. }
            | NodeKind::Solution { layer, .. }
            | NodeKind::ErrorEstimate { layer, .. } => {
                let kind_tag = match &node.kind {
                    NodeKind::StageInput { .. } => 0u8,
                    NodeKind::Solution { .. } => 1,
                    _ => 2,
                };
                if v.mag > f16_max && combine_overflow.insert((*layer, kind_tag)) {
                    ds.push(
                        Diagnostic::new(
                            Code::E051PrecCombineOverflow,
                            subject,
                            format!(
                                "RK combine at {loc} reaches worst-case magnitude {:.1} > \
                                 F16::MAX = {f16_max}",
                                v.mag
                            ),
                        )
                        .with_note("location", &loc)
                        .with_note("magnitude", format!("{:.1}", v.mag)),
                    );
                }
                // W051: the estimate is a difference of near-equal terms;
                // its operands' rounding noise must stay well under tol.
                if let NodeKind::ErrorEstimate { layer, .. } = &node.kind {
                    let noise = v.mag * F16_REL;
                    if fp16 && noise > 0.1 * tol && layer_once.insert((0, *layer)) {
                        ds.push(
                            Diagnostic::new(
                                Code::W051PrecCancellation,
                                subject,
                                format!(
                                    "fp16 rounding noise {noise:.1e} in the error estimate at \
                                     {loc} exceeds 0.1x tolerance {tol:.1e}"
                                ),
                            )
                            .with_note("location", &loc)
                            .with_note("noise", format!("{noise:.1e}"))
                            .with_note("tolerance", format!("{tol:.1e}")),
                        );
                    }
                }
                // W052: rounding injected across a single accepted step
                // must stay inside the budget the controller allots per
                // step. Measured at the very first solution (layer 0,
                // step 0), the only combine whose inputs carry zero
                // inherited error — everywhere else the worst-case
                // trajectory error compounds and would swamp the
                // per-step injection.
                if let NodeKind::Solution { layer: 0, step: 0 } = &node.kind {
                    if fp16 && v.err > 10.0 * tol && layer_once.insert((1, 0)) {
                        ds.push(
                            Diagnostic::new(
                                Code::W052PrecErrorBudget,
                                subject,
                                format!(
                                    "fp16 rounding error {:.1e} after one step at {loc} exceeds \
                                     10x tolerance {tol:.1e}",
                                    v.err
                                ),
                            )
                            .with_note("location", &loc)
                            .with_note("step_error", format!("{:.1e}", v.err))
                            .with_note("tolerance", format!("{tol:.1e}")),
                        );
                    }
                }
            }
            NodeKind::Checkpoint { layer, fp16, .. } => {
                if *fp16 && v.mag > f16_max && layer_once.insert((2, *layer)) {
                    ds.push(
                        Diagnostic::new(
                            Code::E054PrecCheckpointOverflow,
                            subject,
                            format!(
                                "fp16 checkpoint at {loc} stores worst-case magnitude {:.1} > \
                                 F16::MAX = {f16_max}",
                                v.mag
                            ),
                        )
                        .with_note("location", &loc)
                        .with_note("magnitude", format!("{:.1}", v.mag)),
                    );
                }
            }
            NodeKind::AdjointReplay {
                layer,
                steps,
                fp16: ck_fp16,
                ..
            } => {
                if *ck_fp16 && v.mag > f16_max && layer_once.insert((3, *layer)) {
                    ds.push(
                        Diagnostic::new(
                            Code::E056PrecAdjointReplayOverflow,
                            subject,
                            format!(
                                "adjoint replay at {loc} amplifies worst-case magnitude to \
                                 {:.1} > F16::MAX = {f16_max}",
                                v.mag
                            ),
                        )
                        .with_note("location", &loc)
                        .with_note("magnitude", format!("{:.1}", v.mag)),
                    );
                }
                // W053: quantization alone, amplified over a multi-step
                // recompute interval, must stay well under the tolerance.
                if *ck_fp16 && *steps > 1 {
                    let ck = fx.values[node.preds[0]];
                    let gain = (1.0 + lowered.h * lowered.tableau.abs_b_sum()).powi(*steps as i32);
                    let amp = ck.mag * F16_REL * gain;
                    if amp > 0.1 * tol && layer_once.insert((4, *layer)) {
                        ds.push(
                            Diagnostic::new(
                                Code::W053PrecAdjointQuantization,
                                subject,
                                format!(
                                    "fp16 checkpoint quantization {amp:.1e} replayed over \
                                     {steps} steps at {loc} exceeds 0.1x tolerance {tol:.1e}"
                                ),
                            )
                            .with_note("location", &loc)
                            .with_note("amplified_quantization", format!("{amp:.1e}"))
                            .with_note("recompute_steps", steps)
                            .with_note("tolerance", format!("{tol:.1e}")),
                        );
                    }
                }
            }
            NodeKind::StateInput { .. } | NodeKind::MapLayer { .. } => {}
        }
    }

    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use enode_node::inference::NodeSolveOptions;
    use enode_node::model::NodeModel;

    fn fp16_artifact(tol: f64, stride: usize) -> PipelineArtifact {
        PipelineArtifact::new(
            "vdp",
            NodeModel::dynamic_system(2, 16, 2, 42),
            vec![1, 2],
            4.0,
            NodeSolveOptions::new(tol)
                .with_fp16_storage()
                .with_checkpoint_stride(stride),
            None,
        )
    }

    #[test]
    fn shipped_style_fp16_artifact_is_clean() {
        let ds = lint_precision(&fp16_artifact(1e-2, 1));
        assert!(ds.is_empty(), "{}", ds.render());
    }

    #[test]
    fn tight_tolerance_fires_subnormal_and_budget_warnings() {
        let ds = lint_precision(&fp16_artifact(1e-6, 1));
        assert!(
            ds.has_code(Code::E055PrecToleranceSubnormal),
            "{}",
            ds.render()
        );
        assert!(ds.has_code(Code::W051PrecCancellation), "{}", ds.render());
        assert!(ds.has_code(Code::W052PrecErrorBudget), "{}", ds.render());
    }

    #[test]
    fn near_subnormal_tolerance_fires_w050() {
        let ds = lint_precision(&fp16_artifact(5e-4, 1));
        assert!(
            ds.has_code(Code::W050PrecToleranceNearSubnormal),
            "{}",
            ds.render()
        );
        assert!(!ds.has_code(Code::E055PrecToleranceSubnormal));
    }

    #[test]
    fn long_recompute_interval_fires_w053() {
        // Stride 8 at a loose tolerance: quantization alone survives the
        // replay amplification check only for short intervals.
        let ds = lint_precision(&fp16_artifact(2e-4, 8));
        assert!(
            ds.has_code(Code::W053PrecAdjointQuantization),
            "{}",
            ds.render()
        );
    }

    #[test]
    fn fp32_storage_disables_rounding_model() {
        let mut a = fp16_artifact(1e-6, 1);
        a.solver.fp16_storage = false;
        let ds = lint_precision(&a);
        assert!(ds.is_empty(), "{}", ds.render());
    }
}
