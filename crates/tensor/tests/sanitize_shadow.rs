//! Shadow-memory sanitizer tests — only meaningful with the `sanitize`
//! feature (`cargo test -p enode-tensor --features sanitize`).
//!
//! Covers the three seeded mutations the ISSUE demands the sanitizer
//! catch (overlapping output tile, off-by-one stride leaving a coverage
//! gap, out-of-region overshoot), double-claims, scratch-arena aliasing,
//! panic safety (a panicking lane must leak neither pool health nor
//! shadow-map claims), and an end-to-end clean pass over the shipped
//! kernels under a 4-wide pool.
#![cfg(feature = "sanitize")]

use enode_tensor::conv::Conv2d;
use enode_tensor::dense::Dense;
use enode_tensor::norm::GroupNorm;
use enode_tensor::{init, parallel, sanitize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// The shadow map is global process state; serialize the tests in this
/// binary so `active_regions()`/`active_scratch()` assertions never see
/// another test's live regions. Lock ignoring poisoning — several tests
/// panic on purpose while holding it.
static SHADOW_TESTS: Mutex<()> = Mutex::new(());

fn serial<R>(f: impl FnOnce() -> R) -> R {
    let _guard = SHADOW_TESTS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    f()
}

/// Runs `f`, expecting it to panic with a message containing `needle`.
fn expect_panic_containing(needle: &str, f: impl FnOnce()) {
    let err = catch_unwind(AssertUnwindSafe(f)).expect_err("expected a sanitizer panic");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains(needle),
        "sanitizer panic did not mention `{needle}`: {msg}"
    );
}

#[test]
fn seeded_overlapping_tile_is_detected() {
    serial(|| {
        // A buggy decomposition whose tiles are one stride too wide:
        // lane i claims [i*s, (i+1)*s + s), so adjacent tiles overlap.
        expect_panic_containing("overlapping write", || {
            let _k = sanitize::kernel_scope("mutation.overlapping_tile");
            let stride = 8;
            let region = sanitize::region_enter("y", 4 * stride);
            sanitize::claim(&region, 0, 0..2 * stride);
            sanitize::claim(&region, 1, stride..3 * stride);
        });
        assert_eq!(
            sanitize::active_regions(),
            0,
            "claims leaked past the panic"
        );
    });
}

#[test]
fn seeded_off_by_one_stride_is_detected() {
    serial(|| {
        // Stride computed one element short: the claims tile 0..36 of a
        // 40-byte region, so the region exit finds a trailing gap.
        expect_panic_containing("coverage gap", || {
            let _k = sanitize::kernel_scope("mutation.short_stride");
            let (items, stride, short) = (4usize, 10usize, 9usize);
            let region = sanitize::region_enter("y", items * stride);
            for lane in 0..items {
                sanitize::claim(&region, lane, lane * short..(lane + 1) * short);
            }
            // Claims are individually in-bounds and disjoint; the bug is
            // only visible when the region closes.
        });
        assert_eq!(sanitize::active_regions(), 0);
    });
}

#[test]
fn seeded_overshooting_stride_is_detected() {
    serial(|| {
        // Stride computed one element long: the last tile runs past the
        // buffer — the exact bug behind a wrong `data.len() / items`.
        expect_panic_containing("out-of-region write", || {
            let _k = sanitize::kernel_scope("mutation.long_stride");
            let (items, stride, long) = (4usize, 10usize, 11usize);
            let region = sanitize::region_enter("y", items * stride);
            for lane in 0..items {
                sanitize::claim(&region, lane, lane * long..(lane + 1) * long);
            }
        });
        assert_eq!(sanitize::active_regions(), 0);
    });
}

#[test]
fn double_claim_is_detected_and_names_both_lanes() {
    serial(|| {
        expect_panic_containing("double-claim", || {
            let region = sanitize::region_enter("y", 16);
            sanitize::claim(&region, 0, 0..8);
            sanitize::claim(&region, 3, 0..8);
        });
    });
}

#[test]
fn sanitizer_reports_name_the_kernel_scope() {
    serial(|| {
        expect_panic_containing("kernel `mutation.labeled`", || {
            let _k = sanitize::kernel_scope("mutation.labeled");
            let region = sanitize::region_enter("y", 16);
            sanitize::claim(&region, 0, 0..12);
            sanitize::claim(&region, 1, 8..16);
        });
    });
}

#[test]
fn aliasing_scratch_checkouts_are_detected() {
    serial(|| {
        expect_panic_containing("scratch arenas alias", || {
            let _a = sanitize::scratch_guard(0x1000, 64);
            let _b = sanitize::scratch_guard(0x1020, 64);
        });
        assert_eq!(
            sanitize::active_scratch(),
            0,
            "guards leaked past the panic"
        );
    });
}

#[test]
fn panicking_lane_leaks_no_claims_and_pool_survives() {
    serial(|| {
        parallel::with_threads(4, || {
            let mut a = vec![0.0f32; 16];
            let mut b = vec![0.0f32; 8];
            let err = catch_unwind(AssertUnwindSafe(|| {
                parallel::parallel_for_disjoint2(&mut a, &mut b, 8, 1, |r, _, _| {
                    if r.contains(&5) {
                        panic!("lane bug");
                    }
                });
            }))
            .expect_err("the lane panic must propagate");
            // A panic on the submitting lane carries the original payload;
            // one on a worker is re-raised by the pool with its own
            // message. Either way it must surface.
            let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
            assert!(
                msg == "lane bug" || msg.contains("pool worker panicked"),
                "unexpected payload: {msg}"
            );
            // No shadow regions or scratch checkouts may survive the
            // unwind...
            assert_eq!(sanitize::active_regions(), 0);
            assert_eq!(sanitize::active_scratch(), 0);
            // ...and the pool and shadow map must both still work.
            let mut c = vec![0.0f32; 12];
            parallel::parallel_for_disjoint3(&mut a, &mut b, &mut c, 4, 1, |r, sa, _, _| {
                sa[0] = r.start as f32;
            });
            assert_eq!(a[0], 0.0);
        });
    });
}

#[test]
fn shipped_kernels_run_clean_under_the_sanitizer() {
    serial(|| {
        parallel::with_threads(4, || {
            let conv = Conv2d::new_seeded(3, 4, 3, 11);
            let x = init::uniform(&[6, 3, 5, 3], -1.0, 1.0, 12);
            let dy = init::uniform(&[6, 4, 5, 3], -1.0, 1.0, 13);
            let _ = conv.forward(&x);
            let _ = conv.backward_input(&dy);
            let _ = conv.backward_params(&x, &dy);

            // Small batch: the row/channel splits instead.
            let xs = init::uniform(&[2, 3, 5, 3], -1.0, 1.0, 14);
            let dys = init::uniform(&[2, 4, 5, 3], -1.0, 1.0, 15);
            let _ = conv.forward(&xs);
            let _ = conv.backward_input(&dys);
            let _ = conv.backward_params(&xs, &dys);

            let dense = Dense::new_seeded(7, 5, 51);
            let dx = init::uniform(&[9, 7], -1.0, 1.0, 52);
            let ddy = init::uniform(&[9, 5], -1.0, 1.0, 53);
            let _ = dense.forward(&dx);
            let _ = dense.backward_input(&ddy);
            let _ = dense.backward_params(&dx, &ddy);

            let gn = GroupNorm::new(4, 2);
            let gx = init::uniform(&[5, 4, 5, 3], -2.0, 2.0, 61);
            let gdy = init::uniform(&[5, 4, 5, 3], -1.0, 1.0, 62);
            let (_, cache) = gn.forward(&gx);
            let _ = gn.backward(&gx, &cache, &gdy);
        });
        assert_eq!(sanitize::active_regions(), 0);
        assert_eq!(sanitize::active_scratch(), 0);
    });
}
